"""Longitudinal monitoring: what changed since the last sweep?

The paper frames Treads as an ongoing service ("help users understand
what information has been collected about them"), and platform profiles
churn — brokers ship monthly feeds, interests appear and disappear. A
provider therefore re-runs sweeps periodically, and the user-side
extension wants to answer "what did the platform learn about me since
last month?". :func:`diff_profiles` computes exactly that from two
:class:`~repro.core.client.RevealedProfile` snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set, Tuple

from repro.core.client import RevealedProfile


@dataclass(frozen=True)
class ProfileDiff:
    """Changes between two reveal snapshots of the same user."""

    #: Attributes newly revealed as set ("the platform learned this").
    gained_attributes: Tuple[str, ...]
    #: Attributes previously set, now absent from a *complete* later sweep
    #: ("the platform dropped or lost this").
    lost_attributes: Tuple[str, ...]
    #: Multi-valued attributes whose revealed value changed:
    #: attr_id -> (old value, new value).
    changed_values: Dict[str, Tuple[str, str]]
    #: PII kinds the platform newly holds.
    gained_pii: Tuple[str, ...]
    #: Whether the diff is trustworthy: both snapshots received their
    #: control ad, so absences are informative rather than delivery gaps.
    reliable: bool

    @property
    def is_empty(self) -> bool:
        return not (self.gained_attributes or self.lost_attributes
                    or self.changed_values or self.gained_pii)


def diff_profiles(before: RevealedProfile,
                  after: RevealedProfile) -> ProfileDiff:
    """Compare two reveal snapshots taken after separate sweeps.

    Raises :class:`ValueError` when the snapshots belong to different
    users — diffing across users is always a caller bug.
    """
    if before.user_id != after.user_id:
        raise ValueError(
            f"cannot diff profiles of {before.user_id!r} and "
            f"{after.user_id!r}"
        )
    changed: Dict[str, Tuple[str, str]] = {}
    for attr_id, new_value in after.values.items():
        old_value = before.values.get(attr_id)
        if old_value is not None and old_value != new_value:
            changed[attr_id] = (old_value, new_value)
    return ProfileDiff(
        gained_attributes=tuple(sorted(
            after.set_attributes - before.set_attributes
        )),
        lost_attributes=tuple(sorted(
            before.set_attributes - after.set_attributes
        )),
        changed_values=changed,
        gained_pii=tuple(sorted(after.pii_present - before.pii_present)),
        reliable=before.control_received and after.control_received,
    )
