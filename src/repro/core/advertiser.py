"""Advertiser-driven transparency (paper section 4).

Beyond the transparency-provider use, Treads "allow any *advertiser* ...
to directly include explanations about why they are targeting a particular
ad". Two mechanisms from section 4 are modelled:

* **intent declarations** — the advertiser states who they actually wanted
  to reach ("experienced professional Salsa dancers"), which may differ
  from the targeting the platform's options forced on them ("people aged
  30 and above who are interested in Salsa dance"). An advertiser
  explanation can be **verified against** the platform's independently
  generated explanation: the platform's revealed attribute must be among
  the advertiser's declared targeting attributes, and the declaration is
  scored for completeness against the ad's real targeting spec.
* **learn-on-click disclosure** — "advertisers can often learn information
  about users who click on their ads (e.g., by associating the targeting
  parameters of the ad with the user's cookie); advertisers could be
  required to reveal the learnt information to users."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.platform.ads import Ad
from repro.platform.explanations import AdExplanation


@dataclass(frozen=True)
class AdvertiserExplanation:
    """The advertiser's own explanation for one ad."""

    ad_id: str
    #: The advertiser's true intent, in their words.
    intent: str
    #: Attribute ids the advertiser *declares* it targeted.
    declared_attribute_ids: Tuple[str, ...]
    #: Whether a PII/customer-list audience was used, declared honestly.
    declares_customer_list: bool = False


@dataclass(frozen=True)
class VerificationResult:
    """Cross-checking an advertiser explanation against the platform's.

    ``consistent`` — the platform's (single) revealed attribute appears in
    the advertiser's declaration, and customer-list usage claims agree.
    ``completeness`` — fraction of the ad's actual targeting attributes
    the advertiser declared (1.0 = full disclosure).
    ``undeclared`` — actually-targeted attributes missing from the
    declaration (what a dishonest advertiser hid).
    """

    ad_id: str
    consistent: bool
    completeness: float
    undeclared: Tuple[str, ...]
    overdeclared: Tuple[str, ...]


def verify_explanation(
    ad: Ad,
    advertiser_explanation: AdvertiserExplanation,
    platform_explanation: AdExplanation,
) -> VerificationResult:
    """Verify an advertiser's explanation (section 4, "Trusting
    advertiser-provided explanations").

    The platform explanation reveals at most one attribute, so it can only
    *refute* a declaration (platform mentions an attribute the advertiser
    hid), never fully confirm it — exactly the paper's point that the two
    explanation channels are complementary.
    """
    declared = set(advertiser_explanation.declared_attribute_ids)
    actual = set(ad.targeting.positively_targeted_attributes())

    consistent = True
    if platform_explanation.revealed_attribute is not None and \
            platform_explanation.revealed_attribute not in declared:
        consistent = False
    if platform_explanation.mentions_customer_list and \
            not advertiser_explanation.declares_customer_list:
        consistent = False

    completeness = 1.0 if not actual else len(declared & actual) / len(actual)
    return VerificationResult(
        ad_id=ad.ad_id,
        consistent=consistent,
        completeness=completeness,
        undeclared=tuple(sorted(actual - declared)),
        overdeclared=tuple(sorted(declared - actual)),
    )


@dataclass
class ClickLearning:
    """What an advertiser learns from clicks on a targeted ad.

    When a user clicks, the advertiser's landing page sees a first-party
    cookie and knows the click came from ad ``ad_id`` — so it can attach
    the ad's targeting parameters to that cookie. This is the learning the
    paper says advertisers should be required to disclose.
    """

    ad_id: str
    targeting_attributes: Tuple[str, ...]
    #: cookie -> attributes now associated with it.
    learned: Dict[str, Set[str]] = field(default_factory=dict)

    def record_click(self, cookie_id: Optional[str]) -> None:
        if cookie_id is None:
            return  # cookieless click teaches nothing durable
        self.learned.setdefault(cookie_id, set()).update(
            self.targeting_attributes
        )

    def disclosure_for(self, cookie_id: str) -> "ClickDisclosure":
        """The mandated disclosure to the clicking user."""
        return ClickDisclosure(
            ad_id=self.ad_id,
            cookie_id=cookie_id,
            attributes_learned=tuple(
                sorted(self.learned.get(cookie_id, set()))
            ),
        )


@dataclass(frozen=True)
class ClickDisclosure:
    """"We learned the following about this cookie when you clicked"."""

    ad_id: str
    cookie_id: str
    attributes_learned: Tuple[str, ...]


def click_learning_for_ad(ad: Ad) -> ClickLearning:
    """Initialise the advertiser-side click tracker for one ad."""
    return ClickLearning(
        ad_id=ad.ad_id,
        targeting_attributes=tuple(
            ad.targeting.positively_targeted_attributes()
        ),
    )


def launch_intent_tread(
    platform,
    account_id: str,
    campaign_id: str,
    base_ad: Ad,
    intent: str,
    codebook,
    bid_cap_cpm: Optional[float] = None,
):
    """Run a companion Tread declaring an ad's intent to its audience.

    Section 4's mandate made executable: "advertisers might be required
    to explain their intent in targeting a particular set of users". The
    companion ad reuses the base ad's exact targeting spec, so it reaches
    precisely the people the base ad reaches, and carries the intent as a
    codebook token (innocuous text, passes review). Subscribers' clients
    decode it into :attr:`RevealedProfile.intents`.

    Returns the submitted companion :class:`~repro.platform.ads.Ad`.
    """
    from repro.core.creative import render
    from repro.core.treads import (
        Encoding,
        Placement,
        RevealKind,
        RevealPayload,
    )

    if "|" in intent:
        raise ValueError(
            "intent text may not contain '|' (reserved by the canonical "
            "payload encoding)"
        )
    payload = RevealPayload(kind=RevealKind.INTENT, display=intent)
    rendered = render(payload, Encoding.CODEBOOK, Placement.IN_AD_TEXT,
                      codebook)
    return platform.submit_ad(
        account_id=account_id,
        campaign_id=campaign_id,
        creative=rendered.creative,
        targeting=base_ad.targeting,
        bid_cap_cpm=(bid_cap_cpm if bid_cap_cpm is not None
                     else base_ad.bid_cap_cpm),
    )
