"""One opt-in, many platforms.

Paper section 3.1: "by placing tracking pixels from multiple advertising
platforms on the website, the transparency provider could at one shot
allow the user to sign-up to learn the information collected about them by
multiple advertising platforms."

:class:`MultiPlatformProvider` runs one
:class:`~repro.core.provider.TransparencyProvider` per platform, all
sharing a single opt-in website: every provider installs its platform's
pixel on the same ``/optin`` page, so one page visit opts the user into
every platform at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.optin import OPTIN_PATH
from repro.core.provider import DecodePack, LaunchReport, TransparencyProvider
from repro.core.treads import Encoding, Placement
from repro.errors import ProviderError
from repro.platform.platform import AdPlatform
from repro.platform.web import Browser, WebDirectory, Website


class MultiPlatformProvider:
    """A transparency provider spanning several ad platforms."""

    def __init__(
        self,
        platforms: Sequence[AdPlatform],
        web: WebDirectory,
        name: str = "transparency-project",
        budget_per_platform: float = 1000.0,
        encoding: Encoding = Encoding.CODEBOOK,
        placement: Placement = Placement.IN_AD_TEXT,
        bid_cap_cpm: float = 10.0,
    ):
        if not platforms:
            raise ProviderError("need at least one platform")
        names = {platform.name for platform in platforms}
        if len(names) != len(platforms):
            raise ProviderError("platform names must be unique")
        self.name = name
        self.web = web
        self.providers: Dict[str, TransparencyProvider] = {}
        shared_domain = f"{name}.example.org"
        for platform in platforms:
            self.providers[platform.name] = TransparencyProvider(
                platform=platform,
                web=web,
                name=name,
                budget=budget_per_platform,
                encoding=encoding,
                placement=placement,
                bid_cap_cpm=bid_cap_cpm,
                website_domain=shared_domain,
            )
        self.website: Website = next(
            iter(self.providers.values())
        ).website

    # ------------------------------------------------------------------

    def optin_via_pixel(self, browser: Browser) -> None:
        """One visit to the shared page opts into every platform.

        Each platform only records its own pixel's fire; the others'
        pixels on the same page are invisible to it.
        """
        visit = browser.visit(self.website, OPTIN_PATH)
        for provider in self.providers.values():
            provider.platform.observe_visit(visit)

    def optin_via_page_like(self, platform_name: str, user_id: str) -> None:
        """Page-like opt-in is inherently per-platform."""
        self.provider(platform_name).optin.via_page_like(user_id)

    def provider(self, platform_name: str) -> TransparencyProvider:
        try:
            return self.providers[platform_name]
        except KeyError:
            raise ProviderError(
                f"no provider on platform {platform_name!r}"
            ) from None

    # ------------------------------------------------------------------

    def launch_partner_sweeps(
        self,
        audience_terms: Optional[Dict[str, str]] = None,
    ) -> Dict[str, LaunchReport]:
        """Run the partner-category sweep on every platform.

        ``audience_terms`` optionally overrides the audience term per
        platform (e.g. pixel audience where the page route wasn't used).
        """
        reports: Dict[str, LaunchReport] = {}
        for platform_name, provider in self.providers.items():
            term = (audience_terms or {}).get(platform_name)
            reports[platform_name] = provider.launch_partner_sweep(
                audience_term=term
            )
        return reports

    def run_delivery(self) -> None:
        for provider in self.providers.values():
            provider.run_delivery()

    def decode_packs(self) -> Dict[str, DecodePack]:
        """Per-platform decode packs for subscribers."""
        return {
            platform_name: provider.publish_decode_pack()
            for platform_name, provider in self.providers.items()
        }

    def total_spend(self) -> float:
        return sum(p.total_spend() for p in self.providers.values())
