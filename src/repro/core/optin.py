"""Opt-in flows: how users subscribe to a transparency provider.

Paper section 3.1, "User opt-in", gives three routes, all modelled here:

* **page like** — the validation's route: users like a platform page the
  provider created ("had the two U.S.-based authors sign-up by liking a
  Facebook page"). Not anonymous to the *platform* (nothing is), but the
  provider learns nothing beyond its page's like count.
* **anonymous pixel** — users visit the provider's opt-in website, where
  the platform's tracking pixel fires; the provider can target the
  resulting website-custom-audience while users stay anonymous to it.
* **hashed PII** — users hand the provider *hashed* PII ("the user only
  needs to provide PII to the transparency provider in hashed form"); the
  provider builds PII audiences from the hashes.

Per-attribute custom opt-in (section 3.1, "Supporting custom attributes")
gives each custom attribute its own page with its own pixel, so the
provider can target "visitors of this page who also have the attribute"
without learning who opted in for what.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import OptInError, PIIError
from repro.hashing import is_hashed
from repro.platform.pii import PIIRecord
from repro.platform.pixels import TrackingPixel
from repro.platform.platform import AdPlatform
from repro.platform.web import Browser, Website

OPTIN_PATH = "/optin"
CUSTOM_PATH_PREFIX = "/custom/"


def _slugify(label: str) -> str:
    cleaned = []
    for ch in label.lower():
        if ch.isalnum():
            cleaned.append(ch)
        elif cleaned and cleaned[-1] != "-":
            cleaned.append("-")
    return "".join(cleaned).strip("-") or "attribute"


@dataclass
class CustomOptIn:
    """One custom attribute's dedicated opt-in page and pixel."""

    label: str
    path: str
    pixel: TrackingPixel


class OptInManager:
    """The provider's subscription machinery on one platform."""

    def __init__(
        self,
        platform: AdPlatform,
        account_id: str,
        website: Website,
        page_id: str,
    ):
        self._platform = platform
        self._account_id = account_id
        self.website = website
        self.page_id = page_id
        self.optin_pixel = platform.issue_pixel(account_id, label="optin")
        self._install_pixel(
            OPTIN_PATH,
            self.optin_pixel.pixel_id,
            content=(
                "Opt in to transparency reports. Loading this page lets "
                "participating ad platforms note your visit; this site "
                "itself does not identify you."
            ),
        )
        self._pii_batches: Dict[str, List[PIIRecord]] = {}
        self._custom: Dict[str, CustomOptIn] = {}
        self._page_like_count = 0

    def _install_pixel(self, path: str, pixel_id: str, content: str) -> None:
        """Add a pixel to a page, creating the page if needed.

        Appending (rather than replacing) is what makes the one-page
        multi-platform opt-in of section 3.1 work: each platform's
        provider installs its own pixel on the same shared page.
        """
        if path in self.website.pages:
            page = self.website.get_page(path)
            if pixel_id not in page.pixel_ids:
                page.pixel_ids.append(pixel_id)
            return
        self.website.add_page(path, content=content, pixel_ids=[pixel_id])

    # -- page-like route (the validation's) ---------------------------------

    def via_page_like(self, user_id: str) -> None:
        """The user likes the provider's platform page."""
        self._platform.like_page(user_id, self.page_id)
        self._page_like_count += 1

    @property
    def page_like_count(self) -> int:
        """All the provider learns from this route: a counter."""
        return self._page_like_count

    # -- anonymous pixel route ------------------------------------------------

    def via_pixel(self, browser: Browser) -> None:
        """The user's browser loads the opt-in page; the platform's pixel
        fires. The provider's own log sees at most a first-party cookie."""
        visit = browser.visit(self.website, OPTIN_PATH)
        self._platform.observe_visit(visit)

    # -- hashed-PII route -----------------------------------------------------

    def submit_hashed_pii(self, records: List[PIIRecord]) -> None:
        """A user (or their extension) hands over hashed PII records.

        Raw-looking values are rejected at :class:`PIIRecord` construction,
        but we re-check here defensively: the provider must never be able
        to accumulate raw PII.
        """
        if not records:
            raise OptInError("empty PII submission")
        for record in records:
            if not is_hashed(record.digest):
                raise PIIError("provider received non-hashed PII")
            self._pii_batches.setdefault(record.kind, []).append(record)

    def pii_batch(self, kind: str) -> List[PIIRecord]:
        """All hashes collected for one PII kind (to build the audience)."""
        return list(self._pii_batches.get(kind, []))

    def pii_kinds(self) -> List[str]:
        return sorted(self._pii_batches)

    # -- per-attribute custom route --------------------------------------------

    def custom_optin_page(self, label: str) -> CustomOptIn:
        """Get-or-create the dedicated page + pixel for a custom attribute.

        "a distinct (for each attribute) web-page on which they have placed
        a distinct tracking pixel" (section 3.1).
        """
        slug = _slugify(label)
        if slug in self._custom:
            return self._custom[slug]
        pixel = self._platform.issue_pixel(
            self._account_id, label=f"custom:{slug}"
        )
        path = CUSTOM_PATH_PREFIX + slug
        self._install_pixel(
            path,
            pixel.pixel_id,
            content=f"Opt in to learn whether you match: {label}.",
        )
        optin = CustomOptIn(label=label, path=path, pixel=pixel)
        self._custom[slug] = optin
        return optin

    def via_custom_pixel(self, browser: Browser, label: str) -> None:
        """The user visits one custom attribute's opt-in page."""
        optin = self.custom_optin_page(label)
        visit = browser.visit(self.website, optin.path)
        self._platform.observe_visit(visit)

    def custom_optins(self) -> List[CustomOptIn]:
        return list(self._custom.values())
