"""Evading shutdown by crowdsourcing the transparency provider.

Paper section 4, "Evading shutdown": *"detection or shutdown of Treads
could still be made difficult by distributing them across a number of
advertising accounts, effectively crowdsourcing the transparency provider
... with each account being responsible for a small subset of the overall
set of targeting attributes."*

:class:`CrowdsourcedProvider` shards an attribute list over ``k`` member
accounts (each a full :class:`~repro.core.provider.TransparencyProvider`
with its own ad account, page, and budget) that share one codebook, so
subscribers decode all shards with a single decode pack. Benchmark E11
runs the platform's :class:`~repro.platform.policy.TreadPatternDetector`
against varying ``k`` to reproduce the paper's argument: per-account
footprint shrinks ~1/k, detector recall collapses, and user-side reveal
coverage stays complete.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.codebook import Codebook
from repro.core.provider import DecodePack, LaunchReport, TransparencyProvider
from repro.core.treads import Encoding, Placement
from repro.errors import ProviderError
from repro.platform.attributes import Attribute
from repro.platform.platform import AdPlatform
from repro.platform.web import WebDirectory


def shard_attributes(
    attributes: Sequence[Attribute], shards: int
) -> List[List[Attribute]]:
    """Round-robin split of the attribute list into ``shards`` subsets.

    Round-robin keeps shard sizes within one of each other, minimising the
    largest per-account footprint (the quantity the detector thresholds).
    """
    if shards < 1:
        raise ValueError("need at least one shard")
    out: List[List[Attribute]] = [[] for _ in range(shards)]
    for index, attribute in enumerate(attributes):
        out[index % shards].append(attribute)
    return out


@dataclass
class CrowdsourceReport:
    """Launch outcome across all member accounts."""

    per_account: Dict[str, LaunchReport] = field(default_factory=dict)

    @property
    def total_launched(self) -> int:
        return sum(len(r.launched) for r in self.per_account.values())

    @property
    def total_rejected(self) -> int:
        return sum(len(r.rejected) for r in self.per_account.values())

    @property
    def largest_account_footprint(self) -> int:
        """Max ads on any single account — what per-account auditing sees."""
        if not self.per_account:
            return 0
        return max(len(r.treads) for r in self.per_account.values())


class CrowdsourcedProvider:
    """k independent advertiser accounts jointly running one Tread campaign.

    Every member opts users in through its *own* page (each organisation
    runs its own opt-in, as the paper sketches — "a number of
    privacy-conscious organizations or individuals could each create an
    advertising account and run a few Treads").
    """

    def __init__(
        self,
        platform: AdPlatform,
        web: WebDirectory,
        members: int,
        name: str = "transparency-coop",
        budget_per_member: float = 200.0,
        encoding: Encoding = Encoding.CODEBOOK,
        placement: Placement = Placement.IN_AD_TEXT,
        bid_cap_cpm: float = 10.0,
    ):
        if members < 1:
            raise ProviderError("need at least one member account")
        self.platform = platform
        self.name = name
        self.codebook = Codebook(salt=name)
        self.members: List[TransparencyProvider] = [
            TransparencyProvider(
                platform=platform,
                web=web,
                name=f"{name}-{index:02d}",
                budget=budget_per_member,
                encoding=encoding,
                placement=placement,
                bid_cap_cpm=bid_cap_cpm,
                codebook=self.codebook,
            )
            for index in range(members)
        ]

    def optin_everywhere(self, user_id: str) -> None:
        """The user likes every member's page (subscribing to the co-op
        means subscribing to each member's shard)."""
        for member in self.members:
            member.optin.via_page_like(user_id)

    def launch_sweep(
        self,
        attributes: Sequence[Attribute],
        include_control: bool = True,
    ) -> CrowdsourceReport:
        """Shard ``attributes`` across members and launch every shard.

        Only the first member runs the control ad — one reachability
        signal suffices for the whole co-op.
        """
        report = CrowdsourceReport()
        shards = shard_attributes(attributes, len(self.members))
        for index, (member, shard) in enumerate(zip(self.members, shards)):
            launch = member.launch_attribute_sweep(
                shard,
                include_control=(include_control and index == 0),
            )
            report.per_account[member.account.account_id] = launch
        return report

    def run_delivery(self) -> None:
        self.platform.run_until_saturated()

    def publish_decode_pack(self) -> DecodePack:
        """One decode pack covering every member's Treads.

        The shared codebook means a single snapshot decodes all shards;
        the pack lists every member account so clients recognise ads from
        any of them.
        """
        account_ids = {
            f"{self.platform.name}:{member.name}": member.account.account_id
            for member in self.members
        }
        landing_domains = tuple(
            member.website.domain for member in self.members
        )
        return DecodePack(
            provider_name=self.name,
            codebook_snapshot=self.codebook.snapshot(),
            codebook_salt=self.codebook.salt,
            value_tables={},
            account_ids=account_ids,
            landing_domains=landing_domains,
        )

    def ads_by_account(self) -> Dict[str, list]:
        """The platform auditor's view: every account's submitted ads."""
        return {
            member.account.account_id: self.platform.inventory.ads_owned_by(
                member.account.account_id
            )
            for member in self.members
        }

    def total_spend(self) -> float:
        return sum(member.total_spend() for member in self.members)
