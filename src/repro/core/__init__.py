"""Treads — transparency-enhancing advertisements (the paper's contribution).

A *Tread* is a targeted advertisement whose content reveals the targeting
used to place it. Because the platform delivers it iff the viewer matches
the targeting, each received Tread teaches the viewer one fact about the
platform's profile of them — without the advertiser (the *transparency
provider*) learning which users got which Treads.

Public entry points:

* :class:`~repro.core.provider.TransparencyProvider` — the non-profit-style
  operator: opt-in flows, campaign planning/launch, spend accounting;
* :class:`~repro.core.client.TreadClient` — the user side ("browser
  extension"): collects delivered Treads, decodes payloads, reconstructs
  the revealed profile;
* :mod:`~repro.core.planner` — one-Tread-per-attribute, exclusion Treads,
  and the log2(m) bit-splitting scheme for multi-valued attributes;
* :mod:`~repro.core.costs` — the paper's cost arithmetic ($0.002 per
  attribute at $2 CPM);
* :mod:`~repro.core.privacy` — what the provider can and cannot learn;
* :mod:`~repro.core.advertiser` — advertiser-driven explanations (section 4);
* :mod:`~repro.core.crowdsource` — sharding Treads across accounts to
  evade shutdown (section 4).
"""

from repro.core.client import RevealedProfile, TreadClient
from repro.core.codebook import Codebook
from repro.core.monitoring import ProfileDiff, diff_profiles
from repro.core.packformat import pack_from_json, pack_to_json, validate_pack
from repro.core.provider import DecodePack, TransparencyProvider
from repro.core.scheduler import PacedCampaignRunner
from repro.core.treads import (
    Encoding,
    Placement,
    RevealKind,
    RevealPayload,
    Tread,
)

__all__ = [
    "Codebook",
    "DecodePack",
    "PacedCampaignRunner",
    "ProfileDiff",
    "RevealedProfile",
    "diff_profiles",
    "pack_from_json",
    "pack_to_json",
    "validate_pack",
    "Encoding",
    "Placement",
    "RevealKind",
    "RevealPayload",
    "Tread",
    "TreadClient",
    "TransparencyProvider",
]
