"""Deterministic identifier generation.

The simulator must be reproducible run-to-run (benchmarks compare shapes
against the paper), so identifiers are generated from per-kind counters
rather than UUIDs. An :class:`IdFactory` hands out ids like ``user-000042``;
each :class:`~repro.platform.platform.AdPlatform` owns one factory so two
platforms in the same process never hand out clashing ids for the same kind.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from typing import Dict, Iterator


class IdFactory:
    """Hands out deterministic, human-readable identifiers.

    >>> ids = IdFactory(prefix="fb")
    >>> ids.next("user")
    'fb-user-000000'
    >>> ids.next("user")
    'fb-user-000001'
    >>> ids.next("ad")
    'fb-ad-000000'
    """

    def __init__(self, prefix: str = ""):
        self._prefix = prefix
        self._counters: Dict[str, Iterator[int]] = defaultdict(itertools.count)

    @property
    def prefix(self) -> str:
        return self._prefix

    def next(self, kind: str) -> str:
        """Return the next id for ``kind``, e.g. ``next("user")``."""
        number = next(self._counters[kind])
        if self._prefix:
            return f"{self._prefix}-{kind}-{number:06d}"
        return f"{kind}-{number:06d}"

    def peek_count(self, kind: str) -> int:
        """Return how many ids of ``kind`` have been issued so far.

        Peeking does not consume an id; it is implemented by cloning the
        underlying counter.
        """
        original = self._counters[kind]
        clone_a, clone_b = itertools.tee(original)
        self._counters[kind] = clone_a
        return next(clone_b)
