"""repro.serve — sharded, concurrent ad serving with admission control.

The simulator's delivery engine answers "who sees what" one synchronous
call at a time; this package wraps it in the shape of a real serving
system: typed requests with deadlines (:mod:`repro.serve.requests`),
users consistently hashed onto shard-owned engines
(:mod:`repro.serve.sharding`), worker pools with bounded queues,
micro-batching and load shedding (:mod:`repro.serve.runtime`), an
optional process-per-shard backend that moves each shard's engine into
a subprocess behind a length-prefixed pipe protocol
(:mod:`repro.serve.ipc`), and an open-loop load generator to measure
it honestly (:mod:`repro.serve.loadgen`). Delivery semantics are
unchanged — a
fixed request sequence produces byte-identical reports for any shard
count — so everything the paper's analyses say about reach and
delivery still holds when served this way.
"""

from repro.serve.ipc import Framer, ShardWorkerClient, WorkerLost
from repro.serve.loadgen import (
    LoadConfig,
    LoadGenerator,
    LoadReport,
    build_schedule,
)
from repro.serve.requests import (
    AdRequest,
    AdResponse,
    ServeResult,
    ServeStatus,
    ServeTally,
)
from repro.serve.runtime import BACKENDS, RuntimeConfig, ServingRuntime
from repro.serve.sharding import (
    KeyedCompetition,
    Shard,
    ShardRouter,
    journal_store_factory,
    shard_index,
    shard_journal_path,
    shard_snapshot_path,
)

__all__ = [
    "AdRequest",
    "AdResponse",
    "BACKENDS",
    "Framer",
    "KeyedCompetition",
    "LoadConfig",
    "LoadGenerator",
    "LoadReport",
    "RuntimeConfig",
    "ServeResult",
    "ServeStatus",
    "ServeTally",
    "ServingRuntime",
    "Shard",
    "ShardRouter",
    "ShardWorkerClient",
    "WorkerLost",
    "build_schedule",
    "journal_store_factory",
    "shard_index",
    "shard_journal_path",
    "shard_snapshot_path",
]
