"""The serving runtime: shard worker pools, micro-batching, admission.

Request lifecycle::

    submit() ──hash──> shard queue ──worker──> micro-batch ──> SERVED
        │ queue full                  │ deadline expired
        └──> SHED (no work done)      └──> TIMEOUT (no work done)

Admission control happens at the two points where refusing is still
cheap: a full shard queue sheds at submit time (backpressure — the
bounded queue *is* the overload signal), and an expired deadline sheds
at dequeue time (serving an answer the page stopped waiting for is pure
waste). Both paths skip the delivery engine entirely; only requests
that survive admission cost real work, which is what keeps latency
bounded under overload instead of collapsing.

Each worker drains its shard's queue in FIFO order and coalesces up to
``max_batch`` waiting requests into one delivery pass under the shard
lock, inside one engine serving session — so the audience snapshot and
match cache amortize across the batch the same way they do across a
``run_sessions`` round.

Determinism contract: with ``workers_per_shard=1`` (the default), each
user's requests are served in submission order (user→shard affinity +
FIFO queue + single consumer), and competing bids are keyed per
``(user, slot)`` — so a fixed request sequence yields byte-identical
delivery reports for any shard count (``tests/serve/``). Raising
``workers_per_shard`` buys throughput by letting batches from the same
shard's queue interleave, which trades that replay guarantee away;
aggregate invariants (caps, deliver-iff-match) still hold because the
shard lock keeps each engine single-entrant.

Two backends, one admission plane. ``backend="thread"`` runs the loop
above with in-process workers (GIL-bound — fine for determinism tests,
flat for throughput). ``backend="process"`` forks one worker process
per shard and the same loop becomes a router thread: dequeue, deadline-
check, then frame the surviving micro-batch to the worker over the
batched IPC codec in :mod:`repro.serve.ipc`. Admission, shedding,
deadlines, and slot-claim sequencing stay in the parent either way, so
the two backends produce byte-identical delivery reports and overload
never costs a worker process anything.
"""

from __future__ import annotations

import logging
import queue
import threading
from concurrent.futures import Future
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import StoreError
from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing
from repro.obs.names import LATENCY_BUCKETS
from repro.obs.timeseries import (
    MetricSample,
    TimeSeriesBuffer,
    sample_registry,
)
from repro.platform.platform import AdPlatform
from repro.serve import ipc as _ipc
from repro.serve.requests import (
    AdRequest,
    AdResponse,
    ServeResult,
    ServeStatus,
)
from repro.serve.sharding import (
    KeyedCompetition,
    Shard,
    ShardRouter,
    journal_store_factory,
)
from repro.store.snapshot import Snapshot

#: Valid values for :attr:`RuntimeConfig.backend`.
BACKENDS = ("thread", "process")

_log = logging.getLogger("repro.serve.runtime")


@dataclass(frozen=True)
class RuntimeConfig:
    """Tuning knobs for :class:`ServingRuntime` (see ``docs/serving.md``)."""

    #: Number of user shards (engines, queues, worker pools).
    num_shards: int = 4
    #: Worker threads per shard. 1 (default) preserves per-user request
    #: order and therefore shard-count-invariant replay; more trades
    #: that for throughput.
    workers_per_shard: int = 1
    #: Bounded shard queue size; submissions beyond it are SHED.
    queue_capacity: int = 256
    #: Max requests coalesced into one delivery pass.
    max_batch: int = 32
    #: Deadline applied to requests that do not carry their own.
    default_deadline_s: Optional[float] = None
    #: Directory for per-shard write-ahead journals and snapshots. When
    #: set (and no prebuilt router is passed), every shard's state store
    #: is an on-disk :class:`repro.store.JournalStore` and the runtime
    #: supports :meth:`ServingRuntime.checkpoint` /
    #: :meth:`ServingRuntime.recover_shard`. ``None`` keeps shard state
    #: in memory.
    journal_dir: Optional[str] = None
    #: ``"thread"`` serves from in-process shard workers (the GIL-bound
    #: default); ``"process"`` forks one worker process per shard and
    #: serves over batched IPC frames — true multi-core scale-out with
    #: admission control still in the parent (``docs/serving.md``).
    backend: str = "thread"
    #: When set, a telemetry thread samples the live registry (and, on
    #: the process backend, polls every worker's registry + finished
    #: spans over IPC) every this-many seconds into
    #: :attr:`ServingRuntime.telemetry`. ``None`` (default) streams
    #: nothing — the merge still happens once at :meth:`stop`.
    telemetry_interval_s: Optional[float] = None
    #: Sliding retention window of the telemetry time series, seconds.
    telemetry_retention_s: float = 60.0

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("need at least one shard")
        if self.workers_per_shard < 1:
            raise ValueError("need at least one worker per shard")
        if self.queue_capacity < 1:
            raise ValueError("queue capacity must be positive")
        if self.max_batch < 1:
            raise ValueError("batch size must be positive")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got "
                f"{self.backend!r}")
        if self.backend == "process" and self.workers_per_shard != 1:
            raise ValueError(
                "the process backend serves each shard from one "
                "single-threaded worker process; workers_per_shard "
                "must be 1")
        if self.telemetry_interval_s is not None \
                and self.telemetry_interval_s <= 0:
            raise ValueError("telemetry interval must be positive")
        if self.telemetry_retention_s <= 0:
            raise ValueError("telemetry retention must be positive")


class _QueuedRequest:
    """A request in flight: payload, its future, and admission facts."""

    __slots__ = ("request", "future", "base_seq", "deadline_s",
                 "enqueued_at", "span")

    def __init__(self, request: AdRequest, future: "Future[ServeResult]",
                 base_seq: int, deadline_s: Optional[float],
                 enqueued_at: float,
                 span: Optional[_tracing.Span] = None):
        self.request = request
        self.future = future
        self.base_seq = base_seq
        self.deadline_s = deadline_s
        self.enqueued_at = enqueued_at
        #: The request's ``serve.request`` span (None with tracing off):
        #: begun at admission, finished wherever the result resolves.
        self.span = span


class _ShardStats:
    """Parent-side live outcome counts for one shard.

    The process backend resolves every result in the parent, so these
    run during the run even while the worker's own registry is remote;
    updates are single GIL-coalesced adds on the resolve path (same
    guarantee as the registry's instruments).
    """

    __slots__ = ("served", "shed", "timeout", "errored", "latency")

    def __init__(self, index: int):
        self.served = 0
        self.shed = 0
        self.timeout = 0
        self.errored = 0
        self.latency = _metrics.Histogram(
            f"serve.shard{index}.latency_s", buckets=LATENCY_BUCKETS)

    def add(self, status: ServeStatus, latency_s: float) -> None:
        if status is ServeStatus.SERVED:
            self.served += 1
        elif status is ServeStatus.SHED:
            self.shed += 1
        elif status is ServeStatus.TIMEOUT:
            self.timeout += 1
        else:
            self.errored += 1
        self.latency.observe(latency_s)


class ServingRuntime:
    """Concurrent ad serving over a :class:`ShardRouter`.

    Use as a context manager (starts workers on enter, stops on exit)
    or call :meth:`start` / :meth:`stop` explicitly. :meth:`submit`
    never blocks and always resolves its future with a
    :class:`ServeResult`; :meth:`serve_and_wait` is the synchronous
    convenience the equivalence tests and CLI use.
    """

    def __init__(
        self,
        platform: AdPlatform,
        config: Optional[RuntimeConfig] = None,
        competition: Optional[KeyedCompetition] = None,
        router: Optional[ShardRouter] = None,
    ):
        self.config = config or RuntimeConfig()
        if router is not None and self.config.backend == "process":
            # The process backend's router shards are in-memory shadows
            # seeded into (and merged back from) worker processes; a
            # prebuilt router would smuggle in stores the workers also
            # own.
            raise ValueError(
                "the process backend builds its own shadow router; "
                "do not pass one in")
        self.router = router or ShardRouter(
            platform,
            num_shards=self.config.num_shards,
            competition=competition,
            # Thread workers journal in-process. Process workers own
            # the journal files themselves: the parent-side shards stay
            # in-memory shadows, seeded at spawn and refreshed at stop.
            store_factory=(
                journal_store_factory(self.config.journal_dir)
                if (self.config.journal_dir is not None
                    and self.config.backend == "thread") else None
            ),
        )
        if router is not None and config is not None \
                and router.num_shards != config.num_shards:
            raise ValueError("router shard count disagrees with config")
        self.platform = platform
        self._queues: List["queue.Queue[_QueuedRequest]"] = [
            queue.Queue(maxsize=self.config.queue_capacity)
            for _ in range(self.router.num_shards)
        ]
        self._submit_locks = [threading.Lock()
                              for _ in range(self.router.num_shards)]
        self._workers: List[threading.Thread] = []
        self._clients: List[Optional[_ipc.ShardWorkerClient]] = []
        #: True once the shadow shards hold state worker processes must
        #: inherit (after a merge-back, recovery, or rebalance) — the
        #: signal to seed freshly spawned workers.
        self._shadow_dirty = False
        self._stop = threading.Event()
        self._running = False
        self._pending = 0
        self._pending_cond = threading.Condition()
        #: Live time series the telemetry thread appends to (readable
        #: any time; populated only with ``telemetry_interval_s`` set —
        #: or by explicit :meth:`sample_telemetry` calls).
        self.telemetry = TimeSeriesBuffer(
            capacity=4096, max_age_s=self.config.telemetry_retention_s)
        self._telemetry_thread: Optional[threading.Thread] = None
        self._telemetry_listeners: List[
            Callable[["ServingRuntime", MetricSample], None]] = []
        self._telemetry_lock = threading.Lock()
        #: Latest ``to_state`` dump per shard worker (process backend),
        #: replaced wholesale on every poll, cleared at merge-back.
        self._worker_states: Dict[int, List[Dict[str, object]]] = {}
        self._shard_stats = [_ShardStats(i)
                             for i in range(self.router.num_shards)]
        reg = _metrics.registry()
        self._m_submitted = reg.counter("serve.requests_submitted")
        self._m_served = reg.counter("serve.requests_served")
        self._m_shed = reg.counter("serve.requests_shed")
        self._m_timeout = reg.counter("serve.requests_timeout")
        self._m_errored = reg.counter("serve.requests_errored")
        self._m_errors = reg.counter("serve.errors")
        self._m_depth = reg.gauge("serve.queue_depth")
        self._m_batch = reg.histogram("serve.batch_size")
        self._m_latency = reg.histogram("serve.request_latency_s")
        self._m_service = reg.histogram("serve.service_time_s")
        self._m_polls = reg.counter("serve.telemetry_polls")
        self._m_spans_merged = reg.counter("serve.trace_spans_merged")

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._running

    def start(self, spawn_workers: bool = True) -> "ServingRuntime":
        """Open for admission; spawn the shard worker pools.

        ``spawn_workers=False`` opens admission without consumers —
        queues fill and shed deterministically, which is how the
        overload tests exercise backpressure without racing real
        workers; call :meth:`spawn_workers` afterwards to serve
        whatever was admitted.
        """
        if self._running:
            raise RuntimeError("runtime already started")
        self._stop.clear()
        self._workers = []
        self._running = True
        if spawn_workers:
            self.spawn_workers()
        if self.config.telemetry_interval_s is not None:
            self._telemetry_thread = threading.Thread(
                target=self._telemetry_loop,
                name="serve-telemetry",
                daemon=True,
            )
            self._telemetry_thread.start()
        return self

    def spawn_workers(self) -> None:
        if self._workers:
            raise RuntimeError("workers already spawned")
        if self.config.backend == "process":
            self._spawn_process_workers()
            return
        for shard in self.router.shards:
            for worker_index in range(self.config.workers_per_shard):
                thread = threading.Thread(
                    target=self._worker_loop,
                    args=(shard, self._queues[shard.index], None),
                    name=f"serve-shard{shard.index}-w{worker_index}",
                    daemon=True,
                )
                thread.start()
                self._workers.append(thread)
        _log.info("serving runtime started: %d shards x %d workers",
                  self.router.num_shards, self.config.workers_per_shard)

    def _spawn_process_workers(self) -> None:
        """Fork one worker process per shard, then start the router
        threads that speak to them.

        Order matters twice: every fork happens before any router
        thread exists (forking with live threads inherits their locks
        mid-flight), and workers are seeded from the shadow shards'
        checkpoints only once those shadows actually hold state —
        a first spawn starts empty and cheap.
        """
        for shard in self.router.shards:
            seed_state = (shard.store.checkpoint(label="spawn-seed").state
                          if self._shadow_dirty else None)
            self._clients.append(_ipc.spawn_shard_worker(
                self.router, shard.index, self.config.journal_dir,
                seed_state))
        for shard in self.router.shards:
            thread = threading.Thread(
                target=self._worker_loop,
                args=(shard, self._queues[shard.index],
                      self._clients[shard.index]),
                name=f"serve-shard{shard.index}-io",
                daemon=True,
            )
            thread.start()
            self._workers.append(thread)
        _log.info("serving runtime started: %d shard worker processes",
                  self.router.num_shards)

    def stop(self, drain: bool = True,
             timeout: Optional[float] = 30.0) -> None:
        """Stop workers; by default finishes queued work first.

        Requests still queued when the workers exit — ``drain=False``, a
        drain that timed out, or admission without workers — are
        resolved as TIMEOUT on the way down: an admitted request's
        future always gets a terminal result, never a silent drop, so
        ``served + shed + timeout + errored == submitted`` holds across
        shutdown too.
        """
        if not self._running:
            return
        if drain and self._workers:
            self.drain(timeout=timeout)
        self._stop.set()
        for thread in self._workers:
            thread.join(timeout=timeout)
        self._workers = []
        if self._telemetry_thread is not None:
            self._telemetry_thread.join(timeout=timeout)
            self._telemetry_thread = None
        self._flush_unserved()
        if self._clients:
            self._merge_back_workers()
        for shard in self.router.shards:
            shard.store.flush()
        self._running = False
        if self.config.telemetry_interval_s is not None:
            # One last sample after the merge-back, so the series'
            # final row carries the complete (merged) totals.
            self.sample_telemetry()

    def _merge_back_workers(self) -> None:
        """Stop every worker process and fold its world back in.

        Each worker answers the stop frame with a final checkpoint of
        its store (restored into the parent's shadow shard, so every
        aggregation API keeps working unchanged after the run) and its
        metrics registry dump (merged into the parent registry). The
        shadow keeps the parent's admission-time slot counters where
        they ran ahead of the worker's — shed and timed-out requests
        claimed slot keys the worker never saw, and the thread backend
        counts those claims too. A worker that died mid-run is skipped:
        its shadow stays stale until :meth:`recover_shard` rebuilds it
        from the journal the worker flushed batch by batch.
        """
        reg = _metrics.registry()
        trc = _tracing.tracer()
        for shard, client in zip(self.router.shards, self._clients):
            if client is None:
                continue
            admission_seq = dict(shard.slot_seq)
            try:
                snapshot, metrics_state, spans = client.shutdown()
            except (_ipc.WorkerLost, RuntimeError) as exc:
                _log.warning(
                    "shard %d worker lost before merge-back (%s); "
                    "shadow state is stale until recover_shard",
                    shard.index, exc)
                client.reap()
                continue
            shard.store.restore(snapshot)
            for user_id, seq in admission_seq.items():
                if seq > shard.slot_seq.get(user_id, 0):
                    shard.slot_seq[user_id] = seq
            reg.merge_state(metrics_state)
            if spans:
                self._m_spans_merged.inc(trc.adopt(spans))
        self._clients = []
        # The workers' counts now live in the parent registry; keeping
        # the streamed per-shard snapshots around would double-count
        # them in every later live_metrics() read.
        self._worker_states = {}
        self._shadow_dirty = True

    def _flush_unserved(self) -> None:
        """Resolve every still-queued request as TIMEOUT (no delivery
        work was or will be done for it)."""
        flushed = 0
        for shard in self.router.shards:
            shard_queue = self._queues[shard.index]
            while True:
                try:
                    item = shard_queue.get_nowait()
                except queue.Empty:
                    break
                self._m_depth.dec()
                self._m_timeout.inc()
                self._resolve(item, ServeResult(
                    request=item.request,
                    status=ServeStatus.TIMEOUT,
                    shard_index=shard.index,
                    queued_s=perf_counter() - item.enqueued_at,
                ))
                flushed += 1
        if flushed:
            _log.info("shutdown drained %d unserved requests as TIMEOUT",
                      flushed)

    def __enter__(self) -> "ServingRuntime":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def drain(self, timeout: Optional[float] = 30.0) -> bool:
        """Block until every submitted request has a result.

        Returns False if ``timeout`` elapsed first.
        """
        deadline = None if timeout is None else perf_counter() + timeout
        with self._pending_cond:
            while self._pending > 0:
                remaining = (None if deadline is None
                             else deadline - perf_counter())
                if remaining is not None and remaining <= 0:
                    return False
                self._pending_cond.wait(timeout=remaining)
        return True

    # -- live telemetry ----------------------------------------------------

    def add_telemetry_listener(
        self,
        listener: Callable[["ServingRuntime", MetricSample], None],
    ) -> None:
        """Call ``listener(runtime, sample)`` after every telemetry
        sample (exception-fenced; a failing listener never stalls the
        stream). ``repro top`` and ``--metrics-out`` hang off this."""
        self._telemetry_listeners.append(listener)

    def _telemetry_loop(self) -> None:
        interval = self.config.telemetry_interval_s
        assert interval is not None
        while not self._stop.wait(interval):
            try:
                self.sample_telemetry()
            except Exception:  # noqa: BLE001 - keep the stream alive
                _log.exception("telemetry sample failed")

    def sample_telemetry(self) -> MetricSample:
        """Take one telemetry sample; append it to :attr:`telemetry`.

        On the process backend this is the streaming merge: every live
        worker is polled for its cumulative registry state (replacing
        the previous per-shard snapshot) and for spans finished since
        the last poll (adopted into the current tracer), so counters
        and traces advance *during* the run instead of materialising
        at stop. The sample combines :meth:`live_metrics` with
        parent-side per-shard outcome counts and queue depths under
        ``serve.shard<i>.*`` keys.
        """
        trc = _tracing.tracer()
        with self._telemetry_lock:
            for shard, client in zip(self.router.shards, self._clients):
                if client is None or client.lost:
                    continue
                try:
                    reply = client.poll_telemetry()
                except (_ipc.WorkerLost, RuntimeError) as exc:
                    _log.warning("shard %d telemetry poll failed: %s",
                                 shard.index, exc)
                    continue
                self._worker_states[shard.index] = reply["metrics"]
                spans = reply.get("spans") or []
                if spans:
                    self._m_spans_merged.inc(trc.adopt(spans))
            self._m_polls.inc()
            extra_scalars: Dict[str, float] = {}
            extra_hists: Dict[str, _metrics.Histogram] = {}
            for index, stats in enumerate(self._shard_stats):
                prefix = f"serve.shard{index}"
                if index < len(self._queues):
                    extra_scalars[f"{prefix}.queue_depth"] = float(
                        self._queues[index].qsize())
                extra_scalars[f"{prefix}.served"] = float(stats.served)
                extra_scalars[f"{prefix}.shed"] = float(stats.shed)
                extra_scalars[f"{prefix}.timeout"] = float(stats.timeout)
                extra_scalars[f"{prefix}.errored"] = float(stats.errored)
                extra_hists[f"{prefix}.latency_s"] = stats.latency
            sample = sample_registry(
                self.live_metrics(), perf_counter(),
                extra_scalars=extra_scalars,
                extra_histograms=extra_hists)
            self.telemetry.append(sample)
        for listener in list(self._telemetry_listeners):
            try:
                listener(self, sample)
            except Exception:  # noqa: BLE001 - listeners are fenced
                _log.exception("telemetry listener failed")
        return sample

    def live_metrics(self) -> _metrics.MetricsRegistry:
        """The run's counters *as of now*, merged across processes.

        A fresh registry folding the parent's registry state with the
        latest streamed snapshot from every shard worker — the mid-run
        equivalent of the merge :meth:`stop` performs once at the end.
        (After stop, the worker snapshots are cleared and the parent
        registry already holds the merged totals.)
        """
        merged = _metrics.MetricsRegistry(name="live")
        merged.merge_state(_metrics.registry().to_state())
        for state in self._worker_states.values():
            merged.merge_state(state)
        return merged

    def rebalance(self, num_shards: int) -> None:
        """Re-shard users (must be stopped; see ``ShardRouter.rebalance``)."""
        if self._running:
            raise RuntimeError("stop the runtime before rebalancing")
        self.router.rebalance(num_shards)
        if self.config.backend == "process":
            self._shadow_dirty = True
        self._queues = [
            queue.Queue(maxsize=self.config.queue_capacity)
            for _ in range(num_shards)
        ]
        self._submit_locks = [threading.Lock() for _ in range(num_shards)]
        self._shard_stats = [_ShardStats(i) for i in range(num_shards)]
        self._worker_states = {}

    def checkpoint(self, label: str = "") -> List[Snapshot]:
        """Snapshot every shard's state at its journal position.

        Drains in-flight work first (a snapshot mid-batch would split a
        request's effects across the snapshot boundary), then dumps each
        shard under its lock. With a ``journal_dir`` configured the
        snapshots are also written next to the journals, where
        :meth:`recover_shard` finds them. The caller must not race new
        submissions against the checkpoint.
        """
        if self._running:
            self.drain()
        if self.config.backend == "process":
            if self._clients:
                # The workers hold the live state and journal position;
                # they snapshot at their own journal offsets (and save
                # next to their journals), exactly like a thread-mode
                # shard does in-process.
                return [client.checkpoint(label, self.config.journal_dir)
                        for client in self._clients
                        if client is not None]
            if self.config.journal_dir is not None:
                # A stopped process runtime's shadows are in-memory
                # merges at journal position 0 — writing them to disk
                # would pair a stale journal_seq with the journal a
                # worker wrote, and recovery would double-apply the
                # suffix.
                raise RuntimeError(
                    "the process backend checkpoints through its "
                    "worker processes; start the runtime first")
        return self.router.checkpoint_shards(
            directory=self.config.journal_dir, label=label)

    def recover_shard(self, index: int) -> Shard:
        """Rebuild one shard from its on-disk snapshot + journal.

        The crash-recovery entry point: call with the runtime stopped
        (e.g. after a shard's state was lost mid-run), then start again
        — the replacement shard carries every cap, charge, feed, and
        slot counter the journal proves, so nothing is re-delivered or
        double-charged when serving resumes.
        """
        if self._running:
            raise RuntimeError("stop the runtime before recovering a shard")
        if self.config.journal_dir is None:
            raise StoreError(
                "shard recovery needs a runtime configured with "
                "journal_dir")
        if self.config.backend == "process":
            # Rebuild the in-memory shadow from the worker's journal +
            # snapshot; the journal file stays closed — it belongs to
            # the replacement worker the next start() spawns (seeded
            # from this recovered shadow).
            shard = self.router.recover_shard(
                index, self.config.journal_dir, reopen_journal=False)
            self._shadow_dirty = True
            return shard
        return self.router.recover_shard(index, self.config.journal_dir)

    # -- admission ---------------------------------------------------------

    def submit(self, request: AdRequest) -> "Future[ServeResult]":
        """Admit one request; never blocks.

        The returned future always resolves to a :class:`ServeResult`
        — a full shard queue resolves it immediately as SHED.
        """
        if not self._running:
            raise RuntimeError("runtime is not started")
        shard = self.router.shard_for(request.user_id)
        future: "Future[ServeResult]" = Future()
        deadline_s = (request.deadline_s
                      if request.deadline_s is not None
                      else self.config.default_deadline_s)
        self._m_submitted.inc()
        trc = _tracing.tracer()
        span = None
        if trc.enabled:
            # Off-stack: the span begins on the submitting thread and
            # finishes wherever the result resolves (a shard worker
            # thread, a router thread, or shutdown). A fresh trace id
            # makes it the root of this request's trace; the enclosing
            # loadgen.run span (if any) still parents it.
            span = trc.begin_span(
                "serve.request", trace_id=trc.new_trace_id(),
                user_id=request.user_id, shard=shard.index,
                slots=request.slots)
        with self._submit_locks[shard.index]:
            # Slot indices are claimed at admission, under the submit
            # lock, so the competing-bid key for each of this user's
            # slots depends only on submission order — not on when a
            # worker gets to the request or how many shards exist. The
            # claim is journaled (see Shard.claim_slots) so a recovered
            # shard resumes the same keyed sequence.
            base_seq = shard.claim_slots(request.user_id, request.slots)
            item = _QueuedRequest(
                request=request,
                future=future,
                base_seq=base_seq,
                deadline_s=deadline_s,
                enqueued_at=perf_counter(),
                span=span,
            )
            try:
                self._queues[shard.index].put_nowait(item)
            except queue.Full:
                self._m_shed.inc()
                self._resolve(item, ServeResult(
                    request=request,
                    status=ServeStatus.SHED,
                    shard_index=shard.index,
                ), count_pending=False)
                return future
        with self._pending_cond:
            self._pending += 1
        self._m_depth.inc()
        return future

    def serve_and_wait(self, requests: Sequence[AdRequest],
                       timeout: Optional[float] = 60.0
                       ) -> List[ServeResult]:
        """Submit a request sequence and wait for all results, in order."""
        futures = [self.submit(request) for request in requests]
        return [future.result(timeout=timeout) for future in futures]

    # -- the worker --------------------------------------------------------

    def _worker_loop(self, shard: Shard,
                     shard_queue: "queue.Queue[_QueuedRequest]",
                     client: Optional[_ipc.ShardWorkerClient]) -> None:
        """Drain one shard's queue into micro-batches.

        The same loop serves both backends: with ``client=None`` the
        batch runs in-process on this thread (thread backend); with a
        client it is framed to the shard's worker process and this
        thread only does admission + IPC (process backend).
        """
        while True:
            try:
                first = shard_queue.get(timeout=0.05)
            except queue.Empty:
                if self._stop.is_set():
                    return
                continue
            batch = [first]
            while len(batch) < self.config.max_batch:
                try:
                    batch.append(shard_queue.get_nowait())
                except queue.Empty:
                    break
            if client is None:
                self._serve_batch(shard, batch)
            else:
                self._serve_batch_remote(shard, client, batch)

    def _admit_batch(self, shard: Shard,
                     batch: List[_QueuedRequest]) -> List[_QueuedRequest]:
        """Deadline-check a dequeued batch; expired requests resolve as
        TIMEOUT here, before any delivery work — and, on the process
        backend, before any IPC: overload costs the worker process
        nothing."""
        self._m_depth.dec(len(batch))
        trc = _tracing.tracer()
        now = perf_counter()
        live: List[_QueuedRequest] = []
        for item in batch:
            if item.deadline_s is not None \
                    and now - item.enqueued_at > item.deadline_s:
                # Stale before any work: drop it at the door.
                self._m_timeout.inc()
                self._resolve(item, ServeResult(
                    request=item.request,
                    status=ServeStatus.TIMEOUT,
                    shard_index=shard.index,
                    queued_s=now - item.enqueued_at,
                ))
            else:
                if item.span is not None:
                    # Queue wait is only known at dequeue: record the
                    # already-elapsed region under the request span.
                    trc.record_span(
                        "serve.queue_wait",
                        trc.offset(item.enqueued_at), trc.offset(now),
                        parent_context=item.span.context,
                        shard=shard.index)
                live.append(item)
        return live

    def _serve_batch(self, shard: Shard,
                     batch: List[_QueuedRequest]) -> None:
        live = self._admit_batch(shard, batch)
        if not live:
            return
        self._m_batch.observe(len(live))
        trc = _tracing.tracer()
        # Tracer span stacks are thread-local, so every worker thread
        # emits its batch spans concurrently without cross-linking.
        with shard.lock, \
                trc.span("serve.batch", shard=shard.index,
                         batch_size=len(live)), \
                shard.engine.serving_session():
            for item in live:
                started = perf_counter()
                engine_span = None
                if item.span is not None:
                    engine_span = trc.begin_span(
                        "serve.engine", parent_context=item.span.context,
                        user_id=item.request.user_id,
                        slots=item.request.slots)
                try:
                    result = self._serve_one(shard, item, started,
                                             len(live))
                except Exception as exc:  # noqa: BLE001 - per-request fence
                    self._count_error(type(exc).__name__)
                    result = ServeResult(
                        request=item.request,
                        status=ServeStatus.ERROR,
                        shard_index=shard.index,
                        error=f"{type(exc).__name__}: {exc}",
                        queued_s=started - item.enqueued_at,
                        service_s=perf_counter() - started,
                        batch_size=len(live),
                    )
                if engine_span is not None:
                    trc.finish_span(
                        engine_span,
                        served=result.status is ServeStatus.SERVED)
                self._resolve(item, result)

    def _serve_one(self, shard: Shard, item: _QueuedRequest,
                   started: float, batch_size: int) -> ServeResult:
        request = item.request
        user = self.platform.users.get(request.user_id)
        outcomes = shard.serve_user_slots(
            user, item.base_seq, request.slots
        )
        ad_ids = []
        lost = 0
        unfilled = 0
        for outcome in outcomes:
            if outcome.won:
                ad_ids.append(outcome.winner.ad_id)
            elif outcome.competing_bid > 0:
                lost += 1
            else:
                unfilled += 1
        self._m_served.inc()
        service_s = perf_counter() - started
        self._m_service.observe(service_s)
        return ServeResult(
            request=request,
            status=ServeStatus.SERVED,
            shard_index=shard.index,
            response=AdResponse(
                user_id=request.user_id,
                ad_ids=tuple(ad_ids),
                lost_to_competition=lost,
                unfilled=unfilled,
            ),
            queued_s=started - item.enqueued_at,
            service_s=service_s,
            batch_size=batch_size,
        )

    # -- the process-backend router thread ---------------------------------

    def _serve_batch_remote(self, shard: Shard,
                            client: _ipc.ShardWorkerClient,
                            batch: List[_QueuedRequest]) -> None:
        """Frame one admitted micro-batch to the shard's worker process
        and resolve its futures from the per-request outcomes.

        Admission (shed happened at submit; deadlines checked here)
        stays entirely in the parent — only surviving requests cross
        the socket. A lost worker resolves the batch as ERROR instead
        of hanging; the journal it flushed per batch is what
        :meth:`ServingRuntime.recover_shard` later replays.
        """
        live = self._admit_batch(shard, batch)
        if not live:
            return
        self._m_batch.observe(len(live))
        if client.lost:
            self._fail_batch(shard, live, "shard worker lost")
            return
        trc = _tracing.tracer()
        # Each frame item carries its request span's (trace_id,
        # span_id): the worker's serve.engine spans parent under it
        # across the process boundary.
        frame: List[_ipc.ServeFrameItem] = [
            (item.request.user_id, item.base_seq, item.request.slots,
             ((item.span.trace_id, item.span.span_id)
              if item.span is not None else None))
            for item in live
        ]
        sent_at = perf_counter()
        try:
            with trc.span("serve.ipc_roundtrip", shard=shard.index,
                          batch_size=len(live)):
                replies = client.serve_batch(frame)
        except _ipc.WorkerLost:
            self._fail_batch(shard, live, "shard worker lost mid-batch")
            return
        except Exception as exc:  # noqa: BLE001 - batch-level fence
            self._fail_batch(shard, live,
                             f"{type(exc).__name__}: {exc}",
                             reason=type(exc).__name__)
            return
        for item, reply in zip(live, replies):
            served, ad_ids, lost, unfilled, error, service_s = reply
            if served:
                self._m_served.inc()
                result = ServeResult(
                    request=item.request,
                    status=ServeStatus.SERVED,
                    shard_index=shard.index,
                    response=AdResponse(
                        user_id=item.request.user_id,
                        ad_ids=tuple(ad_ids),
                        lost_to_competition=lost,
                        unfilled=unfilled,
                    ),
                    queued_s=sent_at - item.enqueued_at,
                    service_s=service_s,
                    batch_size=len(live),
                )
            else:
                self._count_error(_error_reason(error))
                result = ServeResult(
                    request=item.request,
                    status=ServeStatus.ERROR,
                    shard_index=shard.index,
                    error=error,
                    queued_s=sent_at - item.enqueued_at,
                    service_s=service_s,
                    batch_size=len(live),
                )
            self._resolve(item, result)

    def _fail_batch(self, shard: Shard, live: List[_QueuedRequest],
                    error: str, reason: str = "WorkerLost") -> None:
        for item in live:
            self._count_error(reason)
            self._resolve(item, ServeResult(
                request=item.request,
                status=ServeStatus.ERROR,
                shard_index=shard.index,
                error=error,
                queued_s=perf_counter() - item.enqueued_at,
            ))

    def _count_error(self, reason: str) -> None:
        """Count one ERROR result: the pinned aggregates plus a dynamic
        per-exception-type breakdown counter.

        ``serve.errors.<ExceptionType>`` names are created on demand
        (the registry accepts uncatalogued names with empty help); the
        CamelCase suffix keeps them visually distinct from the
        catalogued all-lowercase instrument names.
        """
        self._m_errored.inc()
        self._m_errors.inc()
        _metrics.registry().counter(f"serve.errors.{reason}").inc()

    # -- bookkeeping -------------------------------------------------------

    def _resolve(self, item: _QueuedRequest, result: ServeResult,
                 count_pending: bool = True) -> None:
        self._m_latency.observe(result.latency_s)
        self._shard_stats[result.shard_index].add(
            result.status, result.latency_s)
        if item.span is not None:
            _tracing.tracer().finish_span(
                item.span, status=result.status.value)
        item.future.set_result(result)
        if count_pending:
            with self._pending_cond:
                self._pending -= 1
                if self._pending <= 0:
                    self._pending_cond.notify_all()


def _error_reason(error: Optional[str]) -> str:
    """Exception-type label for a worker-side error string.

    Worker replies carry ``"TypeError: message"``-style strings, not
    exception objects; the prefix before the first colon is the type
    name when it looks like one, else the label falls back to
    ``RemoteError``.
    """
    if error:
        prefix = error.split(":", 1)[0].strip()
        if prefix.isidentifier():
            return prefix
    return "RemoteError"
