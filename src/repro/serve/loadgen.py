"""Open-loop load generation against the serving runtime.

Open-loop means arrivals are scheduled by the clock, not by
completions: the generator draws exponential inter-arrival gaps for the
target RPS up front and submits each request at its appointed time
whether or not earlier ones have finished. That is the honest way to
measure a serving system — a closed loop (wait for the response, then
send the next) self-throttles exactly when the system degrades, hiding
the queueing collapse an overload test exists to expose.

Determinism: the whole arrival schedule (times, users, slot counts) is
a pure function of the seed, drawn from a private ``random.Random``
before the clock starts. Two generators with the same seed and config
offer byte-identical request sequences; with a single-worker runtime
the delivery outcome is then reproducible end to end (timing-dependent
SHED/TIMEOUT splits aside — under no deadline and ample queues, those
are empty too).
"""

from __future__ import annotations

import logging
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs import tracing as _tracing
from repro.obs.metrics import Histogram
from repro.obs.names import LATENCY_BUCKETS
from repro.obs.slo import SLOEvaluation, SLOSpec, evaluate_report
from repro.serve.requests import AdRequest, ServeResult, ServeTally
from repro.serve.runtime import ServingRuntime

_log = logging.getLogger("repro.serve.loadgen")


@dataclass(frozen=True)
class LoadConfig:
    """One load-generation run: how hard, how long, at whom."""

    #: Target offered load, requests per second.
    rps: float = 200.0
    #: Wall-clock length of the offered schedule, seconds.
    duration_s: float = 2.0
    #: Ad slots requested per request.
    slots: int = 1
    #: Per-request latency budget handed to the runtime (None = none).
    deadline_s: Optional[float] = None
    #: Seed for the arrival schedule and user sampling.
    seed: int = 42
    #: Hard cap on total requests (None = whatever fits in duration).
    max_requests: Optional[int] = None

    def __post_init__(self) -> None:
        if self.rps <= 0:
            raise ValueError("target rps must be positive")
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if self.slots < 1:
            raise ValueError("need at least one slot per request")


@dataclass
class LoadReport:
    """What a run offered and what came back, with latency quantiles."""

    config: LoadConfig
    tally: ServeTally = field(default_factory=ServeTally)
    latency: Histogram = field(default_factory=lambda: Histogram(
        "loadgen.request_latency_s", buckets=LATENCY_BUCKETS))
    #: Wall-clock seconds from first submission to last result.
    wall_s: float = 0.0
    #: Serve-side histograms captured from the runtime's registry after
    #: the run (``to_state`` form) — on the process backend these are
    #: the *merged* cross-process histograms, folded in at stop. See
    #: :meth:`attach_runtime_histograms`.
    runtime_histograms: Dict[str, Dict[str, object]] = field(
        default_factory=dict)
    #: Set by :meth:`evaluate_slo` — the verdict behind the
    #: ``repro loadgen --slo`` exit gate, surfaced in :meth:`summary`.
    slo: Optional[SLOEvaluation] = None

    @property
    def offered(self) -> int:
        return self.tally.submitted

    @property
    def achieved_rps(self) -> float:
        return self.offered / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def served_rps(self) -> float:
        return (self.tally.served / self.wall_s
                if self.wall_s > 0 else 0.0)

    def percentiles(self) -> Dict[str, float]:
        return self.latency.percentiles()

    def summary(self) -> Dict[str, object]:
        """Offered vs achieved load plus the per-status outcome split.

        ``achieved_rps`` counts every submission the clock got out the
        door (the open-loop honesty check against the ``offered_rps``
        target); ``served_rps`` counts only requests that completed a
        delivery pass — the gap between the two is exactly what
        admission control refused.
        """
        tally = self.tally
        total = tally.submitted
        statuses = {
            "served": tally.served,
            "shed": tally.shed,
            "timeout": tally.timeout,
            "error": tally.errors,
        }
        out: Dict[str, object] = {
            "offered": total,
            "offered_rps": self.config.rps,
            "achieved_rps": self.achieved_rps,
            "served_rps": self.served_rps,
            "wall_s": self.wall_s,
            "statuses": {
                status: {
                    "count": count,
                    "fraction": count / total if total else 0.0,
                }
                for status, count in statuses.items()
            },
            "latency": dict(self.percentiles(),
                            mean=self.latency.mean),
        }
        if self.slo is not None:
            out["slo"] = self.slo.summary()
        return out

    def evaluate_slo(self, spec: SLOSpec,
                     registry=None) -> SLOEvaluation:
        """Score this run against ``spec``; the verdict sticks to the
        report (``summary()``/``record()`` carry it) and is returned.
        With a registry, the ``slo.*`` gauges are published there."""
        self.slo = evaluate_report(self, spec, registry=registry)
        return self.slo

    def attach_runtime_histograms(self, registry) -> None:
        """Capture the runtime's serve-side latency histograms.

        Call *after* the runtime has stopped: on the process backend
        that is when worker registries fold into the parent, so the
        captured ``serve.service_time_s`` histogram is the merged
        cross-process one.
        """
        for name in ("serve.request_latency_s", "serve.service_time_s"):
            hist = registry.get(name)
            if isinstance(hist, Histogram) and hist.count:
                self.runtime_histograms[name] = hist.to_state()

    def record(self) -> Dict[str, object]:
        """JSON-serializable summary (CLI ``--histogram-out``, bench)."""
        out: Dict[str, object] = {
            "config": {
                "rps": self.config.rps,
                "duration_s": self.config.duration_s,
                "slots": self.config.slots,
                "deadline_s": self.config.deadline_s,
                "seed": self.config.seed,
            },
        }
        out.update(self.summary())
        out["tally"] = {
            "served": self.tally.served,
            "shed": self.tally.shed,
            "timeout": self.tally.timeout,
            "errors": self.tally.errors,
            "impressions": self.tally.impressions,
        }
        out["latency_histogram"] = self.latency.snapshot()
        out["runtime_histograms"] = dict(self.runtime_histograms)
        return out


def build_schedule(user_ids: Sequence[str],
                   config: LoadConfig) -> List[Tuple[float, AdRequest]]:
    """The full open-loop arrival plan: ``(offset_s, request)`` pairs.

    Pure function of (seed, config, user population) — no clock
    involved, so two consumers of the same inputs (the in-process
    :class:`LoadGenerator` and the HTTP-mode ``repro httpgen``) offer
    byte-identical request streams.
    """
    if not user_ids:
        raise ValueError("load generation needs at least one user")
    rng = random.Random(config.seed)
    plan: List[Tuple[float, AdRequest]] = []
    clock = 0.0
    while True:
        clock += rng.expovariate(config.rps)
        if clock >= config.duration_s:
            break
        if config.max_requests is not None \
                and len(plan) >= config.max_requests:
            break
        plan.append((clock, AdRequest(
            user_id=rng.choice(user_ids),
            slots=config.slots,
            deadline_s=config.deadline_s,
        )))
    return plan


class LoadGenerator:
    """Drives a :class:`ServingRuntime` at a target RPS.

    ``user_ids`` is the population to sample from — typically
    ``platform.users.user_ids()`` after a persona-mix build, so the
    request mix inherits the persona mix. The generator is
    single-threaded: it owns the clock and the submissions; concurrency
    lives in the runtime's shard workers.
    """

    def __init__(self, runtime: ServingRuntime,
                 user_ids: Sequence[str],
                 config: Optional[LoadConfig] = None):
        if not user_ids:
            raise ValueError("load generation needs at least one user")
        self.runtime = runtime
        self.user_ids = list(user_ids)
        self.config = config or LoadConfig()

    def schedule(self) -> List[Tuple[float, AdRequest]]:
        """The full arrival plan: ``(offset_s, request)`` pairs.

        Pure function of (seed, config, user population) — no clock
        involved, so tests can compare two schedules directly.
        """
        return build_schedule(self.user_ids, self.config)

    def run(self) -> LoadReport:
        """Offer the schedule, wait for every result, report."""
        plan = self.schedule()
        report = LoadReport(config=self.config)
        futures = []
        trc = _tracing.tracer()
        with trc.span("loadgen.run", rps=self.config.rps,
                      offered=len(plan)):
            start = time.perf_counter()
            for offset, request in plan:
                ahead = offset - (time.perf_counter() - start)
                if ahead > 0:
                    time.sleep(ahead)
                futures.append(self.runtime.submit(request))
            results: List[ServeResult] = [
                future.result(timeout=60.0) for future in futures
            ]
            report.wall_s = time.perf_counter() - start
        for result in results:
            report.tally.add(result)
            report.latency.observe(result.latency_s)
        _log.info(
            "loadgen: offered %d at %.0f rps target (%.0f achieved), "
            "served=%d shed=%d timeout=%d errors=%d",
            report.offered, self.config.rps, report.achieved_rps,
            report.tally.served, report.tally.shed,
            report.tally.timeout, report.tally.errors,
        )
        return report
