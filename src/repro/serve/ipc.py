"""Process-per-shard IPC: the framing codec and the shard worker loop.

The thread backend proved shard-count invariance but buys no CPU — every
shard worker contends for one GIL. This module is the escape hatch: each
shard's delivery engine, billing ledger, and journal move into a forked
worker process, and the parent speaks to it over a socketpair using a
length-prefixed, batched request/response framing.

Division of labour (the whole point of the design):

* **Parent** — admission control. Bounded queues, shedding, deadline
  checks, and slot-index claims all happen before a single byte crosses
  the socket, so an overloaded runtime refuses work at in-process cost:
  shed and timed-out requests cost the worker process *nothing*.
* **Worker** — delivery. One single-threaded loop: receive a batch
  frame, serve it under one engine serving session, group-commit the
  journal, answer with per-request outcomes. The worker owns the
  shard's ``shard-i-of-n`` journal/snapshot files; flushing before every
  acknowledgement means a ``kill -9`` can never lose acknowledged work.

Wire format: every message is one frame — a 4-byte big-endian body
length, then a body of ``(payload length, buffer count)``, one 8-byte
length per out-of-band buffer, the protocol-5 pickle payload, and the
raw buffer bytes. Buffer-exporting objects (numpy arrays, bytearrays —
the batch sweep's bitset deltas) travel out-of-band: their bytes go
straight from the object to the socket via scatter-gather ``sendmsg``
and land in preallocated receive buffers that the unpickler references
zero-copy, never transiting a pickle-internal copy. Batching happens at
the message level (one ``serve`` frame carries a whole micro-batch), so
the per-request framing overhead amortizes exactly like the engine's
serving-session costs do.

Spawning uses the ``fork`` start method: the child inherits the built
platform world (catalog, users, audiences, compiled matchers) by
copy-on-write instead of pickling it, and is forked before the parent
starts any router threads. The child installs a **fresh** metrics
registry first thing — the parent's pre-fork counts arrived via fork
too, and folding them back at shutdown would double-count — so the
state it ships home at ``stop`` is exactly this worker's own work.
"""

from __future__ import annotations

import logging
import pickle
import socket
import struct
import threading
from multiprocessing import get_context
from time import perf_counter
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing
from repro.store.snapshot import SNAPSHOT_VERSION, Snapshot
from repro.store.store import JournalStore, MemoryStore, StateStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.serve.sharding import Shard, ShardRouter

_log = logging.getLogger("repro.serve.ipc")

_HEADER = struct.Struct("!I")
#: Frame body prefix: (pickle payload length, out-of-band buffer count).
_BODY_HEADER = struct.Struct("!II")
#: One out-of-band buffer's byte length.
_BUF_LEN = struct.Struct("!Q")

#: Hard ceiling on one frame's body (payload + buffers); anything larger
#: is a protocol error (a corrupt length prefix reads as garbage
#: gigabytes).
MAX_FRAME_BYTES = 1 << 29

OP_SERVE = "serve"
OP_CHECKPOINT = "checkpoint"
OP_TELEMETRY = "telemetry"
OP_STOP = "stop"

#: Trace propagation on the wire: ``(trace_id, parent_span_id)`` of the
#: submitting process's request span, or ``None`` when tracing is off.
TraceContextItem = Optional[Tuple[Optional[str], int]]
#: One request on the wire: ``(user_id, base_seq, slots, trace_ctx)``.
ServeFrameItem = Tuple[str, int, int, TraceContextItem]
#: One outcome on the wire:
#: ``(served, ad_ids, lost, unfilled, error, service_s)``.
ServeReplyItem = Tuple[bool, Tuple[str, ...], int, int,
                       Optional[str], float]


class WorkerLost(ConnectionError):
    """The peer process went away mid-conversation (EOF, broken pipe)."""


class Framer:
    """Length-prefixed message framing over a stream socket.

    ``send`` writes one frame: a 4-byte big-endian body length, a
    ``(payload length, buffer count)`` prefix, the out-of-band buffer
    lengths, the protocol-5 pickle payload, then the raw buffer bytes —
    all gathered into the socket with ``sendmsg`` so exported buffers
    (numpy arrays, bytearrays) never pass through a pickle-internal
    copy. ``recv`` blocks for exactly one frame, reads each buffer into
    its own preallocated ``bytearray`` via ``recv_into``, and hands the
    unpickler zero-copy ``memoryview``\\ s of them; it raises
    :class:`WorkerLost` on EOF or a reset — the only two shapes a dead
    peer can take on a socketpair. Byte totals (headers included)
    accumulate on ``bytes_sent`` / ``bytes_received``, buffer counts on
    ``buffers_sent`` / ``buffers_received``, so callers can meter IPC
    volume without the codec knowing about metrics.

    Not thread-safe: one conversation, one owner (the runtime gives
    each worker client its own lock).
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self.bytes_sent = 0
        self.bytes_received = 0
        self.buffers_sent = 0
        self.buffers_received = 0

    def send(self, message: Any) -> None:
        raws: List[memoryview] = []

        def export(buffer: pickle.PickleBuffer) -> bool:
            try:
                raws.append(buffer.raw())
            except BufferError:
                # Non-contiguous exporter: let pickle serialize it
                # in-band rather than flattening it ourselves.
                return False
            return True

        payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL,
                               buffer_callback=export)
        lengths = [raw.nbytes for raw in raws]
        body_length = (_BODY_HEADER.size + _BUF_LEN.size * len(raws)
                       + len(payload) + sum(lengths))
        if body_length > MAX_FRAME_BYTES:
            raise ValueError(
                f"frame payload of {body_length} bytes exceeds the "
                f"{MAX_FRAME_BYTES}-byte frame limit")
        header = b"".join([
            _HEADER.pack(body_length),
            _BODY_HEADER.pack(len(payload), len(raws)),
            *(_BUF_LEN.pack(length) for length in lengths),
        ])
        self._send_parts([header, payload, *raws])
        self.bytes_sent += _HEADER.size + body_length
        self.buffers_sent += len(raws)

    def _send_parts(self, parts: List[Any]) -> None:
        """Scatter-gather the frame sections; no concatenation copy."""
        views = [memoryview(part).cast("B") for part in parts]
        views = [view for view in views if view.nbytes]
        while views:
            try:
                sent = self._sock.sendmsg(views)
            except OSError as exc:
                raise WorkerLost(
                    f"peer gone while sending: {exc}") from None
            while views and sent >= views[0].nbytes:
                sent -= views[0].nbytes
                views.pop(0)
            if sent:
                views[0] = views[0][sent:]

    def recv(self) -> Any:
        (body_length,) = _HEADER.unpack(self._recv_exact(_HEADER.size))
        if body_length > MAX_FRAME_BYTES:
            raise WorkerLost(
                f"frame length {body_length} exceeds the "
                f"{MAX_FRAME_BYTES}-byte limit (corrupt stream)")
        payload_length, buffer_count = _BODY_HEADER.unpack(
            self._recv_exact(_BODY_HEADER.size))
        lengths_raw = self._recv_exact(_BUF_LEN.size * buffer_count)
        lengths = [
            _BUF_LEN.unpack_from(lengths_raw, i * _BUF_LEN.size)[0]
            for i in range(buffer_count)
        ]
        if (_BODY_HEADER.size + _BUF_LEN.size * buffer_count
                + payload_length + sum(lengths)) != body_length:
            raise WorkerLost(
                "frame sections disagree with the body length "
                "(corrupt stream)")
        payload = self._recv_exact(payload_length)
        buffers = []
        for length in lengths:
            buffer = bytearray(length)
            self._recv_into_exact(buffer)
            buffers.append(buffer)
        self.bytes_received += _HEADER.size + body_length
        self.buffers_received += buffer_count
        return pickle.loads(payload,
                            buffers=[memoryview(b) for b in buffers])

    def _recv_exact(self, size: int) -> bytes:
        buffer = bytearray(size)
        self._recv_into_exact(buffer)
        return bytes(buffer)

    def _recv_into_exact(self, buffer: bytearray) -> None:
        view = memoryview(buffer)
        received = 0
        while received < len(buffer):
            try:
                count = self._sock.recv_into(view[received:])
            except OSError as exc:
                raise WorkerLost(
                    f"peer gone while receiving: {exc}") from None
            if count == 0:
                raise WorkerLost("peer closed the stream")
            received += count

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close never matters
            pass


class ShardWorkerClient:
    """Parent-side handle on one shard's worker process.

    Serializes its conversation with a lock (the shard's router thread
    and the runtime's checkpoint path share the socket), tracks whether
    the worker has been lost, and meters frames/bytes into the serving
    metrics. Every request either returns the worker's reply or raises
    :class:`WorkerLost` — after which the client is permanently dead and
    further requests fail fast without touching the socket.
    """

    def __init__(self, process: Any, framer: Framer, index: int):
        self.process = process
        self.framer = framer
        self.index = index
        self.lost = False
        self._lock = threading.Lock()
        reg = _metrics.registry()
        self._m_batches = reg.counter("serve.ipc_batches")
        self._m_bytes = reg.counter("serve.ipc_bytes")
        self._m_lost = reg.counter("serve.workers_lost")

    def request(self, op: str, payload: Any) -> Any:
        with self._lock:
            if self.lost:
                raise WorkerLost(
                    f"shard {self.index} worker already lost")
            before = self.framer.bytes_sent + self.framer.bytes_received
            try:
                self.framer.send((op, payload))
                status, reply = self.framer.recv()
            except WorkerLost:
                self.lost = True
                self._m_lost.inc()
                raise
            finally:
                self._m_bytes.inc(
                    self.framer.bytes_sent + self.framer.bytes_received
                    - before)
        if status != "ok":
            raise RuntimeError(
                f"shard {self.index} worker failed {op!r}: {reply}")
        return reply

    def serve_batch(self,
                    batch: List[ServeFrameItem]) -> List[ServeReplyItem]:
        """One batched request/response round trip."""
        self._m_batches.inc()
        replies = self.request(OP_SERVE, batch)
        if len(replies) != len(batch):
            raise RuntimeError(
                f"shard {self.index} worker answered {len(replies)} "
                f"outcomes for a batch of {len(batch)}")
        return replies

    def checkpoint(self, label: str,
                   directory: Optional[str]) -> Snapshot:
        """Snapshot the worker's store at its journal position (and, with
        a directory, save it next to the journal for recovery)."""
        reply = self.request(
            OP_CHECKPOINT, {"label": label, "directory": directory})
        return Snapshot(
            version=SNAPSHOT_VERSION,
            journal_seq=int(reply["journal_seq"]),
            state=reply["state"],
            label=str(reply["label"]),
        )

    def poll_telemetry(self) -> Dict[str, object]:
        """One streaming telemetry poll.

        The worker answers with its cumulative metrics registry dump
        (``"metrics"``, ``to_state`` form — the parent *replaces* its
        previous snapshot for this shard, it must not fold successive
        polls together) and the spans it finished since the last poll
        (``"spans"``, ``record()`` dicts, drained worker-side).
        """
        return self.request(OP_TELEMETRY, None)

    def shutdown(self) -> Tuple[Snapshot, List[Dict[str, object]],
                                List[Dict[str, object]]]:
        """Stop the worker cleanly; returns its final state snapshot,
        its metrics registry dump, and its remaining finished spans for
        the parent-side merge-back."""
        reply = self.request(OP_STOP, None)
        snapshot = Snapshot(
            version=SNAPSHOT_VERSION,
            journal_seq=int(reply["journal_seq"]),
            state=reply["state"],
            label="final",
        )
        self.reap()
        return snapshot, reply["metrics"], reply.get("spans", [])

    def reap(self, timeout: float = 10.0) -> None:
        """Close the channel and collect the process (terminate if it
        ignores the closed socket)."""
        self.framer.close()
        self.process.join(timeout=timeout)
        if self.process.is_alive():  # pragma: no cover - defensive
            self.process.terminate()
            self.process.join(timeout=timeout)


def spawn_shard_worker(router: "ShardRouter", index: int,
                       journal_dir: Optional[str],
                       seed_state: Optional[Dict[str, Dict[str, Any]]],
                       ) -> ShardWorkerClient:
    """Fork one shard worker and return the parent-side client.

    Must be called before the parent starts its router threads (fork
    with live threads inherits their locks mid-flight). ``seed_state``
    is the parent shadow shard's checkpoint state — ``None`` on a
    first, empty spawn; otherwise the worker restores it and (when
    journaling) writes a seed snapshot at its current journal position
    so recovery never replays records the seed already contains.
    """
    ctx = get_context("fork")
    parent_sock, child_sock = socket.socketpair()
    process = ctx.Process(
        target=_worker_main,
        args=(child_sock, parent_sock, router, index, journal_dir,
              seed_state),
        name=f"serve-shard{index}-proc",
        daemon=True,
    )
    process.start()
    child_sock.close()
    return ShardWorkerClient(process, Framer(parent_sock), index)


# -- the worker process ----------------------------------------------------


def _worker_main(child_sock: socket.socket, parent_sock: socket.socket,
                 router: "ShardRouter", index: int,
                 journal_dir: Optional[str],
                 seed_state: Optional[Dict[str, Dict[str, Any]]]) -> None:
    """Entry point of a forked shard worker (runs in the child only)."""
    from repro.serve.sharding import (
        shard_journal_path,
        shard_snapshot_path,
    )

    parent_sock.close()
    # Fresh registry before any instrumented object is built: the
    # parent's pre-fork counts were inherited and must not be shipped
    # back (they would double-count at merge time).
    _metrics.set_registry(_metrics.MetricsRegistry(
        f"shard-{index}-worker"))
    # Same for tracing, with two twists: the fresh tracer shares the
    # parent tracer's epoch (CLOCK_MONOTONIC is system-wide, so both
    # sides emit offsets on one timeline) and takes a per-worker origin
    # so its span ids cannot collide with any other process's after the
    # merge-back.
    inherited_tracer = _tracing.tracer()
    if inherited_tracer.enabled:
        _tracing.set_tracer(_tracing.Tracer(
            epoch=inherited_tracer.epoch_raw, origin=index + 1))
    else:
        _tracing.set_tracer(_tracing.NULL_TRACER)
    num_shards = router.num_shards
    store: StateStore
    if journal_dir is not None:
        store = JournalStore(
            shard_journal_path(journal_dir, index, num_shards))
    else:
        store = MemoryStore()
    shard = router._build_shard(index, num_shards, store=store)
    if seed_state is not None:
        store.restore(Snapshot(
            version=SNAPSHOT_VERSION,
            journal_seq=store.record_count,
            state=seed_state,
            label="seed",
        ))
        if journal_dir is not None:
            # Pin the seed on disk: seeded state may include claims the
            # journal never saw (e.g. shed requests), so recovery must
            # start from this snapshot, not from a journal-only fold.
            store.checkpoint(label="seed").save(shard_snapshot_path(
                journal_dir, index, num_shards))
    service_hist = _metrics.registry().histogram("serve.service_time_s")
    framer = Framer(child_sock)
    users = router.platform.users
    try:
        while True:
            try:
                op, payload = framer.recv()
            except WorkerLost:
                # Parent gone (crash or GC'd client): flush what is
                # acknowledged and exit quietly.
                store.close()
                return
            if op == OP_SERVE:
                replies = _serve_in_child(shard, users, payload,
                                          service_hist)
                # Group-commit the batch before acknowledging: an acked
                # outcome is always journal-backed, so SIGKILL between
                # batches loses nothing the parent was told about.
                store.flush()
                framer.send(("ok", replies))
            elif op == OP_CHECKPOINT:
                snapshot = store.checkpoint(
                    label=payload["label"] or f"shard-{index}")
                directory = payload.get("directory")
                if directory is not None:
                    snapshot.save(shard_snapshot_path(
                        directory, index, num_shards))
                framer.send(("ok", {
                    "journal_seq": snapshot.journal_seq,
                    "state": snapshot.state,
                    "label": snapshot.label,
                }))
            elif op == OP_TELEMETRY:
                framer.send(("ok", {
                    "metrics": _metrics.registry().to_state(),
                    "spans": [span.record()
                              for span in _tracing.tracer().drain()],
                }))
            elif op == OP_STOP:
                snapshot = store.checkpoint(label="final")
                store.close()
                framer.send(("ok", {
                    "journal_seq": snapshot.journal_seq,
                    "state": snapshot.state,
                    "metrics": _metrics.registry().to_state(),
                    "spans": [span.record()
                              for span in _tracing.tracer().drain()],
                }))
                return
            else:
                framer.send(("error", f"unknown op {op!r}"))
    except WorkerLost:  # pragma: no cover - parent died mid-reply
        store.close()
    finally:
        framer.close()


def _serve_in_child(shard: "Shard", users: Any,
                    batch: List[ServeFrameItem],
                    service_hist: Any) -> List[ServeReplyItem]:
    """Serve one batch inside the worker; per-request error fencing.

    Slot indices were claimed by the parent at admission; the worker
    journals a *bridging* claim up to ``base_seq + slots`` so its
    journal-consistent counter absorbs any gap left by requests the
    parent shed or timed out (which never reach this process at all).

    Each frame item carries the submitting process's request-span
    context; when tracing is on, the per-request ``serve.engine`` span
    parents under it — that is the link that makes the merged trace
    nest across the process boundary.
    """
    trc = _tracing.tracer()
    replies: List[ServeReplyItem] = []
    with shard.lock, \
            trc.span("serve.batch", shard=shard.index,
                     batch_size=len(batch)), \
            shard.engine.serving_session():
        for user_id, base_seq, slots, trace_ctx in batch:
            started = perf_counter()
            span = None
            if trc.enabled:
                parent = (_tracing.SpanContext(*trace_ctx)
                          if trace_ctx is not None else None)
                span = trc.begin_span("serve.engine",
                                      parent_context=parent,
                                      user_id=user_id, slots=slots)
            try:
                shard.claim_through(user_id, base_seq + slots)
                user = users.get(user_id)
                outcomes = shard.serve_user_slots(user, base_seq, slots)
                ad_ids = []
                lost = 0
                unfilled = 0
                for outcome in outcomes:
                    if outcome.won:
                        ad_ids.append(outcome.winner.ad_id)
                    elif outcome.competing_bid > 0:
                        lost += 1
                    else:
                        unfilled += 1
                service_s = perf_counter() - started
                service_hist.observe(service_s)
                if span is not None:
                    trc.finish_span(span, served=True)
                replies.append((True, tuple(ad_ids), lost, unfilled,
                                None, service_s))
            except Exception as exc:  # noqa: BLE001 - per-request fence
                if span is not None:
                    trc.finish_span(span, served=False)
                replies.append((False, (), 0, 0,
                                f"{type(exc).__name__}: {exc}",
                                perf_counter() - started))
    return replies
