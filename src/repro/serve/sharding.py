"""User sharding: consistent routing, shard-owned engines, aggregation.

The serving runtime scales by partitioning *users*, not ads: every ad is
visible on every shard (the inventory is read-shared; compiled matchers
are pure functions), but each user is owned by exactly one shard, and
all mutable delivery state — frequency caps, feeds, impression logs,
match caches — lives in that shard's own :class:`DeliveryEngine`. Since
the deliver-iff-match contract is evaluated per ``(ad, user)`` pair and
every per-pair invariant (cap, match, feed) involves one user, shards
never need to coordinate during serving: the partition *is* the
correctness argument, and it is also why cross-shard aggregation
(:meth:`ShardRouter.aggregate_report`) reproduces the single-engine
answer exactly.

Two deliberate deviations from a single shared engine, both documented
here because they are where "no shared mutable state" costs something:

* **Budgets are enforced per shard.** Each shard sees its own copy of
  every advertiser account (:class:`ShardAccountsView`), so an account
  with budget ``B`` can in the worst case spend up to ``B`` *per
  shard*. Global budget pacing needs cross-shard coordination — exactly
  the kind of hot shared counter this design removes — and real
  platforms solve it with asynchronous budget servers; that is future
  work. :meth:`ShardRouter.total_spend` reports true combined spend.
* **Competing demand is drawn per (user, slot), not per sequence.**
  A stateful RNG would make auction outcomes depend on the global order
  slots happen to be served in, and therefore on the shard count.
  :class:`KeyedCompetition` derives each competing bid from
  ``(seed, user_id, slot_index)`` alone, which makes delivery reports
  byte-identical for 1, 4, or 8 shards (pinned by
  ``tests/serve/test_runtime_equivalence.py``).
"""

from __future__ import annotations

import hashlib
import json
import logging
import math
import os
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import StoreError
from repro.platform.ads import AdAccount, AdInventory
from repro.platform.billing import BillingLedger
from repro.platform.delivery import DeliveryEngine
from repro.platform.platform import AdPlatform
from repro.store.records import ChangeRecord, SlotClaimed
from repro.store.snapshot import Snapshot
from repro.store.store import JournalStore, MemoryStore, StateStore

_log = logging.getLogger("repro.serve.sharding")

#: Builds one shard's state store: ``(shard_index, num_shards) -> store``.
StoreFactory = Callable[[int, int], StateStore]


def shard_journal_path(directory: str, index: int, num_shards: int) -> str:
    """The canonical per-shard journal file. Shard count is part of the
    name so a rebalanced router starts fresh files instead of folding a
    differently-partitioned history into them."""
    return os.path.join(
        directory, f"shard-{index}-of-{num_shards}.journal.jsonl")


def shard_snapshot_path(directory: str, index: int, num_shards: int) -> str:
    """The canonical per-shard snapshot file (see
    :func:`shard_journal_path` on naming)."""
    return os.path.join(
        directory, f"shard-{index}-of-{num_shards}.snapshot.json")


def users_columns_path(directory: str) -> str:
    """The columnar user store's snapshot file in a checkpoint bundle.

    User columns are platform-global (shards partition delivery state,
    not users), so the bundle holds exactly one such file regardless of
    shard count."""
    return os.path.join(directory, "users-columns.json")


def journal_store_factory(directory: str,
                          fsync: bool = False) -> StoreFactory:
    """A :data:`StoreFactory` giving every shard an on-disk JSONL
    write-ahead journal under ``directory``."""
    def factory(index: int, num_shards: int) -> StateStore:
        return JournalStore(
            shard_journal_path(directory, index, num_shards), fsync=fsync)
    return factory


def shard_index(user_id: str, num_shards: int, salt: str = "") -> int:
    """The shard that owns ``user_id`` — stable across processes.

    Uses a keyed blake2b digest rather than the builtin ``hash`` so the
    mapping survives ``PYTHONHASHSEED`` randomization: the same user
    lands on the same shard in every process, which is what lets a
    restarted runtime (or a test re-run) reproduce an earlier run.
    """
    if num_shards < 1:
        raise ValueError("need at least one shard")
    if num_shards == 1:
        return 0
    digest = hashlib.blake2b(
        f"{salt}|{user_id}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") % num_shards


class KeyedCompetition:
    """Order-independent ambient competing demand.

    ``bid(user_id, slot_index)`` is a pure function: the uniform draws
    come from a keyed blake2b digest and are pushed through Box-Muller
    into the same log-normal family as
    :func:`repro.platform.platform.default_competition` (median
    ``median_cpm`` dollars CPM). Because the bid depends only on the
    key, it does not matter which shard serves the slot or in what
    global order — the prerequisite for shard-count-invariant delivery.

    ``sigma=0`` degenerates to a constant bid; ``median_cpm=0`` to no
    competition at all.
    """

    def __init__(self, seed: int = 7, median_cpm: float = 2.0,
                 sigma: float = 0.5):
        self.seed = seed
        self.median_cpm = median_cpm
        self.sigma = sigma
        self._mu = (math.log(median_cpm / 1000.0)
                    if median_cpm > 0 else None)

    def bid(self, user_id: str, slot_index: int) -> float:
        """The competing top bid for one keyed slot, in dollars."""
        if self._mu is None:
            return 0.0
        digest = hashlib.blake2b(
            f"{self.seed}|{user_id}|{slot_index}".encode("utf-8"),
            digest_size=16,
        ).digest()
        u1 = (int.from_bytes(digest[:8], "big") + 1) / (2 ** 64 + 1)
        u2 = int.from_bytes(digest[8:], "big") / 2 ** 64
        z = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
        return math.exp(self._mu + self.sigma * z)

    def cursor(self) -> "CompetitionCursor":
        """A per-shard draw cursor (see :class:`CompetitionCursor`)."""
        return CompetitionCursor(self)


class CompetitionCursor:
    """Adapts :class:`KeyedCompetition` to the engine's draw contract.

    :class:`~repro.platform.delivery.DeliveryEngine` calls its competing
    draw with no arguments, once per slot. The shard positions this
    cursor on ``(user_id, slot_index)`` immediately before each
    ``serve_slot`` call; the cursor then answers with the keyed bid.
    One cursor per shard, owned by the shard's serving thread — never
    shared (the key field is mutable state).
    """

    __slots__ = ("_competition", "key")

    def __init__(self, competition: KeyedCompetition):
        self._competition = competition
        self.key: Optional[Tuple[str, int]] = None

    def __call__(self) -> float:
        if self.key is None:
            raise RuntimeError(
                "competition cursor drawn without a positioned key"
            )
        return self._competition.bid(*self.key)


class ShardAccountsView:
    """A shard's view of the ad inventory: shared ads, private accounts.

    Ads, pages, and campaigns delegate to the platform's inventory
    (read-only during serving — see the engine's thread-ownership
    note). ``account()`` instead returns a shard-local copy, cloned on
    first access with the account's *current* budget: the delivery
    engine's affordability check and the shard ledger's charges then
    touch only shard-owned state. The copy is the budget-locality
    tradeoff documented in the module docstring.
    """

    def __init__(self, inventory: AdInventory, shard_name: str):
        self._inventory = inventory
        self._shard_name = shard_name
        self._accounts: Dict[str, AdAccount] = {}

    def account(self, account_id: str) -> AdAccount:
        local = self._accounts.get(account_id)
        if local is None:
            origin = self._inventory.account(account_id)
            local = AdAccount(
                account_id=origin.account_id,
                owner_name=origin.owner_name,
                country=origin.country,
                budget=origin.budget,
                campaign_ids=list(origin.campaign_ids),
                page_ids=list(origin.page_ids),
            )
            self._accounts[account_id] = local
        return local

    def local_accounts(self) -> Dict[str, AdAccount]:
        """The shard-local account copies created so far."""
        return dict(self._accounts)

    def __getattr__(self, name: str):
        # Everything not overridden (ads, ad_count, ad, page, campaign,
        # ...) reads the shared inventory.
        return getattr(self._inventory, name)


@dataclass
class Shard:
    """One shard: an engine, its billing ledger, and its owned users.

    ``lock`` serializes delivery passes on the engine (the engine itself
    is lock-free single-owner); ``slot_seq`` is the per-user slot
    counter that keys :class:`KeyedCompetition` — assigned at admission
    time so the key depends on submission order, never on which worker
    dequeues first.

    The shard is itself a :class:`~repro.store.store.StateOwner` on its
    ``store`` (shared with its engine and ledger): slot claims are
    journaled as :class:`~repro.store.records.SlotClaimed` so a
    recovered shard resumes each user's slot counter — and therefore the
    keyed competition sequence — exactly where the dead shard stopped.
    """

    store_name = "shard"
    handled_kinds = (SlotClaimed.kind,)

    index: int
    engine: DeliveryEngine
    ledger: BillingLedger
    accounts: ShardAccountsView
    cursor: CompetitionCursor
    store: StateStore
    lock: threading.Lock = field(default_factory=threading.Lock)
    slot_seq: Dict[str, int] = field(default_factory=dict)

    def claim_slots(self, user_id: str, slots: int) -> int:
        """Claim the user's next ``slots`` slot indices (journaled);
        returns the base index. Caller serializes per-shard admission."""
        base = self.slot_seq.get(user_id, 0)
        self.slot_seq[user_id] = base + slots
        self.store.append(SlotClaimed(user_id=user_id, slots=slots))
        return base

    def claim_through(self, user_id: str, target: int) -> None:
        """Journal a claim bringing the user's slot counter up to
        ``target``; a no-op if it is already there.

        The process backend's claim shape: admission claims happen in
        the *parent* (so shed requests cost the worker nothing yet
        still consume slot keys), and the worker bridges its own
        journal-consistent counter to the parent-issued base the first
        time a request for that user actually reaches it — gaps left by
        shed or timed-out requests fold into the next served claim, so
        a recovered worker resumes the exact keyed sequence."""
        current = self.slot_seq.get(user_id, 0)
        if target > current:
            self.slot_seq[user_id] = target
            self.store.append(
                SlotClaimed(user_id=user_id, slots=target - current))

    def serve_user_slots(self, user, base_seq: int,
                         slots: int) -> List:
        """Serve ``slots`` keyed slots for one user; returns outcomes.

        Caller holds ``lock`` and an open engine serving session.
        """
        outcomes = []
        for offset in range(slots):
            self.cursor.key = (user.user_id, base_seq + offset)
            outcomes.append(self.engine.serve_slot(user))
        return outcomes

    # -- state owner -------------------------------------------------------

    def state_dump(self) -> Dict[str, Any]:
        return {"slot_seq": dict(self.slot_seq)}

    def state_load(self, state: Dict[str, Any]) -> None:
        self.slot_seq = {
            str(user_id): int(seq)
            for user_id, seq in state.get("slot_seq", {}).items()
        }

    def apply_record(self, record: ChangeRecord) -> None:
        if not isinstance(record, SlotClaimed):
            raise StoreError(
                f"shard cannot apply record kind {record.kind!r}")
        self.slot_seq[record.user_id] = (
            self.slot_seq.get(record.user_id, 0) + record.slots
        )


class ShardRouter:
    """Consistently hashes users onto shard-owned delivery engines.

    Built over one :class:`~repro.platform.platform.AdPlatform`: the
    catalog, user store, audience registry, and ad inventory stay
    shared (read-only during serving), while each shard gets its own
    engine, ledger, account view, and competition cursor. The router is
    also the reporting plane: every per-ad aggregate is the merge of
    disjoint per-shard answers, so the totals agree with a single
    engine having served everything (``tests/serve/``).
    """

    def __init__(
        self,
        platform: AdPlatform,
        num_shards: int = 4,
        competition: Optional[KeyedCompetition] = None,
        salt: str = "",
        store_factory: Optional[StoreFactory] = None,
    ):
        if num_shards < 1:
            raise ValueError("need at least one shard")
        self.platform = platform
        self.competition = competition or KeyedCompetition(
            seed=platform.config.competition_seed,
            median_cpm=platform.config.competition_median_cpm,
            sigma=platform.config.competition_sigma,
        )
        self.salt = salt
        #: Builds each shard's state store; default is in-memory. Pass
        #: :func:`journal_store_factory` for per-shard on-disk WAL
        #: journals (what :class:`repro.serve.ServingRuntime` does when
        #: configured with a ``journal_dir``).
        self._store_factory: StoreFactory = (
            store_factory
            if store_factory is not None
            else (lambda index, total: MemoryStore())
        )
        #: Ledgers of shards retired by rebalance(); their charges are
        #: part of total spend but no longer receive new ones.
        self._retired_ledgers: List[BillingLedger] = []
        self.shards: List[Shard] = self._build_shards(num_shards)

    def _build_shard(self, index: int, num_shards: int,
                     store: Optional[StateStore] = None) -> Shard:
        """One fresh shard: its own store, account view, ledger, engine,
        and competition cursor; the store has the engine, ledger, and
        shard attached as state owners."""
        if store is None:
            store = self._store_factory(index, num_shards)
        accounts = ShardAccountsView(
            self.platform.inventory, shard_name=f"shard-{index}"
        )
        ledger = BillingLedger(accounts, store=store)
        engine = DeliveryEngine(
            inventory=accounts,
            audiences=self.platform.audiences,
            ledger=ledger,
            competing_draw=(cursor := self.competition.cursor()),
            frequency_cap=self.platform.config.frequency_cap,
            floor_price_cpm=self.platform.config.floor_price_cpm,
            min_match_count=(
                self.platform.config.min_delivery_match_count
            ),
            engine_id=f"shard-{index}/{num_shards}",
            store=store,
        )
        engine.attach_user_store(self.platform.users)
        shard = Shard(
            index=index,
            engine=engine,
            ledger=ledger,
            accounts=accounts,
            cursor=cursor,
            store=store,
        )
        store.attach(shard)
        return shard

    def _build_shards(self, num_shards: int) -> List[Shard]:
        return [self._build_shard(index, num_shards)
                for index in range(num_shards)]

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_index(self, user_id: str) -> int:
        return shard_index(user_id, len(self.shards), salt=self.salt)

    def shard_for(self, user_id: str) -> Shard:
        return self.shards[self.shard_index(user_id)]

    # -- rebalance / checkpoint / recovery ---------------------------------

    def rebalance(self, num_shards: int) -> None:
        """Re-partition users onto ``num_shards`` fresh shards.

        Quiescent-time operation (no serving in flight): exports every
        old shard's per-user delivery state, rebuilds the shard set,
        and imports each user's state into its new owner — the same
        snapshot-shaped dicts (and the same ``_apply_*`` fold) that
        checkpoint/restore and crash recovery use, so migration shares
        their code path and their tests. Frequency caps travel with the
        user, so an ad delivered before the rebalance can never be
        delivered again after it; aggregate reports are unchanged
        because the same records are merely re-homed; imported state is
        re-journaled into the receiving shard's store so recovery after
        a rebalance stays lossless. Retired shard ledgers are kept so
        combined spend stays exact.
        """
        if num_shards < 1:
            raise ValueError("need at least one shard")
        old_shards = self.shards
        for shard in old_shards:
            shard.lock.acquire()
        try:
            exports = [shard.engine.export_state() for shard in old_shards]
            slot_seqs: Dict[str, int] = {}
            for shard in old_shards:
                slot_seqs.update(shard.slot_seq)
            self._retired_ledgers.extend(
                shard.ledger for shard in old_shards
            )
            for shard in old_shards:
                shard.store.close()
            self.shards = self._build_shards(num_shards)
            per_shard: List[Dict[str, Any]] = [
                {"impressions": [], "clicks": [], "extra_caps": []}
                for _ in range(num_shards)
            ]
            total_impressions = 0
            for export in exports:
                for data in export["impressions"]:
                    per_shard[self.shard_index(data["user_id"])][
                        "impressions"].append(data)
                    total_impressions += 1
                for data in export["clicks"]:
                    per_shard[self.shard_index(data["user_id"])][
                        "clicks"].append(data)
                for ad_id, user_id, count in export["extra_caps"]:
                    per_shard[self.shard_index(user_id)][
                        "extra_caps"].append([ad_id, user_id, count])
            for shard, state in zip(self.shards, per_shard):
                shard.engine.import_state(state)
            for user_id, seq in slot_seqs.items():
                if seq > 0:
                    self.shards[self.shard_index(user_id)] \
                        .claim_slots(user_id, seq)
        finally:
            for shard in old_shards:
                shard.lock.release()
        _log.info("rebalanced %d -> %d shards (%d impressions re-homed)",
                  len(old_shards), num_shards, total_impressions)

    def checkpoint_shards(self, directory: Optional[str] = None,
                          label: str = "") -> List[Snapshot]:
        """Snapshot every shard's store at its current journal position.

        Quiescent-time operation: each shard's lock is held while its
        owners dump. With ``directory``, each snapshot is also written
        to :func:`shard_snapshot_path` next to the shard's journal —
        the bundle :meth:`recover_shard` reads — and, when the platform
        runs a columnar user store, its column blocks are dumped once to
        :func:`users_columns_path` (users are global, not sharded, so
        one file covers every shard; see :meth:`restore_user_columns`).
        """
        snapshots = []
        for shard in self.shards:
            with shard.lock:
                snapshot = shard.store.checkpoint(
                    label=label or f"shard-{shard.index}")
            if directory is not None:
                snapshot.save(shard_snapshot_path(
                    directory, shard.index, self.num_shards))
            snapshots.append(snapshot)
        if directory is not None:
            users = self.platform.users
            if hasattr(users, "attribute_bitset"):
                os.makedirs(directory, exist_ok=True)
                with open(users_columns_path(directory), "w",
                          encoding="utf-8") as fh:
                    json.dump(users.state_dump(), fh)
        return snapshots

    def restore_user_columns(self, directory: str) -> None:
        """Load the columnar user store dumped by :meth:`checkpoint_shards`.

        The inverse seam for a fresh columnar platform rehydrating a
        checkpoint bundle: shard state comes back per shard via
        :meth:`recover_shard`; the user columns come back here, in one
        ``state_load`` of the packed blocks. Raises
        :class:`~repro.errors.StoreError` when the bundle has no
        columns file or the platform's user store is not columnar.
        """
        users = self.platform.users
        if not hasattr(users, "attribute_bitset"):
            raise StoreError(
                "restore_user_columns needs a columnar user store "
                "(PlatformConfig.columnar_users)")
        path = users_columns_path(directory)
        if not os.path.exists(path):
            raise StoreError(
                f"checkpoint bundle {directory!r} has no users-columns "
                f"snapshot")
        with open(path, "r", encoding="utf-8") as fh:
            users.state_load(json.load(fh))

    def recover_shard(self, index: int, directory: str,
                      reopen_journal: bool = True) -> Shard:
        """Rebuild one shard from its on-disk journal (plus snapshot, if
        one was taken) and swap it into the router.

        The crash-recovery path: the replacement shard restores the
        latest snapshot, then replays the journal suffix written after
        it. Budgets come from the snapshot and every post-snapshot
        charge is re-deducted exactly once during replay, so nothing is
        double-charged; caps, feeds, logs, and slot counters land
        exactly where the dead shard left them.

        ``reopen_journal=False`` rebuilds the shard onto an in-memory
        store instead of re-opening the journal file for append — the
        process backend's shape, where the router's shards are shadows
        and the journal belongs to a worker process that will be
        re-spawned (and seeded from the recovered shadow) on the next
        start.
        """
        if not 0 <= index < self.num_shards:
            raise ValueError(f"no shard {index} in a "
                             f"{self.num_shards}-shard router")
        journal = shard_journal_path(directory, index, self.num_shards)
        records = JournalStore.read(journal)
        # Re-open the same journal file for the replacement shard: the
        # history stays in place and new appends continue after it.
        store: StateStore = (JournalStore(journal) if reopen_journal
                             else MemoryStore())
        shard = self._build_shard(index, self.num_shards, store=store)
        replay_from = 0
        snapshot_file = shard_snapshot_path(
            directory, index, self.num_shards)
        if os.path.exists(snapshot_file):
            snapshot = Snapshot.load(snapshot_file)
            store.restore(snapshot)
            replay_from = snapshot.journal_seq
        applied = store.replay(records[replay_from:])
        self.shards[index] = shard
        _log.info(
            "recovered shard %d/%d from %s (snapshot at %d, %d records "
            "replayed)", index, self.num_shards, directory, replay_from,
            applied,
        )
        return shard

    # -- cross-shard aggregation -------------------------------------------

    def impressions_for_ad(self, ad_id: str) -> int:
        return sum(len(s.engine.impressions_for_ad(ad_id))
                   for s in self.shards)

    def unique_reach(self, ad_id: str) -> Set[str]:
        """Distinct users reached — the union of disjoint shard sets."""
        reached: Set[str] = set()
        for shard in self.shards:
            reached |= shard.engine.unique_reach(ad_id)
        return reached

    def reach_count(self, ad_id: str) -> int:
        return sum(s.engine.reach_count(ad_id) for s in self.shards)

    def clicks_for_ad(self, ad_id: str) -> int:
        return sum(s.engine.clicks_for_ad(ad_id) for s in self.shards)

    def feed(self, user_id: str):
        """A user's feed, answered by the owning shard alone."""
        return self.shard_for(user_id).engine.feed(user_id)

    def total_impressions(self) -> int:
        return sum(len(s.engine.impressions()) for s in self.shards)

    def total_spend(self, account_id: str) -> float:
        """Combined spend across live and retired shard ledgers."""
        ledgers = [s.ledger for s in self.shards]
        ledgers.extend(self._retired_ledgers)
        return sum(ledger.spend_for_account(account_id)
                   for ledger in ledgers)

    def aggregate_report(self) -> Dict[str, Dict[str, int]]:
        """Per-ad delivery report merged across shards.

        ``{ad_id: {impressions, reach, clicks}}`` with ads sorted by
        id — a canonical form, so two routers (or a router and a bare
        engine) can be compared byte-for-byte after JSON serialization.
        Only ads with at least one impression appear.
        """
        ad_ids: Set[str] = set()
        for shard in self.shards:
            ad_ids.update(
                impression.ad_id
                for impression in shard.engine.impressions()
            )
        return {
            ad_id: {
                "impressions": self.impressions_for_ad(ad_id),
                "reach": len(self.unique_reach(ad_id)),
                "clicks": self.clicks_for_ad(ad_id),
            }
            for ad_id in sorted(ad_ids)
        }

    def snapshot_stats(self) -> List[Dict[str, object]]:
        """Per-shard engine snapshots (debugging / imbalance checks)."""
        return [shard.engine.snapshot_stats() for shard in self.shards]
