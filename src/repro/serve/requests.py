"""Typed requests and responses for the serving runtime.

A real ad platform is request-shaped: a user's client asks for the ads
to fill the slots on the page they are loading, under a latency budget.
:class:`AdRequest` captures exactly that (user id, context page, slot
count, deadline); :class:`AdResponse` is what delivery produced; and
:class:`ServeResult` is the envelope the runtime always answers with —
including when it *refused* to do the work, which is a first-class
outcome (:class:`ServeStatus`), not an exception: an overloaded
platform sheds load, it does not stack-trace.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple


class ServeStatus(enum.Enum):
    """Terminal status of one request through the runtime."""

    #: A delivery pass ran; the response says what (if anything) filled.
    SERVED = "served"
    #: Admission control refused the request (shard queue full) —
    #: rejected *before* any delivery work was attempted.
    SHED = "shed"
    #: The request's deadline expired while it sat in the queue; it was
    #: dropped at dequeue, again before any delivery work.
    TIMEOUT = "timeout"
    #: The delivery pass raised; ``ServeResult.error`` has the message.
    ERROR = "error"


@dataclass(frozen=True)
class AdRequest:
    """One ad-serving request: fill ``slots`` ad slots for ``user_id``.

    ``deadline_s`` is a relative latency budget in seconds, measured
    from submission; requests still queued when it elapses are dropped
    with :attr:`ServeStatus.TIMEOUT` (shedding stale work beats serving
    an answer the page stopped waiting for). ``context_page`` is the
    page the user is browsing — carried for realism and future
    contextual targeting; the current delivery contract matches on the
    user profile alone.
    """

    user_id: str
    slots: int = 1
    context_page: Optional[str] = None
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.slots < 1:
            raise ValueError("a request must ask for at least one slot")
        if self.deadline_s is not None and self.deadline_s < 0:
            raise ValueError("deadline cannot be negative")


@dataclass(frozen=True)
class AdResponse:
    """What a delivery pass produced for one request."""

    user_id: str
    #: Ad ids delivered, one per filled slot, in slot order.
    ad_ids: Tuple[str, ...] = ()
    #: Slots lost to ambient competition (auction ran, no tracked win).
    lost_to_competition: int = 0
    #: Slots with no eligible tracked ad and no competing winner.
    unfilled: int = 0

    @property
    def filled_slots(self) -> int:
        return len(self.ad_ids)


@dataclass(frozen=True)
class ServeResult:
    """The runtime's answer envelope for one submitted request.

    Always produced, whatever happened: ``status`` says how the request
    ended, ``response`` is present only for :attr:`ServeStatus.SERVED`,
    and the timing fields decompose end-to-end latency into queue wait
    and service time (both 0 for requests shed at admission).
    """

    request: AdRequest
    status: ServeStatus
    shard_index: int
    response: Optional[AdResponse] = None
    error: Optional[str] = None
    #: Seconds the request waited in the shard queue.
    queued_s: float = 0.0
    #: Seconds the delivery pass spent on this request.
    service_s: float = 0.0
    #: Requests coalesced into the batch that served this one (0 when
    #: no batch ran, i.e. SHED).
    batch_size: int = 0

    @property
    def latency_s(self) -> float:
        """End-to-end latency: queue wait plus service time."""
        return self.queued_s + self.service_s

    @property
    def ok(self) -> bool:
        return self.status is ServeStatus.SERVED


@dataclass
class ServeTally:
    """Mutable counts of results by status (loadgen and CLI summaries)."""

    submitted: int = 0
    served: int = 0
    shed: int = 0
    timeout: int = 0
    errors: int = 0
    impressions: int = 0

    def add(self, result: ServeResult) -> None:
        self.submitted += 1
        if result.status is ServeStatus.SERVED:
            self.served += 1
            if result.response is not None:
                self.impressions += result.response.filled_slots
        elif result.status is ServeStatus.SHED:
            self.shed += 1
        elif result.status is ServeStatus.TIMEOUT:
            self.timeout += 1
        else:
            self.errors += 1
