"""HTTP-mode open-loop load generation against a live gateway.

Reuses the in-process generator's arrival plan —
:func:`repro.serve.loadgen.build_schedule` is a pure function of
``(seed, config, user population)`` — so ``repro httpgen`` against a
gateway offers the byte-identical request stream that ``repro loadgen``
offers in process. With per-user request ordering preserved (requests
are partitioned across connections by user hash, pipelined in plan
order within each connection), the server-side delivery report comes
out byte-identical too.

The wire loop is deliberately raw sockets, not ``http.client``: each
connection runs a *sender* thread (paced against the shared clock,
writing pipelined ``POST /v1/serve`` frames) and a *receiver* thread
(parsing ``Content-Length``-framed responses and FIFO-matching them to
in-flight sends — HTTP/1.1 pipelining guarantees response order), so
the offered schedule never self-throttles on response latency; that
open-loop honesty is the whole point of the seeded generator.
"""

from __future__ import annotations

import json
import logging
import socket
import threading
import time
import zlib
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple
from urllib.parse import urlsplit

from repro.serve.loadgen import LoadConfig, LoadReport, build_schedule
from repro.serve.requests import (
    AdRequest,
    AdResponse,
    ServeResult,
    ServeStatus,
)

_log = logging.getLogger(__name__)

#: HTTP status -> ServeStatus for resolved ad requests (inverse of the
#: gateway's response mapping; anything unlisted is ERROR).
HTTP_SERVE_STATUS: Dict[int, ServeStatus] = {
    200: ServeStatus.SERVED,
    429: ServeStatus.SHED,
    504: ServeStatus.TIMEOUT,
}

_RESULT_TIMEOUT_S = 60.0


def _parse_base(url: str) -> Tuple[str, int]:
    split = urlsplit(url if "//" in url else f"//{url}")
    if split.scheme not in ("", "http"):
        raise ValueError(f"httpgen speaks plain http, not {url!r}")
    if not split.hostname:
        raise ValueError(f"no host in gateway url {url!r}")
    return split.hostname, split.port or 80


def fetch_json(url: str, path: str,
               timeout_s: float = 10.0) -> Dict[str, object]:
    """One blocking GET; raises on non-2xx or a non-object body."""
    host, port = _parse_base(url)
    with socket.create_connection((host, port),
                                  timeout=timeout_s) as sock:
        sock.sendall(
            f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
            f"Connection: close\r\n\r\n".encode("latin-1"))
        stream = sock.makefile("rb")
        status, body = _read_response(stream)
    if not 200 <= status < 300:
        raise RuntimeError(
            f"GET {path} answered {status}: {body[:200]!r}")
    data = json.loads(body.decode("utf-8"))
    if not isinstance(data, dict):
        raise RuntimeError(f"GET {path} returned a non-object body")
    return data


def _read_response(stream) -> Tuple[int, bytes]:
    """Parse one ``Content-Length``-framed response off ``stream``."""
    status_line = stream.readline()
    if not status_line:
        raise ConnectionError("connection closed before response")
    parts = status_line.decode("latin-1").split(" ", 2)
    if len(parts) < 2 or not parts[1].isdigit():
        raise ConnectionError(
            f"malformed status line: {status_line!r}")
    status = int(parts[1])
    length = 0
    while True:
        line = stream.readline()
        if not line:
            raise ConnectionError("connection closed mid-headers")
        if line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    body = stream.read(length) if length else b""
    if len(body) != length:
        raise ConnectionError("connection closed mid-body")
    return status, body


class HttpLoadGenerator:
    """Drive a gateway at a target RPS over ``connections`` sockets."""

    def __init__(self, url: str, config: Optional[LoadConfig] = None,
                 connections: int = 1,
                 user_ids: Optional[Sequence[str]] = None):
        if connections < 1:
            raise ValueError("need at least one connection")
        self.url = url
        self.host, self.port = _parse_base(url)
        self.config = config or LoadConfig()
        self.connections = connections
        self._user_ids = list(user_ids) if user_ids else None

    def user_ids(self) -> List[str]:
        """The target population — fetched from the gateway so both
        generators sample the identical id list in identical order."""
        if self._user_ids is None:
            data = fetch_json(self.url, "/v1/users")
            self._user_ids = [str(u) for u in data["user_ids"]]  # type: ignore[union-attr]
        return self._user_ids

    def run(self) -> LoadReport:
        """Offer the schedule, wait for every response, report."""
        plan = build_schedule(self.user_ids(), self.config)
        report = LoadReport(config=self.config)
        results: List[Optional[ServeResult]] = [None] * len(plan)
        lanes: List[List[Tuple[int, float, AdRequest]]] = [
            [] for _ in range(self.connections)]
        for index, (offset, request) in enumerate(plan):
            lane = zlib.crc32(
                request.user_id.encode("utf-8")) % self.connections
            lanes[lane].append((index, offset, request))
        start = time.perf_counter()
        workers = [
            _Connection(self, lane_plan, results, start)
            for lane_plan in lanes if lane_plan
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=self.config.duration_s
                        + _RESULT_TIMEOUT_S)
        report.wall_s = time.perf_counter() - start
        for index, result in enumerate(results):
            if result is None:
                result = ServeResult(
                    request=plan[index][1], status=ServeStatus.ERROR,
                    shard_index=-1, error="no response received")
            report.tally.add(result)
            report.latency.observe(result.latency_s)
        _log.info(
            "httpgen: offered %d at %.0f rps target (%.0f achieved) "
            "over %d connection(s), served=%d shed=%d timeout=%d "
            "errors=%d",
            report.offered, self.config.rps, report.achieved_rps,
            len(workers), report.tally.served, report.tally.shed,
            report.tally.timeout, report.tally.errors,
        )
        return report


class _Connection:
    """One pipelined socket: a paced sender plus a framing receiver."""

    def __init__(self, gen: HttpLoadGenerator,
                 plan: List[Tuple[int, float, AdRequest]],
                 results: List[Optional[ServeResult]],
                 clock_zero: float):
        self.gen = gen
        self.plan = plan
        self.results = results
        self.clock_zero = clock_zero
        #: (plan index, send time) of requests on the wire, FIFO.
        self.in_flight: Deque[Tuple[int, float, AdRequest]] = deque()
        self._lock = threading.Lock()
        self._sender = threading.Thread(
            target=self._send_loop, daemon=True)
        self._receiver = threading.Thread(
            target=self._recv_loop, daemon=True)
        self._sock: Optional[socket.socket] = None
        self._dead = False

    def start(self) -> None:
        self._sock = socket.create_connection(
            (self.gen.host, self.gen.port), timeout=_RESULT_TIMEOUT_S)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sender.start()
        self._receiver.start()

    def join(self, timeout: Optional[float] = None) -> None:
        self._sender.join(timeout=timeout)
        self._receiver.join(timeout=timeout)
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass

    def _frame(self, request: AdRequest) -> bytes:
        payload: Dict[str, object] = {
            "user_id": request.user_id,
            "slots": request.slots,
        }
        if request.deadline_s is not None:
            payload["deadline_ms"] = request.deadline_s * 1000.0
        body = json.dumps(payload).encode("utf-8")
        head = (f"POST /v1/serve HTTP/1.1\r\n"
                f"Host: {self.gen.host}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n\r\n")
        return head.encode("latin-1") + body

    def _send_loop(self) -> None:
        assert self._sock is not None
        try:
            for index, offset, request in self.plan:
                ahead = offset - (time.perf_counter() - self.clock_zero)
                if ahead > 0:
                    time.sleep(ahead)
                frame = self._frame(request)
                with self._lock:
                    if self._dead:
                        return
                    self.in_flight.append(
                        (index, time.perf_counter(), request))
                self._sock.sendall(frame)
        except (ConnectionError, OSError):
            self._mark_dead("send failed")

    def _recv_loop(self) -> None:
        assert self._sock is not None
        stream = self._sock.makefile("rb")
        expected = len(self.plan)
        received = 0
        try:
            while received < expected:
                status, body = _read_response(stream)
                now = time.perf_counter()
                with self._lock:
                    if not self.in_flight:
                        raise ConnectionError(
                            "response without an in-flight request")
                    index, sent, request = self.in_flight.popleft()
                self.results[index] = _to_result(
                    request, status, body, latency=now - sent)
                received += 1
        except (ConnectionError, OSError, ValueError):
            self._mark_dead("connection lost mid-run")

    def _mark_dead(self, why: str) -> None:
        """Resolve every in-flight request as ERROR so counts
        reconcile; unsent requests stay ``None`` and the report marks
        them at collection time."""
        with self._lock:
            if self._dead:
                return
            self._dead = True
            pending = list(self.in_flight)
            self.in_flight.clear()
        for index, _sent, request in pending:
            self.results[index] = ServeResult(
                request=request, status=ServeStatus.ERROR,
                shard_index=-1, error=why)
        try:
            assert self._sock is not None
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass


def _to_result(request: AdRequest, status: int, body: bytes,
               latency: float) -> ServeResult:
    serve_status = HTTP_SERVE_STATUS.get(status, ServeStatus.ERROR)
    try:
        data = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        data = {}
    if not isinstance(data, dict):
        data = {}
    response = None
    error = None
    if serve_status is ServeStatus.SERVED:
        response = AdResponse(
            user_id=str(data.get("user_id", request.user_id)),
            ad_ids=tuple(data.get("ad_ids", ())),
            lost_to_competition=int(
                data.get("lost_to_competition", 0)),
            unfilled=int(data.get("unfilled", 0)),
        )
    else:
        detail = data.get("error")
        if isinstance(detail, dict):
            error = str(detail.get("message", f"http {status}"))
        else:
            error = f"http {status}"
    return ServeResult(
        request=request,
        status=serve_status,
        shard_index=int(data.get("shard", -1)),
        response=response,
        error=error,
        queued_s=0.0,
        service_s=latency,
        batch_size=int(data.get("batch_size", 0)),
    )
