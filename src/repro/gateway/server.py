"""The asyncio HTTP server: connection lifecycle over one GatewayApp.

Each connection runs two tasks. The **reader** parses requests in
order and calls :meth:`~repro.gateway.app.GatewayApp.handle`
synchronously — so on a pipelined connection every mutation and every
``runtime.submit`` happens in exact arrival order — then enqueues the
outcome. The **writer** drains the queue, awaiting each pending serve
future as it reaches the front, and writes responses in the same order
the requests arrived (HTTP/1.1 pipelining demands ordered responses;
the runtime still batches freely *behind* the queue).

The server owns its event loop on a dedicated thread, so it embeds in
tests and the CLI alike: ``start()`` blocks until the socket is bound
(resolving an ephemeral port), ``stop()`` tears everything down.
"""

from __future__ import annotations

import asyncio
import logging
import threading
import time
from typing import Optional, Set

from repro.gateway.app import (
    Done,
    GatewayApp,
    Outcome,
    PendingServe,
    serve_result_response,
)
from repro.gateway.http import (
    MAX_HEADER_BYTES,
    HttpError,
    error_body,
    read_request,
    render_response,
)
from repro.obs.metrics import registry as obs_registry
from repro.obs.tracing import tracer

_log = logging.getLogger(__name__)

#: Sentinel telling the writer the reader is done with this connection.
_CLOSE = object()


class GatewayServer:
    """Serve ``app`` on ``host:port`` from a background event loop."""

    def __init__(self, app: GatewayApp, host: str = "127.0.0.1",
                 port: int = 0):
        self.app = app
        self.host = host
        self.port = port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._connections: Set[asyncio.Task] = set()
        reg = obs_registry()
        self._m_connections = reg.counter("gateway.connections")
        self._m_http_errors = reg.counter("gateway.http_errors")
        self._m_request_s = reg.histogram("gateway.request_s")

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "GatewayServer":
        """Bind and serve; returns once the socket is accepting."""
        if self._thread is not None:
            raise RuntimeError("gateway server already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="gateway-http", daemon=True)
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            error = self._startup_error
            self._thread.join()
            self._thread = None
            self._startup_error = None
            raise RuntimeError(
                f"gateway failed to bind {self.host}:{self.port}"
            ) from error
        return self

    def stop(self) -> None:
        """Stop accepting, cancel live connections, join the loop."""
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return
        asyncio.run_coroutine_threadsafe(
            self._shutdown(), loop).result(timeout=10.0)
        thread.join(timeout=10.0)
        self._loop = None
        self._thread = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._startup())
        except BaseException as exc:  # bind failure -> surface in start()
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    async def _startup(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=MAX_HEADER_BYTES)
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        _log.info("gateway listening on %s", self.url)

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections,
                                 return_exceptions=True)
        loop = asyncio.get_running_loop()
        loop.call_soon(loop.stop)

    # -- per-connection ----------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._m_connections.inc()
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        queue: "asyncio.Queue" = asyncio.Queue()
        writer_task = asyncio.ensure_future(
            self._write_responses(queue, writer))
        try:
            await self._read_requests(reader, queue)
            await queue.put((_CLOSE, None))
            await writer_task
        finally:
            if not writer_task.done():
                writer_task.cancel()
                try:
                    await writer_task
                except asyncio.CancelledError:
                    pass
            writer.close()

    async def _read_requests(self, reader: asyncio.StreamReader,
                             queue: "asyncio.Queue") -> None:
        while True:
            started = time.perf_counter()
            try:
                request = await read_request(reader)
            except HttpError as exc:
                await queue.put((Done(
                    exc.status, error_body(exc.code, exc.message)),
                    started))
                if exc.close:
                    return
                continue
            except (ConnectionError, OSError):
                return
            if request is None:
                return
            with tracer().span("gateway.request",
                               method=request.method,
                               path=request.path):
                outcome = self.app.handle(request)
            await queue.put((outcome, started))
            if request.headers.get("connection", "").lower() == "close":
                if isinstance(outcome, Done):
                    outcome.extra_headers["Connection"] = "close"
                return

    async def _write_responses(self, queue: "asyncio.Queue",
                               writer: asyncio.StreamWriter) -> None:
        while True:
            outcome, started = await queue.get()
            if outcome is _CLOSE:
                return
            done = await self._resolve(outcome)
            close = done.extra_headers.pop("Connection", "") == "close"
            try:
                writer.write(render_response(
                    done.status, done.body,
                    content_type=done.content_type, close=close,
                    extra_headers=done.extra_headers))
                await writer.drain()
            except (ConnectionError, OSError):
                return
            if done.status >= 400:
                self._m_http_errors.inc()
            if started is not None:
                self._m_request_s.observe(time.perf_counter() - started)
            if close:
                return

    @staticmethod
    async def _resolve(outcome: Outcome) -> Done:
        if isinstance(outcome, Done):
            return outcome
        assert isinstance(outcome, PendingServe)
        try:
            result = await asyncio.wait_for(
                asyncio.wrap_future(outcome.future), timeout=None)
        except Exception as exc:  # noqa: BLE001 - runtime died mid-flight
            _log.exception("serve future failed")
            return Done(500, error_body(
                "serve_error", f"serving failed: {type(exc).__name__}"))
        return serve_result_response(result)
