"""The gateway application: routing and request handlers.

:meth:`GatewayApp.handle` is deliberately **synchronous** and runs on
the server's event-loop thread: routing, tenancy mutations, and
``runtime.submit`` all complete before the next pipelined request on
the same connection is parsed — so admission order equals arrival
order, which is what makes an HTTP-driven run reproduce the in-process
load generator's delivery byte-for-byte. Ad-serve requests return a
:class:`PendingServe` (the runtime's future plus response metadata)
that the connection's writer awaits; everything else returns a
finished :class:`Done` response.

Failure mapping (see ``docs/service.md``): parse errors and bad input
are 4xx with a structured error body, SHED is 429 with ``Retry-After``,
deadline TIMEOUT is 504, a serving-side exception is 500 — and an
unexpected handler exception is logged server-side and answered with an
opaque 500, never a stack trace.
"""

from __future__ import annotations

import logging
import re
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.errors import ReproError
from repro.gateway.http import HttpError, Request, error_body, json_body
from repro.gateway.tenancy import TenantRegistry
from repro.gateway.world import WorldManifest
from repro.obs import export as obs_export
from repro.obs.metrics import registry as obs_registry
from repro.obs.slo import SLOSpec, evaluate_report, parse_slo
from repro.platform.platform import AdPlatform
from repro.serve import AdRequest, ServeResult, ServeStatus, ServingRuntime
from repro.store.audit import canonical_json, state_report

_log = logging.getLogger(__name__)


@dataclass
class Done:
    """A finished response."""

    status: int
    body: bytes
    content_type: str = "application/json"
    extra_headers: Dict[str, str] = field(default_factory=dict)


@dataclass
class PendingServe:
    """An admitted ad request whose result is still in flight."""

    future: "Future[ServeResult]"


Outcome = Union[Done, PendingServe]

#: ServeStatus -> HTTP status for resolved ad requests.
SERVE_STATUS_HTTP: Dict[ServeStatus, int] = {
    ServeStatus.SERVED: 200,
    ServeStatus.SHED: 429,
    ServeStatus.TIMEOUT: 504,
    ServeStatus.ERROR: 500,
}


def serve_result_response(result: ServeResult) -> Done:
    """Map one resolved :class:`ServeResult` onto the wire."""
    status = SERVE_STATUS_HTTP[result.status]
    if result.status is ServeStatus.SERVED:
        response = result.response
        assert response is not None
        return Done(status, json_body({
            "status": result.status.value,
            "user_id": response.user_id,
            "ad_ids": list(response.ad_ids),
            "lost_to_competition": response.lost_to_competition,
            "unfilled": response.unfilled,
            "shard": result.shard_index,
            "batch_size": result.batch_size,
        }))
    extra: Dict[str, str] = {}
    if result.status is ServeStatus.SHED:
        extra["Retry-After"] = "1"
    codes = {ServeStatus.SHED: "shed",
             ServeStatus.TIMEOUT: "deadline_exceeded"}
    code = codes.get(result.status, "serve_error")
    message = result.error or f"request resolved {result.status.value}"
    return Done(status, error_body(code, message), extra_headers=extra)


class GatewayApp:
    """Routes parsed requests to handlers over one serving world."""

    def __init__(self, platform: AdPlatform, runtime: ServingRuntime,
                 tenants: TenantRegistry, manifest: WorldManifest,
                 slo_spec: Optional[SLOSpec] = None):
        self.platform = platform
        self.runtime = runtime
        self.tenants = tenants
        self.manifest = manifest
        self.slo_spec = slo_spec
        reg = obs_registry()
        self._m_requests = reg.counter("gateway.requests")
        self._routes: List[Tuple[str, "re.Pattern[str]",
                                 Callable[..., Outcome]]] = []
        route = self._add_route
        route("GET", "/healthz", self._get_healthz)
        route("GET", "/metrics", self._get_metrics)
        route("GET", "/v1/slo", self._get_slo)
        route("GET", "/v1/state", self._get_state)
        route("GET", "/v1/users", self._get_users)
        route("GET", "/v1/config", self._get_config)
        route("POST", "/v1/serve", self._post_serve)
        route("POST", "/v1/orgs", self._post_orgs)
        route("GET", "/v1/orgs", self._get_orgs)
        route("GET", "/v1/orgs/{org}", self._get_org)
        route("POST", "/v1/orgs/{org}/campaigns", self._post_campaigns)
        route("GET", "/v1/orgs/{org}/campaigns", self._get_campaigns)
        route("GET", "/v1/orgs/{org}/campaigns/{campaign}",
              self._get_campaign)
        route("POST", "/v1/orgs/{org}/campaigns/{campaign}/pause",
              self._post_pause)
        route("POST", "/v1/audiences", self._post_audiences)
        route("GET", "/v1/audiences", self._get_audiences)
        route("GET", "/v1/audiences/{audience}", self._get_audience)
        route("GET", "/v1/reports/{ad}", self._get_report)
        route("GET", "/v1/explanations", self._get_explanation)

    def _add_route(self, method: str, template: str,
                   handler: Callable[..., Outcome]) -> None:
        pattern = re.compile(
            "^" + re.sub(r"\{(\w+)\}", r"(?P<\1>[^/]+)", template) + "$")
        self._routes.append((method, pattern, handler))

    # -- dispatch ----------------------------------------------------------

    def handle(self, request: Request) -> Outcome:
        """Route one request; never raises."""
        self._m_requests.inc()
        methods_seen = []
        for method, pattern, handler in self._routes:
            match = pattern.match(request.path)
            if match is None:
                continue
            if method != request.method:
                methods_seen.append(method)
                continue
            try:
                return handler(request, **match.groupdict())
            except HttpError as exc:
                return Done(exc.status,
                            error_body(exc.code, exc.message))
            except ReproError as exc:
                return Done(400, error_body(
                    type(exc).__name__, str(exc)))
            except Exception:  # noqa: BLE001 - never leak a traceback
                _log.exception("unhandled error in %s %s",
                               request.method, request.path)
                return Done(500, error_body(
                    "internal_error", "unexpected server error"))
        if methods_seen:
            return Done(405, error_body(
                "method_not_allowed",
                f"{request.path} accepts {sorted(set(methods_seen))}, "
                f"not {request.method}"))
        return Done(404, error_body(
            "not_found", f"no route for {request.path}"))

    # -- operational endpoints ---------------------------------------------

    def _get_healthz(self, request: Request) -> Done:
        running = self.runtime.running
        return Done(200 if running else 503, json_body({
            "status": "ok" if running else "starting",
            "backend": self.runtime.config.backend,
            "shards": self.runtime.router.num_shards,
        }))

    def _get_metrics(self, request: Request) -> Done:
        text = obs_export.to_prometheus(self.runtime.live_metrics())
        return Done(200, text.encode("utf-8"),
                    content_type="text/plain; version=0.0.4")

    def _get_slo(self, request: Request) -> Done:
        raw = request.query.get("spec")
        if raw is not None:
            try:
                spec = parse_slo(raw)
            except ValueError as exc:
                raise HttpError(400, "bad_slo_spec", str(exc)) from None
        else:
            spec = self.slo_spec
        if spec is None:
            raise HttpError(400, "no_slo_spec",
                            "pass ?spec=p99=5ms,availability=99% or "
                            "start the gateway with --slo")
        live = self.runtime.live_metrics()
        evaluation = evaluate_report(_LiveReport(live), spec)
        return Done(200, json_body({
            "spec": spec.describe(),
            **evaluation.summary(),
        }))

    def _get_state(self, request: Request) -> Done:
        report = state_report(self.runtime.router)
        return Done(200, canonical_json(report).encode("utf-8"))

    def _get_users(self, request: Request) -> Done:
        return Done(200, json_body(
            {"user_ids": list(self.platform.users.user_ids())}))

    def _get_config(self, request: Request) -> Done:
        return Done(200, json_body(self.manifest.to_dict()))

    # -- ad serving --------------------------------------------------------

    def _post_serve(self, request: Request) -> Outcome:
        body = request.json()
        user_id = body.get("user_id")
        if not isinstance(user_id, str) or not user_id:
            raise HttpError(400, "missing_user_id",
                            "body needs a non-empty string user_id")
        slots = body.get("slots", 1)
        deadline_ms = body.get("deadline_ms")
        if not isinstance(slots, int) or isinstance(slots, bool):
            raise HttpError(400, "bad_slots",
                            "slots must be an integer")
        if deadline_ms is not None and (
                isinstance(deadline_ms, bool)
                or not isinstance(deadline_ms, (int, float))):
            raise HttpError(400, "bad_deadline",
                            "deadline_ms must be a number")
        if user_id not in self.platform.users:
            raise HttpError(404, "unknown_user",
                            f"unknown user {user_id!r}")
        try:
            ad_request = AdRequest(
                user_id=user_id,
                slots=slots,
                deadline_s=(deadline_ms / 1000.0
                            if deadline_ms is not None else None),
            )
        except ValueError as exc:
            raise HttpError(400, "bad_request", str(exc)) from None
        return PendingServe(future=self.runtime.submit(ad_request))

    # -- tenancy: orgs -----------------------------------------------------

    def _post_orgs(self, request: Request) -> Done:
        body = request.json()
        name = body.get("name")
        if not isinstance(name, str) or not name.strip():
            raise HttpError(400, "missing_name",
                            "body needs a non-empty string name")
        budget = body.get("budget", 0.0)
        if isinstance(budget, bool) \
                or not isinstance(budget, (int, float)) or budget < 0:
            raise HttpError(400, "bad_budget",
                            "budget must be a non-negative number")
        record = self.tenants.create_org(name.strip(), float(budget))
        return Done(201, json_body(self._org_view(record.org_id)))

    def _get_orgs(self, request: Request) -> Done:
        return Done(200, json_body({
            "orgs": [self._org_view(r.org_id)
                     for r in self.tenants.orgs()],
        }))

    def _get_org(self, request: Request, org: str) -> Done:
        self._resolve_org(org)
        return Done(200, json_body(self._org_view(org)))

    # -- tenancy: campaigns ------------------------------------------------

    def _post_campaigns(self, request: Request, org: str) -> Done:
        self._resolve_org(org)
        body = request.json()
        name = body.get("name")
        if not isinstance(name, str) or not name.strip():
            raise HttpError(400, "missing_name",
                            "body needs a non-empty string name")
        record = self.tenants.create_campaign(org, name.strip())
        return Done(201,
                    json_body(self._campaign_view(record.campaign_id)))

    def _get_campaigns(self, request: Request, org: str) -> Done:
        self._resolve_org(org)
        return Done(200, json_body({
            "campaigns": [self._campaign_view(c.campaign_id)
                          for c in self.tenants.campaigns_for(org)],
        }))

    def _get_campaign(self, request: Request, org: str,
                      campaign: str) -> Done:
        self._resolve_campaign(org, campaign)
        return Done(200, json_body(self._campaign_view(campaign)))

    def _post_pause(self, request: Request, org: str,
                    campaign: str) -> Done:
        self._resolve_campaign(org, campaign)
        self.tenants.pause_campaign(org, campaign)
        return Done(200, json_body(self._campaign_view(campaign)))

    # -- tenancy: audiences ------------------------------------------------

    def _post_audiences(self, request: Request) -> Done:
        body = request.json()
        org_id = body.get("org_id")
        if not isinstance(org_id, str):
            raise HttpError(400, "missing_org_id",
                            "body needs a string org_id")
        self._resolve_org(org_id)
        name = body.get("name", "")
        if not isinstance(name, str):
            raise HttpError(400, "bad_name", "name must be a string")
        phrases = body.get("phrases")
        if not isinstance(phrases, list) or not phrases \
                or not all(isinstance(p, str) and p.strip()
                           for p in phrases):
            raise HttpError(400, "bad_phrases",
                            "phrases must be a non-empty list of "
                            "non-empty strings")
        record = self.tenants.create_audience(
            org_id, name, tuple(phrases))
        return Done(201,
                    json_body(self._audience_view(record.audience_id)))

    def _get_audiences(self, request: Request) -> Done:
        org_id = request.query.get("org")
        if org_id is not None:
            self._resolve_org(org_id)
        return Done(200, json_body({
            "audiences": [self._audience_view(a.audience_id)
                          for a in self.tenants.audiences(org_id)],
        }))

    def _get_audience(self, request: Request, audience: str) -> Done:
        self._resolve_audience(audience)
        return Done(200, json_body(self._audience_view(audience)))

    # -- transparency: reports + explanations ------------------------------

    def _get_report(self, request: Request, ad: str) -> Done:
        try:
            self.platform.inventory.ad(ad)
        except ReproError:
            raise HttpError(404, "unknown_ad",
                            f"unknown ad {ad!r}") from None
        router = self.runtime.router
        spend = sum(
            impression.price
            for shard in router.shards
            for impression in shard.engine.impressions_for_ad(ad)
        )
        return Done(200, json_body({
            "ad_id": ad,
            "impressions": router.impressions_for_ad(ad),
            "clicks": router.clicks_for_ad(ad),
            "reach": router.reach_count(ad),
            "spend": round(spend, 10),
        }))

    def _get_explanation(self, request: Request) -> Done:
        user_id = request.query.get("user")
        ad_id = request.query.get("ad")
        if not user_id or not ad_id:
            raise HttpError(400, "missing_params",
                            "pass ?user=<user_id>&ad=<ad_id>")
        try:
            explanation = self.platform.explain_ad(user_id, ad_id)
        except ReproError as exc:
            raise HttpError(404, "unknown_user_or_ad",
                            str(exc)) from None
        return Done(200, json_body({
            "ad_id": explanation.ad_id,
            "text": explanation.text,
            "revealed_attribute": explanation.revealed_attribute,
            "mentions_customer_list":
                explanation.mentions_customer_list,
            "demographic_clauses":
                list(explanation.demographic_clauses),
        }))

    # -- views + lookups ---------------------------------------------------

    def _resolve_org(self, org_id: str):
        try:
            return self.tenants.org(org_id)
        except ReproError:
            raise HttpError(404, "unknown_org",
                            f"unknown org {org_id!r}") from None

    def _resolve_campaign(self, org_id: str, campaign_id: str):
        self._resolve_org(org_id)
        try:
            record = self.tenants.campaign(campaign_id)
        except ReproError:
            raise HttpError(404, "unknown_campaign",
                            f"unknown campaign {campaign_id!r}"
                            ) from None
        if record.org_id != org_id:
            raise HttpError(404, "unknown_campaign",
                            f"campaign {campaign_id!r} does not belong "
                            f"to org {org_id!r}")
        return record

    def _resolve_audience(self, audience_id: str):
        try:
            return self.tenants.audience(audience_id)
        except ReproError:
            raise HttpError(404, "unknown_audience",
                            f"unknown audience {audience_id!r}"
                            ) from None

    def _org_view(self, org_id: str) -> Dict[str, object]:
        record = self.tenants.org(org_id)
        account = self.platform.inventory.account(record.account_id)
        return {
            "org_id": record.org_id,
            "name": record.name,
            "account_id": record.account_id,
            "budget": record.budget,
            "budget_remaining": account.budget,
            "campaigns": len(self.tenants.campaigns_for(org_id)),
            "audiences": len(self.tenants.audiences(org_id)),
        }

    def _campaign_view(self, campaign_id: str) -> Dict[str, object]:
        record = self.tenants.campaign(campaign_id)
        ads = self.platform.inventory.ads_in_campaign(campaign_id)
        return {
            "org_id": record.org_id,
            "campaign_id": record.campaign_id,
            "name": record.name,
            "paused": self.tenants.is_paused(campaign_id),
            "ad_ids": [ad.ad_id for ad in ads],
        }

    def _audience_view(self, audience_id: str) -> Dict[str, object]:
        record = self.tenants.audience(audience_id)
        size = len(self.platform.audiences.members(audience_id))
        return {
            "org_id": record.org_id,
            "audience_id": record.audience_id,
            "name": record.name,
            "phrases": list(record.phrases),
            "size": size,
        }


class _LiveReport:
    """Adapter: a live registry scored like a finished load report."""

    def __init__(self, live) -> None:
        self.latency = (live.get("serve.request_latency_s")
                        or live.histogram("serve.request_latency_s"))
        self.tally = _LiveTally(
            submitted=int(live.value("serve.requests_submitted")),
            served=int(live.value("serve.requests_served")),
        )


class _LiveTally:
    def __init__(self, submitted: int, served: int) -> None:
        self.submitted = submitted
        self.served = served
