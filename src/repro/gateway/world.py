"""Deterministic gateway worlds: manifest, build, and crash recovery.

The gateway's durability story rests on one idea borrowed from the
``repro checkpoint`` pipeline: the *world* (users, catalog, provider
sweep) is a pure function of a small manifest, so only the manifest and
the journals need to survive a crash. Restarting rebuilds the identical
world from the manifest, recovers every shard from its write-ahead
journal, and replays the tenancy journal through
:class:`~repro.gateway.tenancy.TenantRegistry` — whose records carry
the platform ids they were granted, letting replay *verify* it landed
on the same world it left.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from typing import List, Optional, Tuple

from repro.core.provider import TransparencyProvider
from repro.platform.platform import AdPlatform, PlatformConfig
from repro.platform.web import WebDirectory
from repro.serve import (
    KeyedCompetition,
    RuntimeConfig,
    ServingRuntime,
    shard_journal_path,
)
from repro.store import JournalStore
from repro.workloads.personas import (
    AVERAGE_CONSUMER,
    ESTABLISHED_PROFESSIONAL,
    RECENT_ARRIVAL_GRAD_STUDENT,
)
from repro.workloads.population import PopulationBuilder

MANIFEST_FILENAME = "manifest.json"

#: The tenancy journal (org/campaign/audience change records).
TENANCY_JOURNAL = "gateway.jsonl"


@dataclass(frozen=True)
class WorldManifest:
    """Everything needed to rebuild a gateway world byte-identically."""

    seed: int = 42
    users: int = 150
    shards: int = 4
    backend: str = "thread"
    queue_capacity: int = 256
    workers: int = 1
    deadline_ms: Optional[float] = None

    def to_dict(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_dict(data: dict) -> "WorldManifest":
        return WorldManifest(**data)


def manifest_path(journal_dir: str) -> str:
    return os.path.join(journal_dir, MANIFEST_FILENAME)


def tenancy_journal_path(journal_dir: str) -> str:
    return os.path.join(journal_dir, TENANCY_JOURNAL)


def save_manifest(journal_dir: str, manifest: WorldManifest) -> None:
    os.makedirs(journal_dir, exist_ok=True)
    tmp = manifest_path(journal_dir) + ".tmp"
    with open(tmp, "w", encoding="utf-8") as stream:
        json.dump(manifest.to_dict(), stream, indent=2, sort_keys=True)
        stream.write("\n")
    os.replace(tmp, manifest_path(journal_dir))


def load_manifest(journal_dir: str) -> Optional[WorldManifest]:
    path = manifest_path(journal_dir)
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as stream:
        return WorldManifest.from_dict(json.load(stream))


def build_world(manifest: WorldManifest) -> AdPlatform:
    """The serving world, mirrored from the CLI's ``serve`` builder:
    a seeded persona-mix population with a full Tread sweep. Pure in
    the manifest — two builds from equal manifests are identical,
    including every id the platform's ``IdFactory`` hands out."""
    platform = AdPlatform(config=PlatformConfig(name="gateway"))
    web = WebDirectory()
    builder = PopulationBuilder(platform, seed=manifest.seed)
    builder.spawn_mix(
        [ESTABLISHED_PROFESSIONAL, AVERAGE_CONSUMER,
         RECENT_ARRIVAL_GRAD_STUDENT],
        manifest.users,
    )
    builder.finalize()
    provider = TransparencyProvider(platform, web, budget=10_000.0,
                                    bid_cap_cpm=10.0)
    for user_id in platform.users.user_ids():
        provider.optin.via_page_like(user_id)
    provider.launch_partner_sweep()
    return platform


def build_runtime(platform: AdPlatform, manifest: WorldManifest,
                  journal_dir: Optional[str] = None,
                  telemetry_interval_s: Optional[float] = None
                  ) -> ServingRuntime:
    return ServingRuntime(
        platform,
        RuntimeConfig(
            num_shards=manifest.shards,
            workers_per_shard=manifest.workers,
            queue_capacity=manifest.queue_capacity,
            backend=manifest.backend,
            journal_dir=journal_dir,
            default_deadline_s=(manifest.deadline_ms / 1000.0
                                if manifest.deadline_ms is not None
                                else None),
            telemetry_interval_s=telemetry_interval_s,
        ),
        competition=KeyedCompetition(seed=manifest.seed),
    )


def existing_shard_journals(journal_dir: str,
                            manifest: WorldManifest) -> List[int]:
    """Shard indices with a journal on disk (a prior run to recover)."""
    present: List[int] = []
    for index in range(manifest.shards):
        if os.path.exists(shard_journal_path(journal_dir, index,
                                             manifest.shards)):
            present.append(index)
    return present


def recover_runtime_shards(runtime: ServingRuntime, journal_dir: str,
                           manifest: WorldManifest,
                           indices: Optional[List[int]] = None
                           ) -> Tuple[int, ...]:
    """Fold every on-disk shard journal back into a stopped runtime.

    On the thread backend each recovered shard's journal is reopened
    for append (serving resumes right where the dead gateway stopped);
    on the process backend the recovered shadow seeds the next worker
    spawn. Returns the recovered shard indices. Pass ``indices`` (from
    :func:`existing_shard_journals` *before* the runtime was built)
    when the runtime's own construction may have created fresh journal
    files — those need no recovery.
    """
    if indices is None:
        indices = existing_shard_journals(journal_dir, manifest)
    recovered = []
    for index in indices:
        if runtime.config.backend != "process":
            # The freshly built router already opened this shard's
            # journal for append; recover_shard reopens it, so release
            # the stale handle first.
            runtime.router.shards[index].store.close()
        runtime.recover_shard(index)
        recovered.append(index)
    return tuple(recovered)


def open_tenancy_store(journal_dir: str) -> JournalStore:
    """The tenancy WAL: flush-per-append, so every mutation is pushed
    to the OS before its HTTP 2xx goes out."""
    return JournalStore(tenancy_journal_path(journal_dir), flush_every=1)
