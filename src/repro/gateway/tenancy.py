"""Durable multi-tenant campaign/audience registry.

The gateway's management API is multi-tenant: each *org* owns one
platform ad account plus the campaigns and audiences created under it.
Every accepted mutation becomes one typed change record
(:class:`~repro.store.records.OrgCreated` /
:class:`~repro.store.records.CampaignCreated` /
:class:`~repro.store.records.CampaignPaused` /
:class:`~repro.store.records.AudienceCreated`) appended *and flushed*
to the gateway journal before the HTTP 2xx goes out — so a ``kill -9``
of the gateway can never lose an acknowledged write.

Recovery replays the journal through :meth:`TenantRegistry.apply_record`
onto a world rebuilt from the same manifest. Records carry the platform
ids the original mutation was granted; replay re-executes the mutation
(the :class:`~repro.platform.platform.AdPlatform` ``IdFactory`` counts
deterministically, so a faithful rebuild regenerates identical ids) and
raises :class:`~repro.errors.StoreError` on any mismatch — folding a
journal onto the wrong world is detected, not absorbed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import StoreError
from repro.obs.metrics import registry as obs_registry
from repro.platform.platform import AdPlatform
from repro.store import StateStore
from repro.store.records import (
    AudienceCreated,
    CampaignCreated,
    CampaignPaused,
    ChangeRecord,
    OrgCreated,
    record_from_dict,
    record_to_dict,
)


class TenantRegistry:
    """State owner mapping gateway orgs onto platform primitives.

    All mutation entry points run on the gateway's event-loop thread —
    single-threaded by construction, so the journal order *is* the
    mutation order and no locking is needed.
    """

    store_name = "gateway_tenants"
    handled_kinds = (OrgCreated.kind, CampaignCreated.kind,
                     CampaignPaused.kind, AudienceCreated.kind)

    def __init__(self, platform: AdPlatform, store: StateStore):
        self.platform = platform
        self._store = store
        self._orgs: Dict[str, OrgCreated] = {}
        self._campaigns: Dict[str, CampaignCreated] = {}
        self._audiences: Dict[str, AudienceCreated] = {}
        self._paused: set = set()
        self._m_journaled = obs_registry().counter(
            "gateway.mutations_journaled")
        store.attach(self)

    # -- live mutations (journal, then absorb) -----------------------------

    def create_org(self, name: str, budget: float) -> OrgCreated:
        """Open a tenant org backed by a fresh platform ad account.

        Platform mutation first (validation failures propagate before
        anything is journaled), then the record is appended + flushed —
        durable — and only then absorbed into the live views.
        """
        account = self.platform.create_ad_account(name, budget=budget)
        record = OrgCreated(
            org_id=f"org-{len(self._orgs) + 1}",
            name=name,
            account_id=account.account_id,
            budget=budget,
        )
        self._journal(record)
        self._absorb_org(record)
        return record

    def create_campaign(self, org_id: str, name: str) -> CampaignCreated:
        org = self.org(org_id)
        campaign = self.platform.create_campaign(org.account_id, name)
        record = CampaignCreated(
            org_id=org_id,
            campaign_id=campaign.campaign_id,
            name=name,
        )
        self._journal(record)
        self._absorb_campaign(record)
        return record

    def pause_campaign(self, org_id: str,
                       campaign_id: str) -> CampaignPaused:
        org = self.org(org_id)
        campaign = self.campaign(campaign_id)
        if campaign.org_id != org_id:
            raise StoreError(
                f"campaign {campaign_id!r} does not belong to org "
                f"{org_id!r}")
        self._pause_ads(org.account_id, campaign_id)
        record = CampaignPaused(org_id=org_id, campaign_id=campaign_id)
        self._journal(record)
        self._absorb_pause(record)
        return record

    def create_audience(self, org_id: str, name: str,
                        phrases: Tuple[str, ...]) -> AudienceCreated:
        org = self.org(org_id)
        audience = self.platform.create_keyword_audience(
            org.account_id, phrases, name=name)
        record = AudienceCreated(
            org_id=org_id,
            audience_id=audience.audience_id,
            name=name,
            phrases=tuple(phrases),
        )
        self._journal(record)
        self._absorb_audience(record)
        return record

    def _journal(self, record: ChangeRecord) -> None:
        self._store.append(record)
        self._store.flush()
        self._m_journaled.inc()

    def _pause_ads(self, account_id: str, campaign_id: str) -> None:
        for ad in self.platform.inventory.ads_in_campaign(campaign_id):
            self.platform.pause_ad(account_id, ad.ad_id)

    # -- live views --------------------------------------------------------

    def org(self, org_id: str) -> OrgCreated:
        try:
            return self._orgs[org_id]
        except KeyError:
            raise StoreError(f"unknown org {org_id!r}") from None

    def campaign(self, campaign_id: str) -> CampaignCreated:
        try:
            return self._campaigns[campaign_id]
        except KeyError:
            raise StoreError(
                f"unknown campaign {campaign_id!r}") from None

    def audience(self, audience_id: str) -> AudienceCreated:
        try:
            return self._audiences[audience_id]
        except KeyError:
            raise StoreError(
                f"unknown audience {audience_id!r}") from None

    def orgs(self) -> List[OrgCreated]:
        return list(self._orgs.values())

    def campaigns_for(self, org_id: str) -> List[CampaignCreated]:
        self.org(org_id)
        return [c for c in self._campaigns.values()
                if c.org_id == org_id]

    def audiences(self, org_id: Optional[str] = None
                  ) -> List[AudienceCreated]:
        if org_id is None:
            return list(self._audiences.values())
        self.org(org_id)
        return [a for a in self._audiences.values()
                if a.org_id == org_id]

    def is_paused(self, campaign_id: str) -> bool:
        return campaign_id in self._paused

    # -- StateOwner protocol -----------------------------------------------

    def state_dump(self) -> Dict[str, object]:
        return {
            "orgs": [record_to_dict(r) for r in self._orgs.values()],
            "campaigns": [record_to_dict(r)
                          for r in self._campaigns.values()],
            "audiences": [record_to_dict(r)
                          for r in self._audiences.values()],
            "paused": sorted(self._paused),
        }

    def state_load(self, state: Dict[str, object]) -> None:
        self._orgs = {}
        self._campaigns = {}
        self._audiences = {}
        self._paused = set()
        for data in state.get("orgs", []):  # type: ignore[union-attr]
            record = record_from_dict(dict(data))
            assert isinstance(record, OrgCreated)
            self._orgs[record.org_id] = record
        for data in state.get("campaigns", []):  # type: ignore[union-attr]
            record = record_from_dict(dict(data))
            assert isinstance(record, CampaignCreated)
            self._campaigns[record.campaign_id] = record
        for data in state.get("audiences", []):  # type: ignore[union-attr]
            record = record_from_dict(dict(data))
            assert isinstance(record, AudienceCreated)
            self._audiences[record.audience_id] = record
        self._paused = set(state.get("paused", []))  # type: ignore[arg-type]

    def apply_record(self, record: ChangeRecord) -> None:
        """Replay path: re-execute the mutation and verify the ids.

        Idempotent — a record already absorbed with an identical
        payload is a no-op (a journal may be folded twice); the same id
        with a *conflicting* payload is corruption and raises.
        """
        if isinstance(record, OrgCreated):
            existing = self._orgs.get(record.org_id)
            if existing is not None:
                self._require_identical(existing, record)
                return
            account = self.platform.create_ad_account(
                record.name, budget=record.budget)
            self._verify_id("account", account.account_id,
                            record.account_id, record)
            self._absorb_org(record)
        elif isinstance(record, CampaignCreated):
            existing = self._campaigns.get(record.campaign_id)
            if existing is not None:
                self._require_identical(existing, record)
                return
            org = self.org(record.org_id)
            campaign = self.platform.create_campaign(
                org.account_id, record.name)
            self._verify_id("campaign", campaign.campaign_id,
                            record.campaign_id, record)
            self._absorb_campaign(record)
        elif isinstance(record, CampaignPaused):
            org = self.org(record.org_id)
            self.campaign(record.campaign_id)
            self._pause_ads(org.account_id, record.campaign_id)
            self._absorb_pause(record)
        elif isinstance(record, AudienceCreated):
            existing = self._audiences.get(record.audience_id)
            if existing is not None:
                self._require_identical(existing, record)
                return
            org = self.org(record.org_id)
            audience = self.platform.create_keyword_audience(
                org.account_id, record.phrases, name=record.name)
            self._verify_id("audience", audience.audience_id,
                            record.audience_id, record)
            self._absorb_audience(record)
        else:
            raise StoreError(
                f"tenant registry cannot apply {record.kind!r}")

    @staticmethod
    def _require_identical(existing: ChangeRecord,
                           record: ChangeRecord) -> None:
        if existing != record:
            raise StoreError(
                f"conflicting replay for {record.kind!r}: journal has "
                f"{record}, registry holds {existing}")

    @staticmethod
    def _verify_id(what: str, regenerated: str, recorded: str,
                   record: ChangeRecord) -> None:
        if regenerated != recorded:
            raise StoreError(
                f"replayed {record.kind!r} regenerated {what} id "
                f"{regenerated!r} but the journal recorded "
                f"{recorded!r} — this journal belongs to a different "
                f"world")

    # -- absorb (shared by live + replay) ----------------------------------

    def _absorb_org(self, record: OrgCreated) -> None:
        self._orgs[record.org_id] = record

    def _absorb_campaign(self, record: CampaignCreated) -> None:
        self._campaigns[record.campaign_id] = record

    def _absorb_pause(self, record: CampaignPaused) -> None:
        self._paused.add(record.campaign_id)

    def _absorb_audience(self, record: AudienceCreated) -> None:
        self._audiences[record.audience_id] = record
