"""``repro.gateway`` — the HTTP service front over the serving runtime.

A stdlib-asyncio HTTP/1.1 server (:mod:`repro.gateway.server`) routing
into one :class:`~repro.gateway.app.GatewayApp`: ad requests flow into
the :class:`~repro.serve.ServingRuntime` micro-batch path, campaign
and audience mutations flow through the durable
:class:`~repro.gateway.tenancy.TenantRegistry` journal, and the
observability endpoints re-export the live metrics/SLO plane. The
world behind the service is a pure function of a
:class:`~repro.gateway.world.WorldManifest`, which is what makes
``kill -9`` recovery byte-exact. ``repro gateway`` serves;
``repro httpgen`` (:mod:`repro.gateway.httpgen`) drives it with the
same seeded open-loop schedule the in-process generator uses.
"""

from repro.gateway.app import (
    Done,
    GatewayApp,
    PendingServe,
    serve_result_response,
)
from repro.gateway.http import (
    DEFAULT_MAX_BODY_BYTES,
    MAX_HEADER_BYTES,
    HttpError,
    Request,
    error_body,
    json_body,
    read_request,
    render_response,
)
from repro.gateway.httpgen import HttpLoadGenerator, fetch_json
from repro.gateway.server import GatewayServer
from repro.gateway.tenancy import TenantRegistry
from repro.gateway.world import (
    MANIFEST_FILENAME,
    TENANCY_JOURNAL,
    WorldManifest,
    build_runtime,
    build_world,
    existing_shard_journals,
    load_manifest,
    manifest_path,
    open_tenancy_store,
    recover_runtime_shards,
    save_manifest,
    tenancy_journal_path,
)

__all__ = [
    "DEFAULT_MAX_BODY_BYTES",
    "Done",
    "GatewayApp",
    "GatewayServer",
    "HttpError",
    "HttpLoadGenerator",
    "MANIFEST_FILENAME",
    "MAX_HEADER_BYTES",
    "PendingServe",
    "Request",
    "TENANCY_JOURNAL",
    "TenantRegistry",
    "WorldManifest",
    "build_runtime",
    "build_world",
    "error_body",
    "existing_shard_journals",
    "fetch_json",
    "json_body",
    "load_manifest",
    "manifest_path",
    "open_tenancy_store",
    "read_request",
    "recover_runtime_shards",
    "render_response",
    "save_manifest",
    "serve_result_response",
    "tenancy_journal_path",
]
