"""Minimal HTTP/1.1 wire layer: request parsing and response framing.

Stdlib-asyncio only — no third-party HTTP stack. The subset implemented
is exactly what the gateway needs: ``Content-Length``-framed bodies,
keep-alive by default (with pipelining — see
:mod:`repro.gateway.server`), and structured JSON error bodies. Parse
failures map to an :class:`HttpError` with a machine-readable ``code``;
the server renders them as ``{"error": {"code", "message"}}`` and never
leaks a stack trace to the client.

Deliberately unsupported (501/400, never silent misframing):
``Transfer-Encoding`` (chunked bodies), ``Expect: 100-continue``, and
HTTP/0.9/2. Requests without a ``Content-Length`` carry no body.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional
from urllib.parse import unquote, urlsplit

#: Cap on the request line + headers block, bytes.
MAX_HEADER_BYTES = 16384

#: Default cap on request bodies, bytes (1 MiB).
DEFAULT_MAX_BODY_BYTES = 1024 * 1024

#: Reason phrases for the statuses the gateway emits.
REASONS: Dict[int, str] = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A request that cannot be served, with its HTTP mapping.

    ``code`` is a stable machine-readable slug (``invalid_json``,
    ``unknown_user``, ...) rendered into the structured error body;
    ``message`` is the human-readable line next to it.
    """

    def __init__(self, status: int, code: str, message: str,
                 close: bool = False):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        #: Parse-level failures poison the connection's framing; the
        #: server closes after responding when this is set.
        self.close = close


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Dict[str, object]:
        """The body as a JSON object; 400 ``invalid_json`` otherwise."""
        if not self.body:
            raise HttpError(400, "invalid_json",
                            "request body must be a JSON object")
        try:
            data = json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise HttpError(400, "invalid_json",
                            "request body is not valid JSON") from None
        if not isinstance(data, dict):
            raise HttpError(400, "invalid_json",
                            "request body must be a JSON object")
        return data


def _parse_query(raw: str) -> Dict[str, str]:
    out: Dict[str, str] = {}
    for pair in raw.split("&"):
        if not pair:
            continue
        key, _, value = pair.partition("=")
        out[unquote(key)] = unquote(value)
    return out


async def read_request(reader: asyncio.StreamReader,
                       max_body: int = DEFAULT_MAX_BODY_BYTES
                       ) -> Optional[Request]:
    """Read and parse one request off the stream.

    Returns ``None`` on a clean EOF between requests (the client hung
    up a keep-alive connection); raises :class:`HttpError` on anything
    malformed. The caller creates the stream with ``limit=`` at least
    :data:`MAX_HEADER_BYTES` so oversized header blocks surface as
    ``LimitOverrunError`` here rather than unbounded buffering.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated_request",
                        "connection closed mid-request", close=True
                        ) from None
    except asyncio.LimitOverrunError:
        raise HttpError(431, "headers_too_large",
                        f"request head exceeds {MAX_HEADER_BYTES} bytes",
                        close=True) from None
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 never fails
        raise HttpError(400, "bad_request_line",
                        "undecodable request head", close=True) from None
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[0].isalpha() \
            or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, "bad_request_line",
                        f"malformed request line: {lines[0]!r}",
                        close=True)
    method, target, _version = parts
    split = urlsplit(target)
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep or not name.strip():
            raise HttpError(400, "bad_header",
                            f"malformed header line: {line!r}",
                            close=True)
        headers[name.strip().lower()] = value.strip()
    if "transfer-encoding" in headers:
        raise HttpError(501, "transfer_encoding_unsupported",
                        "chunked request bodies are not supported",
                        close=True)
    raw_length = headers.get("content-length", "0")
    if not raw_length.isdigit():
        raise HttpError(400, "bad_content_length",
                        f"Content-Length is not a number: {raw_length!r}",
                        close=True)
    length = int(raw_length)
    if length > max_body:
        raise HttpError(413, "body_too_large",
                        f"request body of {length} bytes exceeds the "
                        f"{max_body}-byte limit", close=True)
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "truncated_body",
                            "connection closed mid-body", close=True
                            ) from None
    return Request(
        method=method.upper(),
        path=unquote(split.path) or "/",
        query=_parse_query(split.query),
        headers=headers,
        body=body,
    )


def render_response(status: int, body: bytes,
                    content_type: str = "application/json",
                    close: bool = False,
                    extra_headers: Optional[Dict[str, str]] = None
                    ) -> bytes:
    """Frame one response, ``Content-Length`` included."""
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'close' if close else 'keep-alive'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body


def json_body(payload: object) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def error_body(code: str, message: str) -> bytes:
    """The structured error body: ``{"error": {"code", "message"}}``."""
    return json_body({"error": {"code": code, "message": message}})
