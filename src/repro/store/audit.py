"""Canonical state reports for checkpoint/restore verification.

The CLI's ``checkpoint`` / ``restore`` / ``replay`` commands — and the
crash-recovery tests — all answer the same question: *does this world's
end-state match that world's end-state, byte for byte?* This module
gives them one shared notion of "end-state": a plain, JSON-serialisable
dict covering every aggregate the store layer promises to preserve
(per-ad delivery counts, per-account spend and remaining budget, and
whole-world totals), rendered with sorted keys so equal states always
serialise to equal bytes.

Duck-typed on purpose: ``state_report`` accepts a
:class:`~repro.serve.sharding.ShardRouter` (aggregates across shards),
a single ``Shard``, or an ``AdPlatform`` — anything that exposes
engine/ledger pairs — without importing any of those modules, so
``repro.store`` stays dependency-free below the platform layer.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Tuple

__all__ = ["canonical_json", "state_report"]


def _engine_ledger_pairs(target: Any) -> List[Tuple[Any, Any]]:
    """Extract (delivery engine, billing ledger) pairs from ``target``."""
    shards = getattr(target, "shards", None)
    if shards is not None:
        return [(shard.engine, shard.ledger) for shard in shards]
    ledger = getattr(target, "ledger", None)
    engine = getattr(target, "engine", None) or getattr(
        target, "delivery", None)
    if engine is not None and ledger is not None:
        return [(engine, ledger)]
    raise TypeError(
        "state_report needs a router (.shards), a shard "
        "(.engine/.ledger), or a platform (.delivery/.ledger); got "
        f"{type(target).__name__}"
    )


def _charged_accounts_of(ledger: Any) -> Iterable[Any]:
    """The accounts the ledger has actually charged, in charge order.

    Deliberately *not* every account the ledger's inventory view has
    touched: a live run may lazily clone an account just to read its
    budget during an auction, and replay (which only re-applies
    committed charges) never recreates those read-only clones. Charged
    accounts, by contrast, exist — with identical budgets — on both
    paths, so they are the comparable set.
    """
    seen: Dict[str, Any] = {}
    for charge in ledger.all_charges():
        if charge.account_id not in seen:
            seen[charge.account_id] = ledger._inventory.account(
                charge.account_id)
    return list(seen.values())


def state_report(target: Any) -> Dict[str, Any]:
    """One canonical, JSON-serialisable summary of delivery + billing
    state, aggregated across however many engine/ledger pairs ``target``
    holds. Two worlds are "the same" iff their reports are equal.
    """
    ads: Dict[str, Dict[str, Any]] = {}
    accounts: Dict[str, Dict[str, float]] = {}
    total_impressions = 0
    total_clicks = 0
    total_spend = 0.0
    for engine, ledger in _engine_ledger_pairs(target):
        for impression in engine.impressions():
            row = ads.setdefault(
                impression.ad_id,
                {"impressions": 0, "clicks": 0, "reach": set(),
                 "spend": 0.0},
            )
            row["impressions"] += 1
            row["spend"] += impression.price
            row["reach"].add(impression.user_id)
            total_impressions += 1
            total_spend += impression.price
        for click in engine.clicks():
            row = ads.setdefault(
                click.ad_id,
                {"impressions": 0, "clicks": 0, "reach": set(),
                 "spend": 0.0},
            )
            row["clicks"] += 1
            total_clicks += 1
        for account in _charged_accounts_of(ledger):
            row2 = accounts.setdefault(
                account.account_id, {"spent": 0.0, "budget": 0.0})
            row2["spent"] += ledger.spend_for_account(account.account_id)
            row2["budget"] += round(account.budget, 10)
    for row in ads.values():
        row["reach"] = len(row["reach"])
        row["spend"] = round(row["spend"], 10)
    for row2 in accounts.values():
        row2["spent"] = round(row2["spent"], 10)
        row2["budget"] = round(row2["budget"], 10)
    return {
        "ads": ads,
        "accounts": accounts,
        "totals": {
            "impressions": total_impressions,
            "clicks": total_clicks,
            "spend": round(total_spend, 10),
        },
    }


def canonical_json(report: Dict[str, Any]) -> str:
    """Stable byte rendering: equal reports → equal strings."""
    return json.dumps(report, sort_keys=True, separators=(",", ":"))
