"""The state store: journal + snapshot/restore/replay coordinator.

A :class:`StateStore` is the write-ahead journal that every mutable
state owner (delivery engine, billing ledger, audience registry, shard
slot counters) routes its changes through, plus the coordinator that
turns those owners' dumps into versioned snapshots and folds journals
back onto them.

Owners implement the :class:`StateOwner` protocol and call
:meth:`StateStore.attach` at construction. The contract splits the two
mutation paths cleanly:

* **Live path** — the owner builds a change record, calls
  ``store.append(record)``, then applies it to its own structures
  (emitting obs metrics/events as a side effect of being live).
* **Replay path** — the *store* dispatches each journal record to the
  owner's ``apply_record``, which mutates state but never re-journals
  and never re-emits obs signals. Replaying a journal twice, or onto a
  restored snapshot, therefore cannot double-count anything.

Two backends: :class:`MemoryStore` (a list; zero durability, zero
overhead) and :class:`JournalStore` (append-only JSONL file — the
journaled backend whose overhead the scale bench bounds at <= 15%).
"""

from __future__ import annotations

import logging
import os
import threading
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import StoreError
from repro.obs import tracing as _tracing
from repro.obs.metrics import registry as obs_registry
from repro.store.records import ChangeRecord, decode_line, encode_line
from repro.store.snapshot import SNAPSHOT_VERSION, Snapshot

_log = logging.getLogger(__name__)

try:  # pragma: no cover - 3.8+ always has Protocol
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


@runtime_checkable
class StateOwner(Protocol):
    """What a mutable-state owner exposes to the store.

    ``store_name`` keys the owner's section in snapshots; it must be
    unique per store. ``handled_kinds`` routes journal records back to
    the owner during :meth:`StateStore.replay`.
    """

    @property
    def store_name(self) -> str: ...

    @property
    def handled_kinds(self) -> Tuple[str, ...]: ...

    def state_dump(self) -> Dict[str, object]:
        """Full JSON-safe dump of the owner's mutable state."""
        ...

    def state_load(self, state: Dict[str, object]) -> None:
        """Replace the owner's mutable state with a prior dump."""
        ...

    def apply_record(self, record: ChangeRecord) -> None:
        """Fold one journal record in, without journaling or obs."""
        ...


class StateStore:
    """Base store: owner registry + checkpoint/restore/replay logic.

    Subclasses implement the journal itself (:meth:`append`,
    :meth:`records`, :attr:`record_count`); everything that coordinates
    owners lives here so both backends share one code path.
    """

    def __init__(self) -> None:
        self._owners: Dict[str, StateOwner] = {}
        self._by_kind: Dict[str, StateOwner] = {}
        reg = obs_registry()
        self._obs_appended = reg.counter("store.records_appended")
        self._obs_checkpoints = reg.counter("store.checkpoints_taken")
        self._obs_restores = reg.counter("store.restores")
        self._obs_replayed = reg.counter("store.records_replayed")

    # -- owner registry ----------------------------------------------------

    def attach(self, owner: StateOwner) -> None:
        """Register a state owner. Name and record-kind claims must be
        unique — a clash means two owners would fight over the same
        snapshot section or journal records."""
        name = owner.store_name
        if name in self._owners:
            raise StoreError(f"a state owner named {name!r} is already "
                             f"attached to this store")
        for kind in owner.handled_kinds:
            claimed = self._by_kind.get(kind)
            if claimed is not None:
                raise StoreError(
                    f"record kind {kind!r} is already handled by "
                    f"owner {claimed.store_name!r}")
        self._owners[name] = owner
        for kind in owner.handled_kinds:
            self._by_kind[kind] = owner

    def owners(self) -> Tuple[StateOwner, ...]:
        return tuple(self._owners.values())

    # -- journal interface (backend-specific) ------------------------------

    def append(self, record: ChangeRecord) -> None:
        """Durably journal one change record (live path)."""
        raise NotImplementedError

    def records(self) -> List[ChangeRecord]:
        """The full journal, in append order."""
        raise NotImplementedError

    @property
    def record_count(self) -> int:
        """Number of records journaled so far."""
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered journal writes to the backing medium."""

    def close(self) -> None:
        """Flush and release the backing medium."""
        self.flush()

    # -- snapshot / restore / replay ---------------------------------------

    def checkpoint(self, label: str = "") -> Snapshot:
        """Dump every attached owner at the current journal position."""
        with _tracing.tracer().span("store.checkpoint", label=label):
            self.flush()
            state = {
                name: owner.state_dump()
                for name, owner in self._owners.items()
            }
            self._obs_checkpoints.inc()
            return Snapshot(
                version=SNAPSHOT_VERSION,
                journal_seq=self.record_count,
                state=state,
                label=label,
            )

    def restore(self, snapshot: Snapshot) -> None:
        """Load a snapshot into the attached owners.

        Every snapshot section must have a matching attached owner and
        vice versa — a partial restore would leave the owners mutually
        inconsistent, so a mismatch is an error, not a skip.
        """
        with _tracing.tracer().span("store.restore", label=snapshot.label):
            missing = sorted(set(snapshot.state) - set(self._owners))
            extra = sorted(set(self._owners) - set(snapshot.state))
            if missing or extra:
                raise StoreError(
                    f"snapshot/owner mismatch: snapshot-only sections "
                    f"{missing}, unattached-in-snapshot owners {extra}")
            for name, owner in self._owners.items():
                owner.state_load(dict(snapshot.state[name]))
            self._obs_restores.inc()

    def replay(self, records: Iterable[ChangeRecord]) -> int:
        """Fold journal records onto the attached owners, in order.

        Dispatches each record to the owner claiming its kind via
        ``apply_record`` — the no-journal, no-obs path — and returns
        how many records were applied. Records whose kind no attached
        owner claims are an error: silently skipping them would make
        "replay reproduced the end state" a lie.
        """
        with _tracing.tracer().span("store.replay"):
            applied = 0
            for record in records:
                owner = self._by_kind.get(record.kind)
                if owner is None:
                    raise StoreError(
                        f"no attached owner handles record kind "
                        f"{record.kind!r}")
                owner.apply_record(record)
                applied += 1
            if applied:
                self._obs_replayed.inc(applied)
            return applied


class MemoryStore(StateStore):
    """In-memory backend: the journal is a Python list.

    The default for simulations and tests — same coordination logic as
    the journaled backend, no I/O. State survives as long as the
    process does.
    """

    def __init__(self) -> None:
        super().__init__()
        self._records: List[ChangeRecord] = []

    def append(self, record: ChangeRecord) -> None:
        self._records.append(record)
        self._obs_appended.inc()

    def records(self) -> List[ChangeRecord]:
        return list(self._records)

    @property
    def record_count(self) -> int:
        return len(self._records)


class NullStore(StateStore):
    """Journal-discarding backend for bounded-memory scale runs.

    ``append`` counts the record and drops it. At the million-user tier
    a full sweep emits ~11M ``ImpressionRecorded`` records; a
    :class:`MemoryStore` would hold them all, which is exactly the
    per-impression state the compact delivery mode exists to avoid.
    Owners still attach and checkpoints still work (they dump owner
    state, not the journal) — only replay-from-journal is off the
    table, so :meth:`records` raises instead of returning an empty
    list that would make "replay reproduced the end state" a lie.

    ``discards_records`` advertises the drop to bulk producers: the
    batch sweep checks it and calls :meth:`note_discarded` with a whole
    round's impression count instead of materializing record objects
    that would be thrown away one by one.
    """

    #: Appended records are dropped — bulk writers may skip building them.
    discards_records = True

    def __init__(self) -> None:
        super().__init__()
        self._count = 0

    def append(self, record: ChangeRecord) -> None:
        self._count += 1
        self._obs_appended.inc()

    def note_discarded(self, count: int) -> None:
        """Account for ``count`` records that were never materialized.

        Keeps :attr:`record_count` and the ``store.records_appended``
        counter identical to ``count`` individual :meth:`append` calls.
        """
        if count < 0:
            raise ValueError("discarded record count cannot be negative")
        self._count += count
        self._obs_appended.inc(count)

    def records(self) -> List[ChangeRecord]:
        raise StoreError("null store discards journal records; "
                         "replay is unavailable")

    @property
    def record_count(self) -> int:
        return self._count


class JournalStore(StateStore):
    """Append-only JSONL write-ahead journal on disk.

    Each ``append`` encodes the record to one JSON line in append
    order; writes are **group-committed** — pushed to the OS every
    ``flush_every`` records rather than one syscall per append, the
    amortization that keeps the journaled backend inside its <= 15%
    overhead budget on the scale bench tier. Checkpoints, ``records()``,
    and ``close()`` always flush first, so snapshots and recovery reads
    never see a journal behind the in-memory state. ``fsync=True``
    switches to write-through + per-append fsync for durability against
    machine (not just process) crashes, at a heavy cost.

    Appends are serialized by a lock: the serving runtime's admission
    thread and shard worker can share one shard's store.
    """

    def __init__(self, path: str, fsync: bool = False,
                 flush_every: int = 64) -> None:
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        super().__init__()
        self.path = path
        self._fsync = fsync
        self._flush_every = 1 if fsync else flush_every
        self._buffer: List[ChangeRecord] = []
        self._lock = threading.Lock()
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._count = 0
        if os.path.exists(path):
            _truncate_torn_tail(path)
            with open(path, "r", encoding="utf-8") as fh:
                self._count = sum(1 for line in fh if line.strip())
        self._fh = open(path, "a", encoding="utf-8")
        self._obs_bytes = obs_registry().counter("store.journal_bytes")

    def append(self, record: ChangeRecord) -> None:
        with self._lock:
            self._buffer.append(record)
            self._count += 1
            if len(self._buffer) >= self._flush_every:
                self._commit_locked()
        self._obs_appended.inc()

    def _commit_locked(self) -> None:
        """Encode buffered records as one batch, write, and push to the
        OS. Caller holds the lock.

        Encoding happens here, not in ``append``: records are frozen
        dataclasses so deferring is safe, and a tight batch loop keeps
        the encoder's tables cache-warm instead of paying a cold encode
        in the middle of every serving slot."""
        if self._buffer:
            batch = "".join([encode_line(r) for r in self._buffer])
            self._buffer.clear()
            self._fh.write(batch)
            self._obs_bytes.inc(len(batch))
        self._fh.flush()
        if self._fsync:
            os.fsync(self._fh.fileno())

    def records(self) -> List[ChangeRecord]:
        self.flush()
        return JournalStore.read(self.path)

    @property
    def record_count(self) -> int:
        return self._count

    def flush(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._commit_locked()

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._commit_locked()
                self._fh.close()

    @staticmethod
    def read(path: str) -> List[ChangeRecord]:
        """Decode a journal file (usable without opening a store —
        recovery reads the dead shard's journal this way).

        Tolerates a **torn tail**: if the final non-blank line is
        unterminated or fails to decode — the signature of a writer
        killed mid-append — it is dropped with a warning instead of
        failing the whole recovery. The dropped suffix was never
        acknowledged (acks happen after flush writes the full line), so
        dropping it loses nothing a caller was promised. Corruption
        anywhere *before* the final line still raises
        :class:`~repro.errors.StoreError`: that is damage, not a torn
        write.
        """
        if not os.path.exists(path):
            return []
        out: List[ChangeRecord] = []
        with open(path, "r", encoding="utf-8") as fh:
            lines = [line for line in fh if line.strip()]
        for index, line in enumerate(lines):
            is_last = index == len(lines) - 1
            if is_last and not line.endswith("\n"):
                _log.warning(
                    "journal %s: dropping unterminated final line "
                    "(torn write, %d bytes)", path, len(line))
                break
            try:
                out.append(decode_line(line))
            except StoreError:
                if is_last:
                    _log.warning(
                        "journal %s: dropping undecodable final line "
                        "(torn write, %d bytes)", path, len(line))
                    break
                raise
        return out


def _truncate_torn_tail(path: str) -> None:
    """Chop an unterminated final line off a journal before reopening
    it for append.

    A writer killed mid-flush can leave a partial last line with no
    trailing newline; appending to it would weld the next record onto
    the garbage and corrupt *two* records. The partial line was never
    acknowledged (acks follow the flush that writes the newline), so
    truncating back to the last newline is lossless for every accepted
    write.
    """
    with open(path, "r+b") as fh:
        fh.seek(0, os.SEEK_END)
        size = fh.tell()
        if size == 0:
            return
        fh.seek(size - 1)
        if fh.read(1) == b"\n":
            return
        fh.seek(0)
        data = fh.read()
        keep = data.rfind(b"\n") + 1
        _log.warning(
            "journal %s: truncating torn final line before reopen "
            "(%d bytes dropped)", path, size - keep)
        fh.truncate(keep)


def open_store(path: Optional[str] = None, fsync: bool = False) -> StateStore:
    """Convenience factory: a :class:`JournalStore` when given a path,
    else a :class:`MemoryStore`."""
    if path is None:
        return MemoryStore()
    return JournalStore(path, fsync=fsync)
