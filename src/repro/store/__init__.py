"""`repro.store` — the journaled state layer.

Typed change records, an append-only write-ahead journal with in-memory
and on-disk (JSONL) backends, versioned snapshots, and deterministic
replay. Every mutable-state owner in the platform (delivery engine,
billing ledger, audience registry, shard slot counters) routes its
writes through a :class:`StateStore`; see ``docs/state.md``.
"""

from repro.store.records import (
    AudienceCreated,
    AudienceDelta,
    CampaignCreated,
    CampaignPaused,
    CapIncremented,
    ChangeRecord,
    ChargeRecorded,
    ClickRecorded,
    ImpressionRecorded,
    OrgCreated,
    RECORD_TYPES,
    SlotClaimed,
    decode_line,
    encode_line,
    record_from_dict,
    record_to_dict,
)
from repro.store.snapshot import SNAPSHOT_VERSION, Snapshot
from repro.store.store import (
    JournalStore,
    MemoryStore,
    StateOwner,
    StateStore,
    open_store,
)

__all__ = [
    "AudienceCreated",
    "AudienceDelta",
    "CampaignCreated",
    "CampaignPaused",
    "CapIncremented",
    "ChangeRecord",
    "ChargeRecorded",
    "ClickRecorded",
    "ImpressionRecorded",
    "JournalStore",
    "OrgCreated",
    "MemoryStore",
    "RECORD_TYPES",
    "SNAPSHOT_VERSION",
    "SlotClaimed",
    "Snapshot",
    "StateOwner",
    "StateStore",
    "decode_line",
    "encode_line",
    "open_store",
    "record_from_dict",
    "record_to_dict",
]
