"""Typed change records: the journal's vocabulary.

Every mutation of platform state — an impression entering a feed, a
click, a budget charge, a frequency-cap adjustment, an audience coming
into existence, a serving slot being claimed — is described by exactly
one frozen record type from this module. The records are the unit of
everything the state layer does: live mutation appends them to a
:class:`~repro.store.store.StateStore`, snapshots serialize them,
``replay()`` folds them back, and shard migration ships them between
engines. ``docs/state.md`` documents the catalog and is diffed against
:data:`RECORD_TYPES` by ``tests/store/test_docs_sync.py``.

Two of these double as the platform's own log entry types:
:class:`ImpressionRecorded` *is* ``repro.platform.delivery.Impression``
and :class:`ClickRecorded` *is* ``Click`` (re-exported under the old
names), so journaling an impression costs no second object.

Wire format: one JSON object per record, ``{"kind": ..., <fields>}``,
compact separators, one record per line (JSONL). Tuples round-trip as
JSON arrays; :func:`decode_record` converts them back.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Any, Callable, ClassVar, Dict, Tuple, Type

from repro.errors import StoreError


@dataclass(frozen=True)
class ChangeRecord:
    """Base class for journal records. Subclasses set ``kind``."""

    kind: ClassVar[str] = ""


@dataclass(frozen=True)
class ImpressionRecorded(ChangeRecord):
    """One delivered impression (also the delivery engine's log entry).

    Folding it rebuilds the impression log, the per-ad reporting views,
    the user's feed entry (the creative is re-read from the shared ad
    inventory), and the frequency-cap count for ``(ad_id, user_id)``.
    """

    kind: ClassVar[str] = "impression"

    seq: int
    ad_id: str
    account_id: str
    user_id: str
    price: float


@dataclass(frozen=True)
class ClickRecorded(ChangeRecord):
    """One ad click (also the delivery engine's click-log entry)."""

    kind: ClassVar[str] = "click"

    ad_id: str
    user_id: str
    click_seq: int


@dataclass(frozen=True)
class ChargeRecorded(ChangeRecord):
    """One billed impression: ``amount`` left ``account_id``'s budget."""

    kind: ClassVar[str] = "charge"

    ad_id: str
    account_id: str
    amount: float
    impression_seq: int


@dataclass(frozen=True)
class CapIncremented(ChangeRecord):
    """A frequency-cap count adjustment with no accompanying impression.

    Normal delivery never emits this — the cap increment is implied by
    :class:`ImpressionRecorded`. It exists for state migration: an
    imported state whose ``shown_counts`` exceed what its impressions
    imply (e.g. a hand-built export) journals the excess explicitly so
    replay still reproduces the exact cap state.
    """

    kind: ClassVar[str] = "cap_increment"

    ad_id: str
    user_id: str
    count: int


@dataclass(frozen=True)
class AudienceDelta(ChangeRecord):
    """An audience coming into existence (config + frozen membership).

    Carries everything needed to rebuild the audience without the
    original creation context: dynamic kinds (pixel, page, keyword,
    lookalike) store their resolution config, PII audiences store the
    matched member ids frozen at upload time. Folding an identical
    delta onto a registry that already holds the audience is a no-op
    (replays are idempotent); a conflicting payload for the same id is
    an error.
    """

    kind: ClassVar[str] = "audience_delta"

    audience_id: str
    owner_account_id: str
    audience_kind: str
    name: str = ""
    member_ids: Tuple[str, ...] = ()
    pixel_id: str = ""
    page_id: str = ""
    phrases: Tuple[str, ...] = ()
    seed_audience_id: str = ""
    similarity_threshold: int = 0


@dataclass(frozen=True)
class SlotClaimed(ChangeRecord):
    """A user's next ``slots`` serving-slot indices were claimed.

    Serve-layer record: slot indices key the order-independent
    competing-bid draw (:class:`repro.serve.sharding.KeyedCompetition`),
    so a recovered shard must resume each user's slot counter exactly
    where the dead shard left it — otherwise post-recovery auctions see
    different competition than an uninterrupted run.
    """

    kind: ClassVar[str] = "slot_claim"

    user_id: str
    slots: int


@dataclass(frozen=True)
class OrgCreated(ChangeRecord):
    """A gateway tenant org came into existence.

    Gateway-tenancy record: carries the platform ad-account id the org
    was given, so replaying the gateway journal onto a freshly rebuilt
    world re-creates the account and verifies the id sequence matches.
    """

    kind: ClassVar[str] = "org_created"

    org_id: str
    name: str
    account_id: str
    budget: float


@dataclass(frozen=True)
class CampaignCreated(ChangeRecord):
    """A campaign was created under a gateway org."""

    kind: ClassVar[str] = "campaign_created"

    org_id: str
    campaign_id: str
    name: str


@dataclass(frozen=True)
class CampaignPaused(ChangeRecord):
    """Every ad in a gateway org's campaign was paused."""

    kind: ClassVar[str] = "campaign_paused"

    org_id: str
    campaign_id: str


@dataclass(frozen=True)
class AudienceCreated(ChangeRecord):
    """A keyword audience was created through the gateway API.

    Distinct from :class:`AudienceDelta` (the engine-side membership
    snapshot): this is the *tenancy* fact — which org asked for which
    phrases — and replaying it re-runs the platform's audience build.
    """

    kind: ClassVar[str] = "audience_created"

    org_id: str
    audience_id: str
    name: str
    phrases: Tuple[str, ...] = ()


#: kind -> record class; the authoritative catalog (docs-sync enforced).
RECORD_TYPES: Dict[str, Type[ChangeRecord]] = {
    cls.kind: cls
    for cls in (
        ImpressionRecorded,
        ClickRecorded,
        ChargeRecorded,
        CapIncremented,
        AudienceDelta,
        SlotClaimed,
        OrgCreated,
        CampaignCreated,
        CampaignPaused,
        AudienceCreated,
    )
}

#: Per-class field-name tuples, resolved once (record_to_dict hot path).
_FIELDS: Dict[Type[ChangeRecord], Tuple[str, ...]] = {
    cls: tuple(f.name for f in fields(cls))
    for cls in RECORD_TYPES.values()
}

#: One shared compact encoder: ``json.dumps(..., separators=...)``
#: builds a fresh JSONEncoder per call, which is most of the encode
#: cost on the journal's append path.
_ENCODE = json.JSONEncoder(separators=(",", ":")).encode

#: Per-class line prefix '{"kind":"<kind>",' — lets encode_line emit
#: kind-first without building a merged dict per record.
_PREFIXES: Dict[Type[ChangeRecord], str] = {
    cls: '{"kind":%s,' % _ENCODE(kind)
    for kind, cls in RECORD_TYPES.items()
}

# Hand-rolled encoders for the kinds delivery emits on every single
# impression — these dominate the journal's append cost, and skipping
# the generic dict walk is ~3x faster. ``_esc`` is the same C string
# escaper json.dumps uses and ``float.__repr__`` is json's float
# formatter, so the output is byte-identical to the generic path
# (pinned by a test). Rare kinds (audience deltas, cap fixups) stay on
# the generic encoder.
_esc = json.encoder.encode_basestring_ascii
_float = float.__repr__


def _encode_impression(r: "ImpressionRecorded") -> str:
    return (f'{{"kind":"impression","seq":{r.seq},"ad_id":{_esc(r.ad_id)},'
            f'"account_id":{_esc(r.account_id)},"user_id":{_esc(r.user_id)},'
            f'"price":{_float(r.price)}}}\n')


def _encode_click(r: "ClickRecorded") -> str:
    return (f'{{"kind":"click","ad_id":{_esc(r.ad_id)},'
            f'"user_id":{_esc(r.user_id)},"click_seq":{r.click_seq}}}\n')


def _encode_charge(r: "ChargeRecorded") -> str:
    return (f'{{"kind":"charge","ad_id":{_esc(r.ad_id)},'
            f'"account_id":{_esc(r.account_id)},"amount":{_float(r.amount)},'
            f'"impression_seq":{r.impression_seq}}}\n')


def _encode_slot_claim(r: "SlotClaimed") -> str:
    return f'{{"kind":"slot_claim","user_id":{_esc(r.user_id)},"slots":{r.slots}}}\n'


_FAST_ENCODERS: Dict[Type[ChangeRecord], Callable[[Any], str]] = {
    ImpressionRecorded: _encode_impression,
    ClickRecorded: _encode_click,
    ChargeRecorded: _encode_charge,
    SlotClaimed: _encode_slot_claim,
}


def record_to_dict(record: ChangeRecord) -> Dict[str, Any]:
    """JSON-safe dict form, ``kind`` first. Tuples stay tuples (json
    serializes them as arrays)."""
    names = _FIELDS.get(type(record))
    if names is None:
        raise StoreError(
            f"unregistered record type {type(record).__name__}"
        )
    out: Dict[str, Any] = {"kind": record.kind}
    for name in names:
        out[name] = getattr(record, name)
    return out


def record_from_dict(data: Dict[str, Any]) -> ChangeRecord:
    """Rebuild a record from its dict form (inverse of
    :func:`record_to_dict`); JSON arrays become tuples."""
    payload = dict(data)
    kind = payload.pop("kind", None)
    cls = RECORD_TYPES.get(kind)  # type: ignore[arg-type]
    if cls is None:
        raise StoreError(f"unknown record kind {kind!r}")
    for key, value in payload.items():
        if isinstance(value, list):
            payload[key] = tuple(value)
    try:
        return cls(**payload)
    except TypeError as exc:
        raise StoreError(f"malformed {kind!r} record: {exc}") from None


def encode_line(record: ChangeRecord) -> str:
    """One JSONL line (newline included) for the journal.

    Per-impression kinds take a hand-rolled formatter; everything else
    encodes the dataclass ``__dict__`` (declaration order, matching
    :func:`record_to_dict`) behind a precomputed ``kind`` prefix. Both
    paths produce identical bytes.
    """
    fast = _FAST_ENCODERS.get(type(record))
    if fast is not None:
        return fast(record)
    prefix = _PREFIXES.get(type(record))
    if prefix is None:
        raise StoreError(
            f"unregistered record type {type(record).__name__}"
        )
    body = _ENCODE(record.__dict__)
    if body == "{}":  # no fields beyond kind (not the case today)
        return prefix[:-1] + "}\n"
    return prefix + body[1:] + "\n"


def decode_line(line: str) -> ChangeRecord:
    """Parse one journal line back into its record."""
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise StoreError(f"corrupt journal line: {exc}") from None
    if not isinstance(data, dict):
        raise StoreError("corrupt journal line: not a JSON object")
    return record_from_dict(data)
