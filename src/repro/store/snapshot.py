"""Versioned state snapshots.

A :class:`Snapshot` is the full dump of every state owner attached to a
store at one journal position: ``state`` maps owner name (``delivery``,
``billing``, ``audiences``, ``shard``) to that owner's JSON-safe
``state_dump()``, and ``journal_seq`` records how many journal records
the snapshot already contains — ``replay()`` of the journal suffix
``records[journal_seq:]`` onto a restored snapshot reproduces the live
end state exactly.

Serialization is canonical (sorted keys), so two snapshots of equal
state are byte-identical — the property the round-trip and crash-
recovery tests pin. The format is versioned; loading a snapshot written
by an incompatible layout raises :class:`~repro.errors.StoreError`
instead of silently misreading it.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict

from repro.errors import StoreError

#: Bump when the snapshot layout changes incompatibly.
SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class Snapshot:
    """A versioned, canonical dump of all attached owners' state."""

    version: int
    journal_seq: int
    state: Dict[str, Dict[str, Any]]
    label: str = ""

    def to_json(self) -> str:
        """Canonical JSON form: sorted keys, so equal state is
        byte-identical."""
        return json.dumps(
            {
                "version": self.version,
                "journal_seq": self.journal_seq,
                "label": self.label,
                "state": self.state,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    @staticmethod
    def from_json(text: str) -> "Snapshot":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise StoreError(f"corrupt snapshot: {exc}") from None
        if not isinstance(data, dict):
            raise StoreError("corrupt snapshot: not a JSON object")
        version = data.get("version")
        if version != SNAPSHOT_VERSION:
            raise StoreError(
                f"snapshot version {version!r} is not supported "
                f"(expected {SNAPSHOT_VERSION})"
            )
        journal_seq = data.get("journal_seq")
        state = data.get("state")
        if not isinstance(journal_seq, int) or journal_seq < 0:
            raise StoreError("corrupt snapshot: bad journal_seq")
        if not isinstance(state, dict):
            raise StoreError("corrupt snapshot: bad state section")
        return Snapshot(
            version=version,
            journal_seq=journal_seq,
            state=state,
            label=str(data.get("label", "")),
        )

    @staticmethod
    def load(path: str) -> "Snapshot":
        if not os.path.exists(path):
            raise StoreError(f"no snapshot at {path}")
        with open(path, "r", encoding="utf-8") as fh:
            return Snapshot.from_json(fh.read())
