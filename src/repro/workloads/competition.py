"""Competing-demand models for the impression auction.

The paper's cost and delivery reasoning assumes a market where the
platform's recommended $2 CPM bid wins a typical US impression and a 5x
elevated bid ($10 CPM) wins essentially always (section 3.1). The models
here generate the "strongest competing bid" per impression that
:func:`repro.platform.auction.run_auction` prices against.

All factories return a nullary draw function (dollars **per impression**)
over a private seeded RNG, so platforms and benchmarks get reproducible
yet realistic-looking bid streams.
"""

from __future__ import annotations

import math
import random
from typing import Callable, List, Sequence, Tuple

CompetingBidDraw = Callable[[], float]


def lognormal_competition(
    median_cpm: float = 2.0,
    sigma: float = 0.5,
    seed: int = 7,
) -> CompetingBidDraw:
    """Log-normal competing bids with a given *median* CPM.

    The canonical calibration: median $2 CPM makes the recommended bid the
    break-even point, reproducing the paper's "typical recommended bid"
    framing.
    """
    rng = random.Random(seed)
    mu = math.log(median_cpm / 1000.0)

    def draw() -> float:
        return rng.lognormvariate(mu, sigma)

    return draw


def fixed_competition(cpm: float) -> CompetingBidDraw:
    """Deterministic competition — unit tests use this."""
    price = cpm / 1000.0

    def draw() -> float:
        return price

    # Advertise determinism: the batch sweep and its parallel partitioner
    # (repro.platform.parsweep) can vectorize pricing — and certify that
    # budgets cannot flip mid-round — only for draws whose every value is
    # a known constant.
    draw.constant = price  # type: ignore[attr-defined]
    return draw


def zero_competition() -> CompetingBidDraw:
    """No ambient demand: every eligible ad wins at the floor/runner-up.

    Matches the paper's validation economics — "the above ads had zero
    cost since too few users were reached" — when paired with a zero
    floor.
    """

    def draw() -> float:
        return 0.0

    draw.constant = 0.0  # type: ignore[attr-defined]
    return draw


def peak_offpeak_competition(
    offpeak_median_cpm: float = 1.2,
    peak_median_cpm: float = 4.0,
    peak_fraction: float = 0.3,
    sigma: float = 0.4,
    seed: int = 11,
) -> CompetingBidDraw:
    """A two-regime market: most slots off-peak, some in a pricier peak.

    Used by the bid-cap ablation to show the $10 CPM elevation also rides
    out demand spikes, not just the median market.
    """
    rng = random.Random(seed)
    mu_off = math.log(offpeak_median_cpm / 1000.0)
    mu_peak = math.log(peak_median_cpm / 1000.0)

    def draw() -> float:
        mu = mu_peak if rng.random() < peak_fraction else mu_off
        return rng.lognormvariate(mu, sigma)

    return draw


def win_rate(
    bid_cpm: float,
    draw: CompetingBidDraw,
    trials: int = 20_000,
) -> float:
    """Empirical probability a lone bid beats the competition."""
    bid = bid_cpm / 1000.0
    wins = sum(1 for _ in range(trials) if bid > draw())
    return wins / trials


def win_rate_curve(
    bids_cpm: Sequence[float],
    draw_factory: Callable[[], CompetingBidDraw],
    trials: int = 20_000,
) -> List[Tuple[float, float]]:
    """(bid, win rate) points; each bid gets a fresh identically-seeded
    draw so the curve is monotone up to sampling noise."""
    return [
        (bid, win_rate(bid, draw_factory(), trials=trials))
        for bid in bids_cpm
    ]
