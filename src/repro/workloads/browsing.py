"""Browsing-session generation.

"Users see these Treads while browsing normally" (paper section 3.1) —
this module supplies the "normally": each user gets a heavy-tailed number
of ad slots per simulated day, so light and heavy browsers coexist and a
Tread campaign's time-to-coverage depends on user activity, not just on
auction wins.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.platform.delivery import DeliveryStats
from repro.platform.platform import AdPlatform
from repro.platform.users import UserProfile


@dataclass(frozen=True)
class BrowsingModel:
    """How many ad slots a user's daily browsing exposes.

    Slots are geometric with mean ``mean_slots`` (heavy-tailed enough for
    the purpose), floored at ``min_slots``. ``heavy_user_fraction`` of
    draws are multiplied by ``heavy_multiplier`` to model the long tail of
    very active users.
    """

    mean_slots: float = 20.0
    min_slots: int = 1
    heavy_user_fraction: float = 0.1
    heavy_multiplier: int = 4

    def slots_for(self, rng: random.Random) -> int:
        if self.mean_slots <= 0:
            return self.min_slots
        p = 1.0 / (1.0 + self.mean_slots)
        slots = 0
        while rng.random() > p:
            slots += 1
            if slots > 50 * self.mean_slots:
                break  # geometric tail guard
        if rng.random() < self.heavy_user_fraction:
            slots *= self.heavy_multiplier
        return max(self.min_slots, slots)


@dataclass
class BrowsingDay:
    """Result of simulating one day of browsing."""

    stats: DeliveryStats
    slots_by_user: Dict[str, int] = field(default_factory=dict)


def simulate_day(
    platform: AdPlatform,
    users: Sequence[UserProfile],
    model: Optional[BrowsingModel] = None,
    seed: int = 99,
) -> BrowsingDay:
    """One day: every user browses, each slot runs an auction."""
    model = model or BrowsingModel()
    rng = random.Random(seed)
    stats = DeliveryStats()
    slots_by_user: Dict[str, int] = {}
    for user in users:
        slots = model.slots_for(rng)
        slots_by_user[user.user_id] = slots
        for _ in range(slots):
            outcome = platform.delivery.serve_slot(user)
            stats.slots += 1
            if outcome.won:
                stats.filled_by_tracked_ads += 1
    return BrowsingDay(stats=stats, slots_by_user=slots_by_user)


def days_until_coverage(
    platform: AdPlatform,
    users: Sequence[UserProfile],
    expected_impressions: int,
    model: Optional[BrowsingModel] = None,
    seed: int = 99,
    max_days: int = 60,
) -> int:
    """Simulated days until the campaign has delivered
    ``expected_impressions`` tracked impressions (or ``max_days``)."""
    delivered = 0
    for day in range(1, max_days + 1):
        result = simulate_day(platform, users, model, seed=seed + day)
        delivered += result.stats.filled_by_tracked_ads
        if delivered >= expected_impressions:
            return day
    return max_days
