"""User personas: archetypes controlling profile and broker coverage.

The paper's validation outcome hinged on persona differences: the author
with a long U.S. consumer history received eleven partner-category Treads
(net worth, restaurant and apparel purchases, job role, home type, likely
auto purchase); the author who "has only been in the U.S. for over a year"
received none — data brokers simply had no record of him (section 3.1).

A :class:`Persona` captures exactly the knobs that produce such outcomes:
demographics, how many platform attributes the user accrues, the
probability data brokers hold a record on them, and — when they do — how
many partner attributes of which families the record carries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: Partner-attribute id prefixes (see :mod:`repro.platform.catalog`).
NETWORTH = "pc-networth"
INCOME = "pc-income"
CREDIT = "pc-credit"
RESTAURANTS = "pc-restaurants"
APPAREL = "pc-apparel"
GROCERY = "pc-grocery"
JOB_ROLE = "pc-jobrole"
HOME_TYPE = "pc-hometype"
HOME_VALUE = "pc-homevalue"
AUTO_INTENT = "pc-autointent"
AUTO_BRAND = "pc-autobrand"
CHARITY = "pc-charity"
TRAVEL = "pc-travel"
SEGMENTS = "pc-segment"


@dataclass(frozen=True)
class Persona:
    """One user archetype.

    ``partner_families`` lists the partner-attribute id prefixes a broker
    record for this persona draws from first (topped up from the generic
    segments); ``broker_coverage`` is the probability brokers hold any
    record at all.
    """

    name: str
    age_range: Tuple[int, int]
    genders: Tuple[str, ...]
    platform_attr_range: Tuple[int, int]
    partner_attr_range: Tuple[int, int]
    broker_coverage: float
    partner_families: Tuple[str, ...]
    pii_kinds: Tuple[str, ...] = ("email", "phone")

    def __post_init__(self) -> None:
        if not 0.0 <= self.broker_coverage <= 1.0:
            raise ValueError("broker_coverage must be a probability")
        if self.age_range[0] > self.age_range[1]:
            raise ValueError("age range inverted")


#: The paper's profiled author archetype: long U.S. residence, rich
#: offline consumer footprint, exactly the attribute families the
#: validation revealed.
ESTABLISHED_PROFESSIONAL = Persona(
    name="established_professional",
    age_range=(32, 55),
    genders=("male", "female"),
    platform_attr_range=(12, 30),
    partner_attr_range=(9, 14),
    broker_coverage=1.0,
    partner_families=(
        NETWORTH, RESTAURANTS, APPAREL, JOB_ROLE, HOME_TYPE,
        AUTO_INTENT, INCOME, CREDIT,
    ),
)

#: The paper's unprofiled author archetype: "a graduate student who has
#: only been in the U.S. for over a year" — zero broker coverage.
RECENT_ARRIVAL_GRAD_STUDENT = Persona(
    name="recent_arrival_grad_student",
    age_range=(23, 30),
    genders=("male", "female"),
    platform_attr_range=(6, 16),
    partner_attr_range=(0, 0),
    broker_coverage=0.0,
    partner_families=(),
)

AVERAGE_CONSUMER = Persona(
    name="average_consumer",
    age_range=(21, 64),
    genders=("male", "female", "unknown"),
    platform_attr_range=(8, 20),
    partner_attr_range=(3, 10),
    broker_coverage=0.85,
    partner_families=(
        RESTAURANTS, APPAREL, GROCERY, INCOME, TRAVEL, SEGMENTS,
    ),
)

PRIVACY_MINIMALIST = Persona(
    name="privacy_minimalist",
    age_range=(25, 50),
    genders=("male", "female", "unknown"),
    platform_attr_range=(2, 6),
    partner_attr_range=(0, 3),
    broker_coverage=0.3,
    partner_families=(SEGMENTS,),
    pii_kinds=("email",),
)

RETIREE = Persona(
    name="retiree",
    age_range=(65, 85),
    genders=("male", "female"),
    platform_attr_range=(5, 12),
    partner_attr_range=(6, 12),
    broker_coverage=0.95,
    partner_families=(
        NETWORTH, HOME_VALUE, HOME_TYPE, CHARITY, TRAVEL, CREDIT,
    ),
)

YOUNG_PARENT = Persona(
    name="young_parent",
    age_range=(26, 40),
    genders=("male", "female"),
    platform_attr_range=(10, 22),
    partner_attr_range=(4, 9),
    broker_coverage=0.9,
    partner_families=(
        GROCERY, APPAREL, AUTO_INTENT, INCOME, HOME_TYPE, SEGMENTS,
    ),
)

PERSONAS: Tuple[Persona, ...] = (
    ESTABLISHED_PROFESSIONAL,
    RECENT_ARRIVAL_GRAD_STUDENT,
    AVERAGE_CONSUMER,
    PRIVACY_MINIMALIST,
    RETIREE,
    YOUNG_PARENT,
)
