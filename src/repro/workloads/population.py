"""Population generation: personas -> platform users + broker records.

The builder creates platform users from personas, attaches synthetic PII,
sets platform-computed attributes directly (the platform "computes" them
from activity, which the simulation abstracts), and writes data-broker
records keyed by the same PII. Calling :meth:`PopulationBuilder.finalize`
runs the broker ingest pipeline, which PII-matches records onto users and
sets their partner attributes — the exact pipeline the paper's Treads make
visible.

Everything is driven by one seeded ``random.Random``, so populations are
reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.platform.attributes import Attribute, AttributeKind
from repro.platform.databroker import IngestReport
from repro.platform.platform import AdPlatform
from repro.platform.users import UserProfile
from repro.workloads.personas import Persona

_ZIP_POOL = tuple(f"{z:05d}" for z in range(10001, 10051))


@dataclass
class PopulationBuilder:
    """Builds a persona-mixed population on one platform."""

    platform: AdPlatform
    seed: int = 42
    broker_name: str = "Acxiom"

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._record_counter = 0
        #: user_id -> persona name (simulation-level ground truth).
        self.persona_of: Dict[str, str] = {}

    # ------------------------------------------------------------------

    def spawn(self, persona: Persona, count: int = 1) -> List[UserProfile]:
        """Create ``count`` users of one persona (broker records staged,
        not yet ingested — call :meth:`finalize`)."""
        users = []
        for _ in range(count):
            users.append(self._spawn_one(persona))
        return users

    def spawn_mix(
        self,
        personas: Sequence[Persona],
        count: int,
        weights: Optional[Sequence[float]] = None,
    ) -> List[UserProfile]:
        """Create ``count`` users drawn from a persona mix."""
        chosen = self._rng.choices(
            list(personas), weights=list(weights) if weights else None,
            k=count,
        )
        return [self._spawn_one(persona) for persona in chosen]

    def spawn_stream(
        self,
        personas: Sequence[Persona],
        count: int,
        weights: Optional[Sequence[float]] = None,
        chunk_size: int = 10_000,
        track_personas: bool = False,
    ) -> Iterator[List[str]]:
        """Create ``count`` users from a persona mix, yielding user-id
        chunks instead of materializing profile objects.

        This is the bounded-memory path for million-user populations:
        each chunk holds ``chunk_size`` id strings, never a list of
        profiles, and persona ground truth is skipped unless
        ``track_personas`` is set (a million-entry ``persona_of`` dict
        defeats the point). Against a columnar user store the per-user
        cost is one appended row; the flyweight views created along the
        way are garbage the moment the chunk is yielded.

        The population is deterministic in ``(seed, chunk_size)``. It
        matches ``spawn_mix`` exactly when one chunk covers the whole
        count; smaller chunks interleave the persona draws and per-user
        draws differently, which reorders the RNG stream (still
        reproducible, just not draw-for-draw identical to the batch
        path).
        """
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        pool = list(personas)
        weight_list = list(weights) if weights else None
        remaining = count
        while remaining > 0:
            take = min(chunk_size, remaining)
            chosen = self._rng.choices(pool, weights=weight_list, k=take)
            chunk = []
            for persona in chosen:
                user = self._spawn_one(persona, track=track_personas)
                chunk.append(user.user_id)
            yield chunk
            remaining -= take

    def finalize(self) -> List[IngestReport]:
        """Run the broker ingest pipeline; returns per-broker reports."""
        return self.platform.ingest_brokers()

    # ------------------------------------------------------------------

    def _spawn_one(self, persona: Persona,
                   track: bool = True) -> UserProfile:
        rng = self._rng
        user = self.platform.register_user(
            country=self.platform.config.country,
            age=rng.randint(*persona.age_range),
            gender=rng.choice(persona.genders),
            zip_code=rng.choice(_ZIP_POOL),
        )
        if track:
            self.persona_of[user.user_id] = persona.name
        pii = self._attach_pii(user, persona)
        self._set_platform_attributes(user, persona)
        if rng.random() < persona.broker_coverage:
            self._stage_broker_record(user, persona, pii)
        return user

    def _attach_pii(
        self, user: UserProfile, persona: Persona
    ) -> List[Tuple[str, str]]:
        """Synthesize raw PII and register it with the platform.

        The raw values are derived from the user id, so tests can
        re-derive them; the platform stores only hashes.
        """
        suffix = user.user_id.rsplit("-", 1)[-1]
        raw_values = {
            "email": f"user{suffix}@example.com",
            "phone": f"+1617555{int(suffix) % 10000:04d}",
            "first_name": f"First{suffix}",
            "last_name": f"Last{suffix}",
            "zip": user.zip_code,
        }
        attached = []
        for kind in persona.pii_kinds:
            value = raw_values[kind]
            self.platform.users.attach_pii(user.user_id, kind, value)
            attached.append((kind, value))
        return attached

    def _set_platform_attributes(self, user: UserProfile,
                                 persona: Persona) -> None:
        rng = self._rng
        catalog = self.platform.catalog
        binary_pool = [
            attribute
            for attribute in catalog.platform_attributes(user.country)
            if attribute.kind is AttributeKind.BINARY
        ]
        count = rng.randint(*persona.platform_attr_range)
        count = min(count, len(binary_pool))
        for attribute in rng.sample(binary_pool, count):
            user.set_attribute(attribute)
        for attribute in catalog.multi_attributes(user.country):
            user.set_attribute(attribute, rng.choice(attribute.values))

    def _stage_broker_record(
        self,
        user: UserProfile,
        persona: Persona,
        pii: List[Tuple[str, str]],
    ) -> None:
        """Write one broker record carrying this persona's partner attrs."""
        rng = self._rng
        count = rng.randint(*persona.partner_attr_range)
        if count == 0 or not pii:
            return
        chosen = self._choose_partner_attributes(user, persona, count)
        if not chosen:
            return
        broker = self.platform.brokers.broker(self.broker_name)
        self._record_counter += 1
        broker.add_record(
            record_id=f"rec-{self.seed}-{self._record_counter:06d}",
            raw_pii=pii,
            attributes=[(attribute.attr_id, None) for attribute in chosen],
        )

    def _choose_partner_attributes(
        self, user: UserProfile, persona: Persona, count: int
    ) -> List[Attribute]:
        """Prefer the persona's families; avoid contradictory picks within
        one exclusive family (one net-worth band, not three)."""
        rng = self._rng
        catalog = self.platform.catalog
        partner_pool = catalog.partner_attributes(user.country)
        preferred = [
            attribute for attribute in partner_pool
            if any(attribute.attr_id.startswith(prefix)
                   for prefix in persona.partner_families)
        ]
        rest = [a for a in partner_pool if a not in preferred]
        rng.shuffle(preferred)
        rng.shuffle(rest)
        chosen: List[Attribute] = []
        used_exclusive: set = set()
        for attribute in preferred + rest:
            if len(chosen) >= count:
                break
            family = _exclusive_family(attribute.attr_id)
            if family is not None:
                if family in used_exclusive:
                    continue
                used_exclusive.add(family)
            chosen.append(attribute)
        return chosen


#: Families where a consumer realistically holds exactly one value.
_EXCLUSIVE_FAMILIES = ("pc-networth", "pc-income", "pc-hometype",
                       "pc-homevalue", "pc-jobrole")


def _exclusive_family(attr_id: str) -> Optional[str]:
    for family in _EXCLUSIVE_FAMILIES:
        if attr_id.startswith(family):
            return family
    return None


def ground_truth_partner_attrs(
    platform: AdPlatform, user_ids: Sequence[str]
) -> Dict[str, set]:
    """Simulation-level ground truth: user_id -> set partner attr ids.

    Used only for scoring reveals — never by any provider/advertiser code.
    """
    partner_ids = {
        attribute.attr_id
        for attribute in platform.catalog.partner_attributes()
    }
    truth: Dict[str, set] = {}
    for user_id in user_ids:
        profile = platform.users.get(user_id)
        truth[user_id] = set(profile.binary_attrs) & partner_ids
    return truth
