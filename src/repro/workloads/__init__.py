"""Synthetic workloads: users, brokers feeds, browsing, and competition.

The paper's validation ran against two real people — one with a rich
data-broker footprint and one (a recently arrived graduate student)
without. :mod:`~repro.workloads.personas` encodes such archetypes;
:mod:`~repro.workloads.population` turns them into platform users, PII,
and broker records; :mod:`~repro.workloads.browsing` generates ad-slot
traffic; :mod:`~repro.workloads.competition` models the ambient bid
pressure the paper's $2-CPM-default / $10-CPM-elevated reasoning assumes.
"""

from repro.workloads.personas import (
    AVERAGE_CONSUMER,
    ESTABLISHED_PROFESSIONAL,
    PERSONAS,
    PRIVACY_MINIMALIST,
    RECENT_ARRIVAL_GRAD_STUDENT,
    RETIREE,
    YOUNG_PARENT,
    Persona,
)
from repro.workloads.population import PopulationBuilder

__all__ = [
    "AVERAGE_CONSUMER",
    "ESTABLISHED_PROFESSIONAL",
    "PERSONAS",
    "PRIVACY_MINIMALIST",
    "RECENT_ARRIVAL_GRAD_STUDENT",
    "RETIREE",
    "YOUNG_PARENT",
    "Persona",
    "PopulationBuilder",
]
