"""Reproduction of "Treads: Transparency-Enhancing Ads" (HotNets 2018).

Treads are targeted advertisements whose content reveals their own
targeting to the users who receive them, turning an ad platform's
deliver-iff-match contract into a transparency channel: a *transparency
provider* signs up as an ordinary advertiser, lets users opt in, and runs
one Tread per targeting attribute — each user learns exactly the
attributes the platform holds on them, while the provider learns only
aggregate reach counts.

The original evaluation ran on Facebook's live ad platform; this
reproduction supplies a full simulated substrate
(:mod:`repro.platform`) implementing the same behavioural contract —
profiles, data brokers, boolean targeting, PII/pixel/page audiences,
second-price CPM auctions, thresholded reporting, and ToS review — and
builds the paper's contribution (:mod:`repro.core`), baselines
(:mod:`repro.baselines`), and workloads (:mod:`repro.workloads`) on top.

Quickstart::

    from repro import AdPlatform, TransparencyProvider, TreadClient, WebDirectory

    platform = AdPlatform()
    web = WebDirectory()
    user = platform.register_user()
    user.set_attribute(platform.catalog.get("pc-networth-006"))

    provider = TransparencyProvider(platform, web, budget=100.0)
    provider.optin.via_page_like(user.user_id)
    provider.launch_partner_sweep()
    provider.run_delivery()

    client = TreadClient(user.user_id, platform, provider.publish_decode_pack())
    print(client.sync().set_attributes)  # {'pc-networth-006'}
"""

import logging as _logging

# Library convention: "repro.*" loggers are silent unless the embedding
# application (or the CLI's -v flag) configures handlers.
_logging.getLogger("repro").addHandler(_logging.NullHandler())

from repro.core.client import TreadClient
from repro.core.codebook import Codebook
from repro.core.provider import TransparencyProvider
from repro.core.scheduler import PacedCampaignRunner
from repro.core.treads import Encoding, Placement, RevealKind, RevealPayload, Tread
from repro.platform.platform import AdPlatform, PlatformConfig
from repro.platform.web import WebDirectory
from repro.serve import (
    AdRequest,
    AdResponse,
    LoadConfig,
    LoadGenerator,
    RuntimeConfig,
    ServeResult,
    ServeStatus,
    ServingRuntime,
    ShardRouter,
)
from repro.store import (
    JournalStore,
    MemoryStore,
    Snapshot,
    StateStore,
)

__version__ = "1.0.0"

__all__ = [
    "AdPlatform",
    "AdRequest",
    "AdResponse",
    "Codebook",
    "PacedCampaignRunner",
    "Encoding",
    "JournalStore",
    "LoadConfig",
    "LoadGenerator",
    "MemoryStore",
    "Placement",
    "PlatformConfig",
    "RevealKind",
    "RevealPayload",
    "RuntimeConfig",
    "ServeResult",
    "ServeStatus",
    "ServingRuntime",
    "ShardRouter",
    "Snapshot",
    "StateStore",
    "Tread",
    "TreadClient",
    "TransparencyProvider",
    "WebDirectory",
    "__version__",
]
