"""Lightweight span tracing for the delivery path.

``with trace.span("serve_slot", user_id=...):`` times a region on the
monotonic clock and records it as a :class:`Span` with parent/child
nesting (spans opened inside an open span point at it). The default
process tracer is a :class:`NullTracer` — tracing is opt-in, unlike
metrics — so library code guards per-slot spans with ``tracer.enabled``
and pays one attribute read when tracing is off.

Finished spans accumulate on the tracer and serialize to JSONL
(``--trace-out`` on the CLI); records carry start offsets relative to
the tracer's epoch, so two spans from one tracer order and nest
correctly even though the monotonic clock has no wall-time meaning.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, IO, Iterator, List, Optional, Tuple

#: Schema tag on every span record, bumped with the record shape.
SPAN_SCHEMA = 1


@dataclass
class Span:
    """One timed region; ``duration_s`` is monotonic-clock elapsed."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start_s: float
    end_s: Optional[float] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.end_s is not None

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end_s - self.start_s

    def record(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "kind": "span",
            "schema": SPAN_SCHEMA,
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
        }
        if self.attrs:
            data["attrs"] = self.attrs
        return data


class Tracer:
    """Collects spans; one instance per traced run (or process).

    Not thread-safe: the span stack is a plain list, matching the
    synchronous simulator. ``spans`` holds finished spans in completion
    order (children before parents — standard for tracers, since a
    parent finishes last).
    """

    enabled = True

    def __init__(self) -> None:
        self._epoch = perf_counter()
        self._next_id = 1
        self._stack: List[Span] = []
        self.spans: List[Span] = []

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        current = Span(
            name=name,
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            start_s=perf_counter() - self._epoch,
            attrs=attrs,
        )
        self._next_id += 1
        self._stack.append(current)
        try:
            yield current
        finally:
            current.end_s = perf_counter() - self._epoch
            self._stack.pop()
            self.spans.append(current)

    @property
    def open_depth(self) -> int:
        return len(self._stack)

    def find(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def to_jsonl(self) -> str:
        return "".join(
            json.dumps(span.record()) + "\n" for span in self.spans
        )

    def write_jsonl(self, stream: IO[str]) -> int:
        """Write finished spans to ``stream``; returns the span count."""
        stream.write(self.to_jsonl())
        return len(self.spans)


class _NullSpanContext:
    """Reusable inert context manager (no allocation per use)."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpanContext()


class NullTracer:
    """Tracing disabled: ``span`` hands back one shared inert context."""

    enabled = False
    spans: Tuple[Span, ...] = ()

    def span(self, name: str, **attrs: object) -> _NullSpanContext:
        return _NULL_SPAN

    def to_jsonl(self) -> str:
        return ""


NULL_TRACER = NullTracer()

_current = NULL_TRACER


def tracer():
    """The current process-wide tracer (a no-op unless one is set)."""
    return _current


def set_tracer(new) -> object:
    """Swap the process-wide tracer; returns the previous one."""
    global _current
    previous = _current
    _current = new
    return previous


@contextmanager
def use_tracer(new) -> Iterator[object]:
    """Scope a tracer swap: ``with use_tracer(Tracer()) as t: ...``."""
    previous = set_tracer(new)
    try:
        yield new
    finally:
        set_tracer(previous)


def load_jsonl_spans(text: str) -> List[Span]:
    """Parse ``Tracer.to_jsonl`` output back into :class:`Span` objects."""
    spans: List[Span] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if record.get("kind") != "span":
            raise ValueError(f"not a span record: {record!r}")
        if record.get("schema") != SPAN_SCHEMA:
            raise ValueError(
                f"unsupported span schema {record.get('schema')!r}"
            )
        span = Span(
            name=record["name"],
            span_id=record["span_id"],
            parent_id=record["parent_id"],
            start_s=record["start_s"],
            end_s=record["start_s"] + record["duration_s"],
            attrs=record.get("attrs", {}),
        )
        spans.append(span)
    return spans
