"""Distributed span tracing for the delivery and serving paths.

``with trace.span("serve_slot", user_id=...):`` times a region on the
monotonic clock and records it as a :class:`Span` with parent/child
nesting (spans opened inside an open span point at it). The default
process tracer is a :class:`NullTracer` — tracing is opt-in, unlike
metrics — so library code guards per-request spans with
``tracer.enabled`` and pays one attribute read when tracing is off.

The tracer is **thread-safe**: every thread gets its own span stack
(``threading.local``), so concurrent serving workers nest their spans
independently and never cross-link parents, while id allocation and the
finished-span list share one lock. Spans can also cross threads and
processes explicitly:

* :meth:`Tracer.begin_span` / :meth:`Tracer.finish_span` manage a span
  whose lifetime straddles threads (a request admitted on one thread
  and resolved on another) without touching any stack;
* :meth:`Tracer.record_span` writes an already-elapsed region (queue
  wait, measured at dequeue time) directly;
* a :class:`SpanContext` — ``(trace_id, span_id)`` — travels in IPC
  frames so a worker process parents its spans under the submitting
  process's request span, and :meth:`Tracer.adopt` folds the worker's
  finished spans back into the parent tracer.

Cross-process alignment: a tracer's epoch is a raw ``perf_counter``
reading, and ``CLOCK_MONOTONIC`` is system-wide, so a forked worker
constructs its tracer with the parent's ``epoch_raw`` and both sides
emit offsets on one shared timeline. Span ids are ``(origin << 40) |
seq`` — give each worker a distinct ``origin`` and ids never collide
across the merge.

Finished spans accumulate on the tracer and serialize to JSONL
(``--trace-out`` on the CLI) or to the Chrome trace-event JSON array
format (``--trace-format chrome``; load it in ``chrome://tracing`` or
https://ui.perfetto.dev).
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import (
    Dict,
    IO,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Tuple,
    Union,
)

#: Schema tag on every span record. Bumped to 2 when spans grew
#: ``trace_id``/``origin``/``tid`` (all optional; schema-1 records
#: still load).
SPAN_SCHEMA = 2

#: Span-id layout: the low 40 bits are a per-tracer sequence, the high
#: bits the tracer's ``origin`` — so ids allocated in different
#: processes never collide after a merge.
ORIGIN_SHIFT = 40


class SpanContext(NamedTuple):
    """What crosses a thread or process boundary: enough to parent."""

    trace_id: Optional[str]
    span_id: int


@dataclass
class Span:
    """One timed region; ``duration_s`` is monotonic-clock elapsed."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start_s: float
    end_s: Optional[float] = None
    attrs: Dict[str, object] = field(default_factory=dict)
    #: Request-scoped correlation id, shared along a parent chain.
    trace_id: Optional[str] = None
    #: Which tracer (process) allocated this span; 0 is the root.
    origin: int = 0
    #: Identity of the thread that opened the span (Chrome-trace lane).
    tid: int = 0

    @property
    def finished(self) -> bool:
        return self.end_s is not None

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end_s - self.start_s

    @property
    def context(self) -> SpanContext:
        """This span as a propagatable parent reference."""
        return SpanContext(self.trace_id, self.span_id)

    def record(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "kind": "span",
            "schema": SPAN_SCHEMA,
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
        }
        if self.trace_id is not None:
            data["trace_id"] = self.trace_id
        if self.origin:
            data["origin"] = self.origin
        if self.tid:
            data["tid"] = self.tid
        if self.attrs:
            data["attrs"] = self.attrs
        return data

    @classmethod
    def from_record(cls, record: Dict[str, object]) -> "Span":
        """Rebuild a finished span from its ``record()`` form."""
        if record.get("kind") != "span":
            raise ValueError(f"not a span record: {record!r}")
        if record.get("schema") not in (1, SPAN_SCHEMA):
            raise ValueError(
                f"unsupported span schema {record.get('schema')!r}"
            )
        start_s = float(record["start_s"])  # type: ignore[arg-type]
        return cls(
            name=str(record["name"]),
            span_id=int(record["span_id"]),  # type: ignore[arg-type]
            parent_id=(None if record["parent_id"] is None
                       else int(record["parent_id"])),  # type: ignore[arg-type]
            start_s=start_s,
            end_s=start_s + float(record["duration_s"]),  # type: ignore[arg-type]
            attrs=dict(record.get("attrs", {})),  # type: ignore[arg-type]
            trace_id=(None if record.get("trace_id") is None
                      else str(record["trace_id"])),
            origin=int(record.get("origin", 0)),  # type: ignore[arg-type]
            tid=int(record.get("tid", 0)),  # type: ignore[arg-type]
        )


class Tracer:
    """Collects spans; one instance per traced run (or process).

    Thread-safe: each thread nests spans on its own stack, and the
    shared mutable state (id allocation, the finished-span list) is
    lock-guarded. ``spans`` holds finished spans in completion order
    (children before parents — standard for tracers, since a parent
    finishes last).

    ``epoch`` (a raw ``perf_counter`` reading) and ``origin`` exist for
    cross-process tracing: a forked worker builds its tracer with the
    parent's ``epoch_raw`` so both sides share a timeline, and a
    nonzero ``origin`` so its span ids cannot collide with the
    parent's (see :data:`ORIGIN_SHIFT`).
    """

    enabled = True

    def __init__(self, epoch: Optional[float] = None, origin: int = 0):
        if origin < 0:
            raise ValueError("tracer origin must be non-negative")
        self.epoch_raw = perf_counter() if epoch is None else epoch
        self.origin = origin
        self.spans: List[Span] = []
        self._lock = threading.Lock()
        self._next_seq = 1
        self._next_trace = 1
        self._local = threading.local()

    # -- clock and id plumbing ---------------------------------------------

    def offset(self, raw_perf_counter: float) -> float:
        """A raw ``perf_counter`` reading as an epoch-relative offset."""
        return raw_perf_counter - self.epoch_raw

    def now(self) -> float:
        return perf_counter() - self.epoch_raw

    def _allocate_id(self) -> int:
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
        return (self.origin << ORIGIN_SHIFT) | seq

    def new_trace_id(self) -> str:
        """A fresh request-scoped correlation id."""
        with self._lock:
            seq = self._next_trace
            self._next_trace += 1
        return f"t{self.origin:x}-{seq:x}"

    @property
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _append(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)

    def _resolve_parent(
        self, parent_context: Optional[SpanContext]
    ) -> Tuple[Optional[int], Optional[str]]:
        """Explicit context wins; otherwise this thread's open span."""
        if parent_context is not None:
            return parent_context.span_id, parent_context.trace_id
        stack = self._stack
        if stack:
            return stack[-1].span_id, stack[-1].trace_id
        return None, None

    # -- span lifecycles ---------------------------------------------------

    @contextmanager
    def span(self, name: str,
             parent_context: Optional[SpanContext] = None,
             **attrs: object) -> Iterator[Span]:
        """Stack-based nesting on the calling thread.

        ``parent_context`` overrides the stack parent — that is how a
        worker parents its span under a request span that lives in
        another thread or process.
        """
        parent_id, trace_id = self._resolve_parent(parent_context)
        current = Span(
            name=name,
            span_id=self._allocate_id(),
            parent_id=parent_id,
            start_s=self.now(),
            attrs=attrs,
            trace_id=trace_id,
            origin=self.origin,
            tid=threading.get_ident(),
        )
        stack = self._stack
        stack.append(current)
        try:
            yield current
        finally:
            current.end_s = self.now()
            stack.pop()
            self._append(current)

    def begin_span(self, name: str,
                   parent_context: Optional[SpanContext] = None,
                   trace_id: Optional[str] = None,
                   **attrs: object) -> Span:
        """Open a span that is NOT on any thread's stack.

        For lifetimes that straddle threads — begin at admission,
        :meth:`finish_span` at resolution, wherever that happens.
        An explicit ``trace_id`` starts a new trace at this span.
        """
        parent_id, inherited = self._resolve_parent(parent_context)
        return Span(
            name=name,
            span_id=self._allocate_id(),
            parent_id=parent_id,
            start_s=self.now(),
            attrs=attrs,
            trace_id=trace_id if trace_id is not None else inherited,
            origin=self.origin,
            tid=threading.get_ident(),
        )

    def finish_span(self, span: Span, **attrs: object) -> Span:
        """Close a :meth:`begin_span` span and record it."""
        if span.finished:
            raise ValueError(f"span {span.name!r} already finished")
        if attrs:
            span.attrs.update(attrs)
        span.end_s = self.now()
        self._append(span)
        return span

    def record_span(self, name: str, start_s: float, end_s: float,
                    parent_context: Optional[SpanContext] = None,
                    trace_id: Optional[str] = None,
                    **attrs: object) -> Span:
        """Record an already-elapsed region (offsets in epoch seconds).

        For regions measured after the fact — queue wait is only known
        at dequeue time. Use :meth:`offset` to convert raw
        ``perf_counter`` readings.
        """
        parent_id = (parent_context.span_id
                     if parent_context is not None else None)
        if trace_id is None and parent_context is not None:
            trace_id = parent_context.trace_id
        span = Span(
            name=name,
            span_id=self._allocate_id(),
            parent_id=parent_id,
            start_s=start_s,
            end_s=end_s,
            attrs=attrs,
            trace_id=trace_id,
            origin=self.origin,
            tid=threading.get_ident(),
        )
        self._append(span)
        return span

    def current_context(self) -> Optional[SpanContext]:
        """The calling thread's innermost open span, as a context."""
        stack = self._stack
        return stack[-1].context if stack else None

    # -- cross-process merge -----------------------------------------------

    def adopt(self,
              spans: Iterable[Union[Span, Dict[str, object]]]) -> int:
        """Fold finished foreign spans (objects or ``record()`` dicts)
        into this tracer; returns how many were adopted."""
        adopted = 0
        for item in spans:
            span = (item if isinstance(item, Span)
                    else Span.from_record(item))
            if not span.finished:
                raise ValueError(
                    f"cannot adopt open span {span.name!r}")
            self._append(span)
            adopted += 1
        return adopted

    def drain(self) -> List[Span]:
        """Atomically take every finished span (worker-side shipping)."""
        with self._lock:
            drained = self.spans
            self.spans = []
        return drained

    # -- reads and exports -------------------------------------------------

    @property
    def open_depth(self) -> int:
        """Open spans on the *calling thread's* stack."""
        return len(self._stack)

    def find(self, name: str) -> List[Span]:
        with self._lock:
            return [s for s in self.spans if s.name == name]

    def to_jsonl(self) -> str:
        with self._lock:
            spans = list(self.spans)
        return "".join(
            json.dumps(span.record()) + "\n" for span in spans
        )

    def write_jsonl(self, stream: IO[str]) -> int:
        """Write finished spans to ``stream``; returns the span count."""
        with self._lock:
            count = len(self.spans)
        stream.write(self.to_jsonl())
        return count

    def to_chrome_trace(self) -> str:
        with self._lock:
            spans = list(self.spans)
        return chrome_trace_json(spans)

    def write_chrome_trace(self, stream: IO[str]) -> int:
        """Write the Chrome trace-event JSON array; returns the span
        count."""
        with self._lock:
            count = len(self.spans)
        stream.write(self.to_chrome_trace())
        return count


def chrome_trace_json(spans: Iterable[Span]) -> str:
    """Finished spans as a Chrome trace-event JSON array.

    Complete events (``"ph": "X"``) with microsecond timestamps; the
    span's ``origin`` becomes the pid lane (0 = the root process, one
    per shard worker) and the opening thread's identity the tid lane.
    ``span_id``/``parent_id``/``trace_id`` ride in ``args`` so the
    parent links survive the format round trip.
    """
    events: List[Dict[str, object]] = []
    for span in spans:
        args: Dict[str, object] = dict(span.attrs)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.trace_id is not None:
            args["trace_id"] = span.trace_id
        events.append({
            "name": span.name,
            "cat": "repro",
            "ph": "X",
            "ts": span.start_s * 1e6,
            "dur": span.duration_s * 1e6,
            "pid": span.origin,
            "tid": span.tid or span.origin,
            "args": args,
        })
    return json.dumps(events)


class _NullSpanContext:
    """Reusable inert context manager (no allocation per use)."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpanContext()


class NullTracer:
    """Tracing disabled: ``span`` hands back one shared inert context.

    The cross-thread/-process entry points all answer inert values so
    call sites can stay unguarded where one extra call per *request*
    (not per event) is acceptable; hot paths still check ``enabled``.
    """

    enabled = False
    origin = 0
    spans: Tuple[Span, ...] = ()

    def span(self, name: str,
             parent_context: Optional[SpanContext] = None,
             **attrs: object) -> _NullSpanContext:
        return _NULL_SPAN

    def begin_span(self, name: str,
                   parent_context: Optional[SpanContext] = None,
                   trace_id: Optional[str] = None,
                   **attrs: object) -> None:
        return None

    def finish_span(self, span: object, **attrs: object) -> None:
        return None

    def record_span(self, name: str, start_s: float, end_s: float,
                    parent_context: Optional[SpanContext] = None,
                    trace_id: Optional[str] = None,
                    **attrs: object) -> None:
        return None

    def current_context(self) -> None:
        return None

    def new_trace_id(self) -> str:
        return ""

    def offset(self, raw_perf_counter: float) -> float:
        return 0.0

    def adopt(self, spans: Iterable[object]) -> int:
        return 0

    def drain(self) -> List[Span]:
        return []

    def to_jsonl(self) -> str:
        return ""

    def to_chrome_trace(self) -> str:
        return "[]"


NULL_TRACER = NullTracer()

_current = NULL_TRACER


def tracer():
    """The current process-wide tracer (a no-op unless one is set)."""
    return _current


def set_tracer(new) -> object:
    """Swap the process-wide tracer; returns the previous one."""
    global _current
    previous = _current
    _current = new
    return previous


@contextmanager
def use_tracer(new) -> Iterator[object]:
    """Scope a tracer swap: ``with use_tracer(Tracer()) as t: ...``."""
    previous = set_tracer(new)
    try:
        yield new
    finally:
        set_tracer(previous)


def load_jsonl_spans(text: str) -> List[Span]:
    """Parse ``Tracer.to_jsonl`` output back into :class:`Span` objects."""
    spans: List[Span] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        spans.append(Span.from_record(json.loads(line)))
    return spans
