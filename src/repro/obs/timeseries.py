"""Bounded in-memory time series of registry samples.

The live telemetry plane periodically snapshots a
:class:`~repro.obs.metrics.MetricsRegistry` (parent-side counters plus
the per-shard worker states streamed over IPC) into
:class:`MetricSample` rows and appends them to a
:class:`TimeSeriesBuffer` — a ring buffer bounded both by sample count
and by age, so a long soak run holds a sliding window of recent
history in O(capacity) memory no matter how long it runs.

Samples carry *cumulative* values (counter totals, cumulative
histograms), exactly as the registry exports them. Rates and windowed
distributions are derived at read time: :meth:`TimeSeriesBuffer.rate`
differences counter totals across a window, and
:meth:`TimeSeriesBuffer.histogram_window` subtracts two cumulative
histograms to recover the distribution of observations inside the
window. Deriving at read time keeps the write path a plain snapshot
and makes every reader (``repro top``, the SLO evaluator, a future
HTTP gateway) see the same numbers.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import Histogram, MetricsRegistry


@dataclass(frozen=True)
class MetricSample:
    """One timestamped snapshot of scalar and histogram instruments.

    ``t_s`` is seconds on the tracer/monotonic timeline (not wall
    time): deltas between samples are what matters, not absolutes.
    Scalars hold counter/gauge values plus each histogram's cumulative
    observation count (exposed under the histogram's own name, so rate
    math works uniformly). Histograms are deep copies — mutating the
    live registry after sampling never rewrites history.
    """

    t_s: float
    scalars: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Histogram] = field(default_factory=dict)

    def scalar(self, name: str, default: float = 0.0) -> float:
        return self.scalars.get(name, default)


def sample_registry(
    registry: MetricsRegistry,
    t_s: float,
    extra_scalars: Optional[Dict[str, float]] = None,
    extra_histograms: Optional[Dict[str, Histogram]] = None,
) -> MetricSample:
    """Snapshot ``registry`` into an immutable :class:`MetricSample`.

    ``extra_scalars`` / ``extra_histograms`` let the caller fold in
    values that live outside the registry (per-shard runtime stats,
    queue depths read from the runtime object). Extra histograms are
    copied too, so callers may pass live instruments.
    """
    scalars: Dict[str, float] = {}
    histograms: Dict[str, Histogram] = {}
    for state in registry.to_state():
        name = str(state["name"])
        if state["kind"] == Histogram.kind:
            hist = Histogram.from_state(state)
            histograms[name] = hist
            scalars[name] = float(hist.count)
        else:
            scalars[name] = float(state["value"])  # type: ignore[arg-type]
    if extra_scalars:
        scalars.update(extra_scalars)
    if extra_histograms:
        for name, hist in extra_histograms.items():
            copied = Histogram.from_state(hist.to_state())
            histograms[name] = copied
            scalars[name] = float(copied.count)
    return MetricSample(t_s=t_s, scalars=scalars, histograms=histograms)


def histogram_delta(later: Histogram, earlier: Optional[Histogram]
                    ) -> Histogram:
    """The observations recorded between two cumulative snapshots.

    Bucket-wise ``later - earlier``, clamped at zero (a registry reset
    or a recovered shard can make cumulative counts step backwards;
    a negative distribution is never the right answer). With
    ``earlier=None`` the later snapshot is returned as-is (copied).
    """
    if earlier is None or earlier.buckets != later.buckets:
        return Histogram.from_state(later.to_state())
    delta = Histogram(later.name, help=later.help, buckets=later.buckets)
    counts = [max(0, lc - ec)
              for lc, ec in zip(later._counts, earlier._counts)]
    delta._counts = counts
    delta._count = sum(counts)
    delta._sum = max(0.0, later.sum - earlier.sum)
    return delta


class TimeSeriesBuffer:
    """Ring buffer of :class:`MetricSample` rows, bounded two ways.

    ``capacity`` caps the number of retained samples; ``max_age_s``
    (optional) additionally drops samples older than the newest by
    more than the retention window. Appends and reads are serialized
    on a lock — the telemetry thread writes while ``repro top`` and
    the SLO evaluator read.
    """

    def __init__(self, capacity: int = 1024,
                 max_age_s: Optional[float] = None):
        if capacity < 2:
            raise ValueError("a useful time series needs capacity >= 2")
        if max_age_s is not None and max_age_s <= 0:
            raise ValueError("max_age_s must be positive when set")
        self.capacity = capacity
        self.max_age_s = max_age_s
        self._samples: List[MetricSample] = []
        self._lock = threading.Lock()
        self._appended = 0

    def append(self, sample: MetricSample) -> None:
        with self._lock:
            self._samples.append(sample)
            self._appended += 1
            if len(self._samples) > self.capacity:
                del self._samples[: len(self._samples) - self.capacity]
            if self.max_age_s is not None:
                horizon = sample.t_s - self.max_age_s
                keep = 0
                while (keep < len(self._samples) - 1
                       and self._samples[keep].t_s < horizon):
                    keep += 1
                if keep:
                    del self._samples[:keep]

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    @property
    def appended(self) -> int:
        """Total samples ever appended (including evicted ones)."""
        with self._lock:
            return self._appended

    def samples(self) -> Tuple[MetricSample, ...]:
        with self._lock:
            return tuple(self._samples)

    def latest(self) -> Optional[MetricSample]:
        with self._lock:
            return self._samples[-1] if self._samples else None

    def first(self) -> Optional[MetricSample]:
        with self._lock:
            return self._samples[0] if self._samples else None

    def window(self, window_s: Optional[float] = None
               ) -> Tuple[Optional[MetricSample], Optional[MetricSample]]:
        """``(earlier, latest)`` spanning at most ``window_s`` seconds.

        ``earlier`` is the oldest retained sample no older than
        ``latest.t_s - window_s`` (the whole buffer when ``window_s``
        is None). Returns ``(None, None)`` when empty and
        ``(None, latest)`` when only one sample exists — callers treat
        a missing ``earlier`` as "since the beginning".
        """
        with self._lock:
            if not self._samples:
                return (None, None)
            latest = self._samples[-1]
            if len(self._samples) == 1:
                return (None, latest)
            if window_s is None:
                return (self._samples[0], latest)
            horizon = latest.t_s - window_s
            earlier = None
            for sample in self._samples[:-1]:
                if sample.t_s >= horizon:
                    earlier = sample
                    break
            if earlier is None:
                earlier = self._samples[-2]
            return (earlier, latest)

    def delta(self, name: str, window_s: Optional[float] = None) -> float:
        """Increase of scalar ``name`` over the window (clamped >= 0)."""
        earlier, latest = self.window(window_s)
        if latest is None:
            return 0.0
        base = earlier.scalar(name) if earlier is not None else 0.0
        return max(0.0, latest.scalar(name) - base)

    def rate(self, name: str, window_s: Optional[float] = None) -> float:
        """Per-second rate of scalar ``name`` over the window."""
        earlier, latest = self.window(window_s)
        if latest is None or earlier is None:
            return 0.0
        span = latest.t_s - earlier.t_s
        if span <= 0:
            return 0.0
        return max(0.0, latest.scalar(name) - earlier.scalar(name)) / span

    def histogram_window(self, name: str,
                         window_s: Optional[float] = None
                         ) -> Optional[Histogram]:
        """Distribution of ``name`` observations inside the window.

        Subtracts the earlier cumulative histogram from the latest
        (see :func:`histogram_delta`); None when the latest sample
        does not carry the histogram.
        """
        earlier, latest = self.window(window_s)
        if latest is None:
            return None
        later_hist = latest.histograms.get(name)
        if later_hist is None:
            return None
        earlier_hist = earlier.histograms.get(name) if earlier else None
        return histogram_delta(later_hist, earlier_hist)
