"""Counters, gauges, fixed-bucket histograms, and the registry.

The registry is **process-wide but injectable**: library code asks
:func:`registry` for the current one, tests and benchmarks swap it with
:func:`set_registry` / :func:`use_registry`, and a :class:`NullRegistry`
turns every instrument into a shared no-op so instrumented code runs
with metrics disabled at (near-)zero cost. Setting ``REPRO_OBS=off`` in
the environment makes the no-op registry the process default.

Hot paths resolve their instruments **once** — either at object
construction (the delivery engine) or through :func:`bind`, which
re-resolves only when the global registry identity changes — so the
per-event cost is one bound-method call.

Concurrency: instrument *updates* are plain Python attributes mutated
without locks. The simulator is synchronous; under threads the
single-opcode int/float adds are GIL-coalesced, which is the usual
"good enough for monitoring" guarantee (documented, and pinned by
``tests/obs/test_metrics.py``) — not a synchronisation primitive.
*Structural* operations (interning, ``merge_state``, ``snapshot``,
``to_state``) are serialized on a per-registry lock so live telemetry
merges never tear a concurrent export.
"""

from __future__ import annotations

import os
import threading
from bisect import bisect_left
from contextlib import contextmanager
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.obs import names as _names

_DEFAULT_BUCKETS: Tuple[float, ...] = _names.COUNT_BUCKETS


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "help", "_value")

    kind = _names.COUNTER

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def snapshot(self) -> Dict[str, object]:
        return {"kind": self.kind, "name": self.name, "value": self._value}

    def to_state(self) -> Dict[str, object]:
        """Compact serializable form, mergeable across processes."""
        return {"kind": self.kind, "name": self.name, "help": self.help,
                "value": self._value}

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "Counter":
        counter = cls(str(state["name"]), help=str(state.get("help", "")))
        counter._value = int(state["value"])  # type: ignore[arg-type]
        return counter

    def merge(self, other: "Counter") -> None:
        """Fold another process's count into this one (sums)."""
        if other.name != self.name:
            raise ValueError(
                f"cannot merge counter {other.name!r} into {self.name!r}")
        self._value += other._value


class Gauge:
    """A value that goes up and down (current level, not a rate)."""

    __slots__ = ("name", "help", "_value")

    kind = _names.GAUGE

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = value

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> Dict[str, object]:
        return {"kind": self.kind, "name": self.name, "value": self._value}

    def to_state(self) -> Dict[str, object]:
        """Compact serializable form, mergeable across processes."""
        return {"kind": self.kind, "name": self.name, "help": self.help,
                "value": self._value}

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "Gauge":
        gauge = cls(str(state["name"]), help=str(state.get("help", "")))
        gauge._value = float(state["value"])  # type: ignore[arg-type]
        return gauge

    def merge(self, other: "Gauge") -> None:
        """Fold another process's level into this one (sums: per-process
        queue depths and the like add up to the fleet-wide level)."""
        if other.name != self.name:
            raise ValueError(
                f"cannot merge gauge {other.name!r} into {self.name!r}")
        self._value += other._value


class Histogram:
    """Fixed-bucket histogram (Prometheus-style cumulative export).

    ``buckets`` are inclusive upper bounds in ascending order; an
    implicit +Inf bucket catches the rest. Bucket counts are stored
    non-cumulative internally and cumulated at export time.
    """

    __slots__ = ("name", "help", "buckets", "_counts", "_sum", "_count")

    kind = _names.HISTOGRAM

    def __init__(self, name: str, help: str = "",
                 buckets: Optional[Sequence[float]] = None):
        bounds = tuple(buckets if buckets is not None else _DEFAULT_BUCKETS)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("bucket bounds must be strictly ascending")
        self.name = name
        self.help = help
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: the +Inf bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        self._counts[bisect_left(self.buckets, value)] += 1
        self._sum += value
        self._count += 1

    def observe_many(self, values) -> None:
        """Record a whole array of observations in one bulk update.

        Equivalent to ``for v in values: self.observe(v)`` — bucket
        assignment uses the same left-bisect rule — but costs one
        ``searchsorted`` + ``bincount`` instead of a Python loop. The
        batch sweep feeds its per-round contender counts and clearing
        prices through here.
        """
        import numpy as np
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            return
        idx = np.searchsorted(self.buckets, arr, side="left")
        added = np.bincount(idx, minlength=len(self.buckets) + 1)
        for i, extra in enumerate(added):
            if extra:
                self._counts[i] += int(extra)
        self._sum += float(arr.sum())
        self._count += int(arr.size)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the bucket counts.

        Prometheus-style: find the bucket the target rank falls in and
        interpolate linearly inside it (the lower edge of the first
        bucket is 0). The estimate is only as fine as the bucket bounds
        — pick buckets that bracket the latencies you care about (e.g.
        :data:`repro.obs.names.LATENCY_BUCKETS` for request latencies).
        Ranks landing in the +Inf bucket clamp to the highest finite
        bound. Returns 0.0 for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self._count == 0:
            return 0.0
        rank = q * self._count
        running = 0
        lower = 0.0
        for bound, count in zip(self.buckets, self._counts):
            if running + count >= rank:
                if count == 0:
                    # The rank sits exactly on the cumulative boundary:
                    # the quantile is the *previous* bound, not this
                    # empty bucket's upper edge. Returning ``bound``
                    # here would make quantiles of a merged histogram
                    # (whose empty buckets land in different places)
                    # disagree with the single-registry answer.
                    return lower
                return lower + (bound - lower) * (rank - running) / count
            running += count
            lower = bound
        return self.buckets[-1]

    def percentiles(self, *qs: float) -> Dict[str, float]:
        """``{"p50": ..., "p95": ...}`` for the requested quantiles
        (p50/p95/p99 when called with no arguments)."""
        wanted = qs or (0.50, 0.95, 0.99)
        return {
            f"p{round(q * 100):d}": self.quantile(q) for q in wanted
        }

    def bucket_counts(self) -> Tuple[Tuple[float, int], ...]:
        """Cumulative ``(upper_bound, count)`` pairs, +Inf last."""
        pairs = []
        running = 0
        for bound, count in zip(self.buckets, self._counts):
            running += count
            pairs.append((bound, running))
        pairs.append((float("inf"), running + self._counts[-1]))
        return tuple(pairs)

    def snapshot(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "name": self.name,
            "count": self._count,
            "sum": self._sum,
            # "+Inf" as a string: float inf is not strict JSON.
            "buckets": [
                ["+Inf" if b == float("inf") else b, c]
                for b, c in self.bucket_counts()
            ],
        }

    def to_state(self) -> Dict[str, object]:
        """Compact serializable form, mergeable across processes.

        Unlike :meth:`snapshot` (Prometheus-style *cumulative* pairs),
        this carries the raw non-cumulative per-bucket counts and the
        exact bounds: the representation a receiving process needs to
        reconstruct a histogram whose interpolated quantiles are
        identical to the originals' — merged quantiles then match the
        single-registry answer on identical samples by construction.
        """
        return {
            "kind": self.kind,
            "name": self.name,
            "help": self.help,
            "buckets": list(self.buckets),
            "counts": list(self._counts),
            "sum": self._sum,
            "count": self._count,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "Histogram":
        bounds = [float(b) for b in state["buckets"]]  # type: ignore[union-attr]
        hist = cls(str(state["name"]), help=str(state.get("help", "")),
                   buckets=bounds)
        counts = [int(c) for c in state["counts"]]  # type: ignore[union-attr]
        if len(counts) != len(bounds) + 1:
            raise ValueError(
                f"histogram state for {hist.name!r} carries "
                f"{len(counts)} counts for {len(bounds)} bounds "
                f"(expected bounds + 1 for the +Inf bucket)")
        hist._counts = counts
        hist._sum = float(state["sum"])  # type: ignore[arg-type]
        hist._count = int(state["count"])  # type: ignore[arg-type]
        return hist

    def merge(self, other: "Histogram") -> None:
        """Fold another process's observations into this histogram.

        Requires identical bucket bounds: merging mismatched layouts
        would silently corrupt every quantile, so it is an error.
        The bucket-count list is replaced in one assignment (never
        mutated in place), so a concurrent reader sees either the old
        counts or the new — each bucket is monotone across snapshots,
        never half-merged.
        """
        if other.name != self.name:
            raise ValueError(
                f"cannot merge histogram {other.name!r} into "
                f"{self.name!r}")
        if other.buckets != self.buckets:
            raise ValueError(
                f"histogram {self.name!r}: refusing to merge mismatched "
                f"bucket bounds {other.buckets} into {self.buckets}")
        merged = [mine + theirs for mine, theirs
                  in zip(self._counts, other._counts)]
        self._sum += other._sum
        self._count += other._count
        self._counts = merged


Instrument = TypeVar("Instrument", Counter, Gauge, Histogram)

_STATE_KINDS = {
    Counter.kind: Counter,
    Gauge.kind: Gauge,
    Histogram.kind: Histogram,
}


def instrument_from_state(state: Dict[str, object]):
    """Rebuild a Counter/Gauge/Histogram from its ``to_state`` form."""
    kind = state.get("kind")
    cls = _STATE_KINDS.get(str(kind))
    if cls is None:
        raise ValueError(f"unknown instrument kind {kind!r}")
    return cls.from_state(state)


class MetricsRegistry:
    """Interns instruments by name; the unit every exporter reads.

    Instruments are created on first request and shared thereafter.
    Help text and histogram buckets default from the
    :mod:`repro.obs.names` catalog, so call sites just name the metric.
    Requesting an existing name as a different kind raises — one name,
    one schema, process-wide.

    Structural operations — interning, cross-process merges, snapshots
    and state dumps — are serialized on a per-registry lock, so a
    telemetry thread folding worker registries in can never tear a
    concurrent ``snapshot()``/``to_prometheus`` read (pinned by
    ``tests/obs/test_metrics.py``). Individual ``inc``/``observe``
    calls stay lock-free: hot paths hold instrument references and the
    single-opcode updates are GIL-coalesced, the usual "good enough for
    monitoring" guarantee.
    """

    enabled = True

    def __init__(self, name: str = "default"):
        self.name = name
        self._instruments: Dict[str, object] = {}
        self._structural_lock = threading.RLock()

    # -- instrument factories ---------------------------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        return self._intern(name, Counter, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._intern(name, Gauge, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        spec = _names.METRICS.get(name)
        if buckets is None and spec is not None:
            buckets = spec.buckets
        return self._intern(name, Histogram, help, buckets=buckets)

    def _intern(self, name, cls, help, **kwargs):
        with self._structural_lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, requested {cls.kind}"
                    )
                return existing
            if not help:
                spec = _names.METRICS.get(name)
                help = spec.help if spec is not None else ""
            instrument = cls(name, help=help, **kwargs) if kwargs \
                else cls(name, help=help)
            self._instruments[name] = instrument
            return instrument

    # -- reads -------------------------------------------------------------

    def instruments(self) -> Dict[str, object]:
        with self._structural_lock:
            return dict(self._instruments)

    def names(self) -> Tuple[str, ...]:
        with self._structural_lock:
            return tuple(sorted(self._instruments))

    def get(self, name: str) -> Optional[object]:
        return self._instruments.get(name)

    def value(self, name: str) -> float:
        """Counter/gauge value or histogram observation count; 0 when
        the instrument was never touched."""
        instrument = self._instruments.get(name)
        if instrument is None:
            return 0
        if isinstance(instrument, Histogram):
            return instrument.count
        return instrument.value  # type: ignore[union-attr]

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        with self._structural_lock:
            return {
                name: instrument.snapshot()  # type: ignore[attr-defined]
                for name, instrument in sorted(self._instruments.items())
            }

    def to_state(self) -> List[Dict[str, object]]:
        """Every instrument's ``to_state`` form — what a shard worker
        process ships back to the parent at shutdown (and what the
        telemetry plane streams mid-run)."""
        with self._structural_lock:
            return [
                instrument.to_state()  # type: ignore[attr-defined]
                for _, instrument in sorted(self._instruments.items())
            ]

    def merge_state(self, states: Iterable[Dict[str, object]]) -> None:
        """Fold another registry's ``to_state`` dump into this one.

        Instruments are interned by name first (with the incoming help
        text and bucket bounds), so existing instrument objects — and
        therefore every reference hot paths resolved before the merge —
        see the merged totals. The whole fold happens under the
        structural lock, so concurrent snapshots observe it atomically.
        """
        with self._structural_lock:
            for state in states:
                incoming = instrument_from_state(state)
                if isinstance(incoming, Histogram):
                    mine: object = self.histogram(
                        incoming.name, help=incoming.help,
                        buckets=incoming.buckets)
                elif isinstance(incoming, Gauge):
                    mine = self.gauge(incoming.name, help=incoming.help)
                else:
                    mine = self.counter(incoming.name, help=incoming.help)
                mine.merge(incoming)  # type: ignore[attr-defined]

    def reset(self) -> None:
        """Drop every instrument (fresh-run semantics for the CLI)."""
        with self._structural_lock:
            self._instruments.clear()


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """No-op mode: every request returns a shared inert instrument.

    Instrumented code runs unchanged; nothing is recorded and nothing
    accumulates, so the overhead is one no-op method call per event
    (bounded at <5% on the delivery benchmarks —
    ``benchmarks/bench_obs_overhead.py``).
    """

    enabled = False

    def __init__(self):
        super().__init__(name="null")
        self._counter = _NullCounter("null.counter")
        self._gauge = _NullGauge("null.gauge")
        self._histogram = _NullHistogram("null.histogram")

    def counter(self, name: str, help: str = "") -> Counter:
        return self._counter

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._gauge

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        return self._histogram

    def to_state(self) -> List[Dict[str, object]]:
        return []

    def merge_state(self, states: Iterable[Dict[str, object]]) -> None:
        # Merging into the shared inert instruments would mutate them
        # for every caller; no-op mode records nothing, merges nothing.
        pass


NULL_REGISTRY = NullRegistry()

_lock = threading.Lock()
_current: Optional[MetricsRegistry] = None


def _default_registry() -> MetricsRegistry:
    if os.environ.get("REPRO_OBS", "").lower() in ("off", "noop", "0",
                                                   "disabled", "false"):
        return NULL_REGISTRY
    return MetricsRegistry(name="process")


def registry() -> MetricsRegistry:
    """The current process-wide registry (created on first use)."""
    global _current
    if _current is None:
        with _lock:
            if _current is None:
                _current = _default_registry()
    return _current


def set_registry(new: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one.

    Objects that resolved instruments before the swap keep writing to
    the old registry (construct them after, or pass a registry in).
    """
    global _current
    with _lock:
        # Inline the default rather than calling registry(): the lock is
        # not reentrant, and registry() would retake it on first use.
        previous = _current if _current is not None else _default_registry()
        _current = new
    return previous


@contextmanager
def use_registry(new: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scope a registry swap: ``with use_registry(MetricsRegistry()):``."""
    previous = set_registry(new)
    try:
        yield new
    finally:
        set_registry(previous)


def bind(factory: Callable[[MetricsRegistry], Instrument]
         ) -> Callable[[], Instrument]:
    """Late-bound instrument resolution for module-level hot paths.

    Returns a zero-argument callable producing ``factory(registry())``,
    re-invoking the factory only when the global registry identity
    changes — one global read and one identity check per call, so
    module-level functions (the auction, the targeting compiler) stay
    registry-swappable without a dict lookup per event.
    """
    cell: list = [None, None]  # [registry, instrument]

    def resolve() -> Instrument:
        # Read the module global directly — registry() is only needed
        # the first time, before the process default exists. A cell
        # keyed on None can never stick: _current is never reset to
        # None, so the lazy branch runs at most once per process.
        reg = _current
        if reg is None:
            reg = registry()
        if cell[0] is not reg:
            cell[0] = reg
            cell[1] = factory(reg)
        return cell[1]

    return resolve
