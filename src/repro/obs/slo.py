"""Service-level objectives: parse, evaluate, and track burn rate.

An SLO string is a comma-separated list of objectives::

    p99=5ms,p50=500us,availability=99.9%

Latency objectives name a quantile (``p50``/``p95``/``p99``/any
``p<number>``) with a duration threshold (``us``/``ms``/``s``, bare
numbers are seconds). The availability objective takes a percentage or
a fraction and is measured as SERVED / resolved — shed, timed-out and
errored requests all spend error budget, because to the caller they
are all "the system did not answer".

:func:`evaluate_report` scores a finished
:class:`~repro.serve.loadgen.LoadReport` (duck-typed: anything with a
``latency`` histogram and a ``tally``), powering the
``repro loadgen --slo`` exit gate. :func:`burn_rate` reads the live
:class:`~repro.obs.timeseries.TimeSeriesBuffer` instead, answering the
operational question "at the error rate of the last N seconds, how
many times faster than allowed are we spending error budget?" — 1.0
means exactly on budget, >1 means burning hot.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeSeriesBuffer

LATENCY = "latency"
AVAILABILITY = "availability"

_QUANTILE_KEY = re.compile(r"^p(\d+(?:\.\d+)?)$")
_DURATION = re.compile(r"^(\d+(?:\.\d+)?)\s*(us|ms|s)?$")

#: Gauge names the evaluator publishes (cataloged in
#: :mod:`repro.obs.names`).
AVAILABILITY_GAUGE = "slo.availability"
BURN_RATE_GAUGE = "slo.error_budget_burn_rate"


@dataclass(frozen=True)
class SLOObjective:
    """One parsed objective.

    ``kind`` is :data:`LATENCY` (``quantile`` set, ``threshold`` in
    seconds, "observed must be <=") or :data:`AVAILABILITY`
    (``threshold`` a fraction in (0, 1], "observed must be >=").
    ``raw`` keeps the original spelling for error messages and
    summaries.
    """

    kind: str
    threshold: float
    quantile: Optional[float] = None
    raw: str = ""

    def label(self) -> str:
        if self.kind == LATENCY:
            assert self.quantile is not None
            pct = self.quantile * 100
            text = f"{pct:g}"
            return f"p{text}"
        return AVAILABILITY

    def describe(self) -> str:
        if self.kind == LATENCY:
            return f"{self.label()} <= {_format_duration(self.threshold)}"
        return f"availability >= {self.threshold * 100:g}%"

    def met_by(self, observed: float) -> bool:
        if self.kind == LATENCY:
            return observed <= self.threshold
        return observed >= self.threshold


@dataclass(frozen=True)
class SLOSpec:
    """A set of objectives, as parsed from one ``--slo`` string."""

    objectives: Tuple[SLOObjective, ...]

    @property
    def availability_target(self) -> Optional[float]:
        for objective in self.objectives:
            if objective.kind == AVAILABILITY:
                return objective.threshold
        return None

    def describe(self) -> str:
        return ", ".join(o.describe() for o in self.objectives)


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:g}s"
    if seconds >= 0.001:
        return f"{seconds * 1000:g}ms"
    return f"{seconds * 1_000_000:g}us"


def _parse_duration(text: str, raw: str) -> float:
    match = _DURATION.match(text.strip())
    if match is None:
        raise ValueError(
            f"SLO objective {raw!r}: cannot parse duration {text!r} "
            f"(expected e.g. 5ms, 500us, 0.25s)")
    value = float(match.group(1))
    unit = match.group(2) or "s"
    scale = {"us": 1e-6, "ms": 1e-3, "s": 1.0}[unit]
    return value * scale


def _parse_fraction(text: str, raw: str) -> float:
    text = text.strip()
    percent = text.endswith("%")
    if percent:
        text = text[:-1]
    try:
        value = float(text)
    except ValueError:
        raise ValueError(
            f"SLO objective {raw!r}: cannot parse availability "
            f"{text!r} (expected e.g. 99.9% or 0.999)") from None
    if percent or value > 1.0:
        value /= 100.0
    if not 0.0 < value <= 1.0:
        raise ValueError(
            f"SLO objective {raw!r}: availability target must land in "
            f"(0, 1] after conversion, got {value}")
    return value


def parse_slo(text: str) -> SLOSpec:
    """Parse ``"p99=5ms,availability=99%"`` into an :class:`SLOSpec`."""
    objectives = []
    seen: Dict[str, str] = {}
    for part in text.split(","):
        raw = part.strip()
        if not raw:
            continue
        if "=" not in raw:
            raise ValueError(
                f"SLO objective {raw!r}: expected key=value "
                f"(e.g. p99=5ms or availability=99%)")
        key, value = (piece.strip() for piece in raw.split("=", 1))
        key = key.lower()
        if key in seen:
            raise ValueError(
                f"SLO objective {raw!r}: {key!r} already given "
                f"as {seen[key]!r}")
        seen[key] = raw
        quantile_match = _QUANTILE_KEY.match(key)
        if quantile_match is not None:
            quantile = float(quantile_match.group(1)) / 100.0
            if not 0.0 < quantile < 1.0:
                raise ValueError(
                    f"SLO objective {raw!r}: quantile must land "
                    f"strictly inside (0, 100)")
            objectives.append(SLOObjective(
                kind=LATENCY, threshold=_parse_duration(value, raw),
                quantile=quantile, raw=raw))
        elif key == AVAILABILITY:
            objectives.append(SLOObjective(
                kind=AVAILABILITY, threshold=_parse_fraction(value, raw),
                raw=raw))
        else:
            raise ValueError(
                f"SLO objective {raw!r}: unknown key {key!r} "
                f"(expected p<quantile> or availability)")
    if not objectives:
        raise ValueError(f"SLO spec {text!r} names no objectives")
    return SLOSpec(objectives=tuple(objectives))


@dataclass(frozen=True)
class ObjectiveResult:
    """One objective scored against an observation."""

    objective: SLOObjective
    observed: float
    ok: bool

    def describe(self) -> str:
        if self.objective.kind == LATENCY:
            observed = _format_duration(self.observed)
        else:
            observed = f"{self.observed * 100:.3f}%"
        verdict = "ok" if self.ok else "VIOLATED"
        return f"{self.objective.describe()}: observed {observed} [{verdict}]"


@dataclass(frozen=True)
class SLOEvaluation:
    """Every objective's verdict for one run (or one window)."""

    spec: SLOSpec
    results: Tuple[ObjectiveResult, ...]
    resolved: int

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def violations(self) -> Tuple[ObjectiveResult, ...]:
        return tuple(r for r in self.results if not r.ok)

    def summary(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "resolved": self.resolved,
            "objectives": [
                {
                    "objective": result.objective.raw
                                 or result.objective.describe(),
                    "kind": result.objective.kind,
                    "target": result.objective.threshold,
                    "observed": result.observed,
                    "ok": result.ok,
                }
                for result in self.results
            ],
        }


def evaluate_report(report, spec: SLOSpec,
                    registry: Optional[MetricsRegistry] = None
                    ) -> SLOEvaluation:
    """Score a finished load run against ``spec``.

    ``report`` is duck-typed on :class:`~repro.serve.loadgen.LoadReport`
    — a ``latency`` histogram plus a ``tally`` with ``submitted`` /
    ``served`` counts. A run that resolved zero requests fails every
    objective (an idle gate should not pass green). When ``registry``
    is given, the availability and burn-rate gauges are published
    there.
    """
    tally = report.tally
    resolved = int(tally.submitted)
    availability = (tally.served / resolved) if resolved else 0.0
    results = []
    for objective in spec.objectives:
        if objective.kind == LATENCY:
            assert objective.quantile is not None
            observed = report.latency.quantile(objective.quantile)
            ok = resolved > 0 and objective.met_by(observed)
        else:
            observed = availability
            ok = resolved > 0 and objective.met_by(observed)
        results.append(ObjectiveResult(
            objective=objective, observed=observed, ok=ok))
    evaluation = SLOEvaluation(spec=spec, results=tuple(results),
                               resolved=resolved)
    if registry is not None and registry.enabled:
        registry.gauge(AVAILABILITY_GAUGE).set(availability)
        target = spec.availability_target
        if target is not None:
            registry.gauge(BURN_RATE_GAUGE).set(
                _burn_from(availability, target))
    return evaluation


def _burn_from(availability: float, target: float) -> float:
    """Observed error rate over the error budget the target allows."""
    budget = 1.0 - target
    error_rate = max(0.0, 1.0 - availability)
    if budget <= 0.0:
        # A 100% target has zero budget: any error burns infinitely
        # fast; report 0 only when nothing failed.
        return 0.0 if error_rate == 0.0 else float("inf")
    return error_rate / budget


def burn_rate(buffer: TimeSeriesBuffer, spec: SLOSpec,
              window_s: Optional[float] = None,
              submitted: str = "serve.requests_submitted",
              served: str = "serve.requests_served") -> float:
    """Error-budget burn rate over the buffer's trailing window.

    Differences the submitted/served counters across ``window_s``
    seconds of the live time series: burn 1.0 means errors arrive
    exactly as fast as the availability target permits, >1 means the
    budget drains faster than it accrues. 0.0 when the spec carries no
    availability objective or the window saw no traffic.
    """
    target = spec.availability_target
    if target is None:
        return 0.0
    offered = buffer.delta(submitted, window_s)
    if offered <= 0:
        return 0.0
    answered = buffer.delta(served, window_s)
    availability = min(1.0, answered / offered)
    return _burn_from(availability, target)
