"""Observability: metrics, structured events, span tracing, exporters.

PR 1 made the deliver-iff-match hot path fast; this package makes it
legible. Four pieces, one per module:

* :mod:`~repro.obs.metrics` — a process-wide but injectable
  :class:`MetricsRegistry` (counters, gauges, fixed-bucket histograms)
  with a shared no-op :data:`NULL_REGISTRY` for metrics-off runs;
* :mod:`~repro.obs.events` — a typed event bus with a JSONL sink;
* :mod:`~repro.obs.tracing` — monotonic-clock span tracing with
  parent/child nesting (``with tracing.tracer().span("serve_slot")``);
* :mod:`~repro.obs.export` — Prometheus text format, JSONL, and table
  renderings of a registry;
* :mod:`~repro.obs.timeseries` — a bounded ring buffer of timestamped
  registry samples (the live telemetry stream);
* :mod:`~repro.obs.slo` — service-level objectives parsed from
  ``p99=5ms,availability=99%`` strings, scored against load reports
  and the live time series (burn rate).

:mod:`~repro.obs.names` is the catalog every instrument name lives in;
``docs/observability.md`` is kept in sync with it by test.

The instrumented layers (delivery, auction, targeting compiler,
platform facade, billing, provider, client) log through stdlib
``logging.getLogger("repro.<module>")`` at INFO/DEBUG — silent by
default, surfaced by the CLI's ``-v``.

Quick taste::

    from repro.obs import metrics, export

    reg = metrics.registry()
    # ... run any simulation ...
    print(export.to_table(reg))            # doctest: +SKIP
    prom_text = export.to_prometheus(reg)

Disable everything (e.g. for benchmarking the bare hot path) with
``REPRO_OBS=off`` in the environment, or scope it::

    with metrics.use_registry(metrics.NULL_REGISTRY):
        platform = AdPlatform()             # doctest: +SKIP
"""

from repro.obs import names
from repro.obs.events import (
    AdSubmitted,
    BudgetExhausted,
    ClickRecorded,
    EventBus,
    ImpressionDelivered,
    JsonlSink,
    ObsEvent,
    TreadsLaunched,
    bus,
    event_from_record,
    load_jsonl_events,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    bind,
    registry,
    set_registry,
    use_registry,
)
from repro.obs.slo import (
    ObjectiveResult,
    SLOEvaluation,
    SLOObjective,
    SLOSpec,
    burn_rate,
    evaluate_report,
    parse_slo,
)
from repro.obs.timeseries import (
    MetricSample,
    TimeSeriesBuffer,
    histogram_delta,
    sample_registry,
)
from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanContext,
    Tracer,
    chrome_trace_json,
    load_jsonl_spans,
    set_tracer,
    tracer,
    use_tracer,
)

__all__ = [
    "AdSubmitted",
    "BudgetExhausted",
    "ClickRecorded",
    "Counter",
    "EventBus",
    "Gauge",
    "Histogram",
    "ImpressionDelivered",
    "JsonlSink",
    "MetricSample",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "ObjectiveResult",
    "ObsEvent",
    "SLOEvaluation",
    "SLOObjective",
    "SLOSpec",
    "Span",
    "SpanContext",
    "TimeSeriesBuffer",
    "Tracer",
    "TreadsLaunched",
    "bind",
    "burn_rate",
    "bus",
    "chrome_trace_json",
    "evaluate_report",
    "event_from_record",
    "histogram_delta",
    "load_jsonl_events",
    "load_jsonl_spans",
    "names",
    "parse_slo",
    "registry",
    "sample_registry",
    "set_registry",
    "set_tracer",
    "tracer",
    "use_registry",
    "use_tracer",
]
