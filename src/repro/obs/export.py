"""Exporters: Prometheus text format, JSONL, and a terminal table.

The registry itself is presentation-free; everything that leaves the
process goes through here. Prometheus names must match
``[a-zA-Z_:][a-zA-Z0-9_:]*``, so dotted metric names are rewritten with
underscores and HELP text gets the exposition-format escaping
(backslash and newline); the JSONL and table forms keep the dotted
names as-is.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Tuple

from repro.analysis.tables import format_table
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str) -> str:
    """Dotted metric name -> Prometheus-legal name."""
    candidate = _NAME_BAD_CHARS.sub("_", name)
    if not candidate or not _NAME_OK.match(candidate):
        candidate = f"_{candidate}"
    return candidate


def escape_help(text: str) -> str:
    """HELP-line escaping per the Prometheus exposition format."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render every instrument in Prometheus text exposition format."""
    lines: List[str] = []
    for name, instrument in sorted(registry.instruments().items()):
        prom = prometheus_name(name)
        help_text = getattr(instrument, "help", "")
        if help_text:
            lines.append(f"# HELP {prom} {escape_help(help_text)}")
        if isinstance(instrument, Counter):
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {_format_value(instrument.value)}")
        elif isinstance(instrument, Gauge):
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {_format_value(instrument.value)}")
        elif isinstance(instrument, Histogram):
            lines.append(f"# TYPE {prom} histogram")
            for bound, count in instrument.bucket_counts():
                lines.append(
                    f'{prom}_bucket{{le="{_format_value(bound)}"}} {count}'
                )
            lines.append(f"{prom}_sum {_format_value(instrument.sum)}")
            lines.append(f"{prom}_count {instrument.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_jsonl(registry: MetricsRegistry) -> str:
    """One JSON object per instrument (the ``snapshot()`` dicts)."""
    return "".join(
        json.dumps(snapshot) + "\n"
        for snapshot in registry.snapshot().values()
    )


def to_table(registry: MetricsRegistry, title: str = "metrics") -> str:
    """Human-readable summary table (the ``repro stats`` default)."""
    rows: List[Tuple[str, str, str]] = []
    for name, instrument in sorted(registry.instruments().items()):
        if isinstance(instrument, Histogram):
            detail = (f"n={instrument.count} mean={instrument.mean:.4g}"
                      if instrument.count else "n=0")
            rows.append((name, "histogram", detail))
        elif isinstance(instrument, Gauge):
            rows.append((name, "gauge", _format_value(instrument.value)))
        else:
            rows.append((name, "counter", _format_value(instrument.value)))
    if not rows:
        return f"{title}\n(no metrics recorded)"
    return format_table(("metric", "kind", "value"), rows, title=title)


def snapshot_dict(registry: MetricsRegistry) -> Dict[str, Dict[str, object]]:
    """Plain-dict snapshot (JSON-ready), for programmatic consumers."""
    return registry.snapshot()
