"""The structured event bus: typed records, subscribers, JSONL sink.

Metrics answer "how many / how fast"; events answer "what exactly
happened, in order". Instrumented layers emit typed records
(dataclasses, one per kind in :data:`repro.obs.names.EVENTS`) onto a
process-wide :class:`EventBus`. With no subscribers an ``emit`` is one
truthiness check — the hot path never pays for serialization nobody
asked for. Attach a :class:`JsonlSink` (or any callable) to stream
records out; :func:`repro.analysis.traces.merge_event_stream` folds the
same records into a captured simulation trace.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import asdict, dataclass, fields
from typing import Callable, Dict, IO, Iterator, List, Union

Subscriber = Callable[["ObsEvent"], None]


@dataclass(frozen=True)
class ObsEvent:
    """Base event record; subclasses set ``kind`` and add fields."""

    kind = "event"

    def record(self) -> Dict[str, object]:
        """Flat JSON-ready dict, ``kind`` first."""
        data: Dict[str, object] = {"kind": self.kind}
        data.update(asdict(self))
        return data


@dataclass(frozen=True)
class ImpressionDelivered(ObsEvent):
    kind = "impression_delivered"

    ad_id: str
    account_id: str
    user_id: str
    price: float
    impression_seq: int


@dataclass(frozen=True)
class ClickRecorded(ObsEvent):
    kind = "click_recorded"

    ad_id: str
    user_id: str
    click_seq: int


@dataclass(frozen=True)
class AdSubmitted(ObsEvent):
    kind = "ad_submitted"

    ad_id: str
    account_id: str
    approved: bool
    review_note: str = ""


@dataclass(frozen=True)
class BudgetExhausted(ObsEvent):
    kind = "budget_exhausted"

    account_id: str
    last_charge: float


@dataclass(frozen=True)
class TreadsLaunched(ObsEvent):
    kind = "treads_launched"

    provider: str
    launched: int
    rejected: int


class EventBus:
    """Fan-out of typed events to zero or more subscribers.

    ``emit`` with no subscribers returns immediately (check ``active``
    first to skip even building the event object on hot paths).
    Subscriber exceptions propagate — observability code that throws is
    a bug to surface, not swallow.
    """

    def __init__(self) -> None:
        self._subscribers: List[Subscriber] = []

    @property
    def active(self) -> bool:
        return bool(self._subscribers)

    def subscribe(self, subscriber: Subscriber) -> Callable[[], None]:
        """Attach a subscriber; returns a zero-arg detach callable."""
        self._subscribers.append(subscriber)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(subscriber)
            except ValueError:
                pass

        return unsubscribe

    def emit(self, event: ObsEvent) -> None:
        if not self._subscribers:
            return
        for subscriber in list(self._subscribers):
            subscriber(event)

    @contextmanager
    def capture(self) -> Iterator[List[ObsEvent]]:
        """Collect every event emitted inside the block into a list."""
        collected: List[ObsEvent] = []
        unsubscribe = self.subscribe(collected.append)
        try:
            yield collected
        finally:
            unsubscribe()


class JsonlSink:
    """Subscriber writing one JSON object per event to a stream."""

    def __init__(self, stream: IO[str]):
        self._stream = stream
        self.records_written = 0

    def __call__(self, event: ObsEvent) -> None:
        self._stream.write(json.dumps(event.record()))
        self._stream.write("\n")
        self.records_written += 1


_BUS = EventBus()


def bus() -> EventBus:
    """The process-wide event bus."""
    return _BUS


_EVENT_TYPES = {
    cls.kind: cls
    for cls in (ImpressionDelivered, ClickRecorded, AdSubmitted,
                BudgetExhausted, TreadsLaunched)
}


def event_from_record(record: Dict[str, object]) -> ObsEvent:
    """Rebuild a typed event from its :meth:`ObsEvent.record` dict.

    Unknown kinds raise :class:`ValueError`; extra keys are rejected by
    the dataclass constructor — a round-tripped stream is either intact
    or loudly broken.
    """
    kind = record.get("kind")
    cls = _EVENT_TYPES.get(kind)  # type: ignore[arg-type]
    if cls is None:
        raise ValueError(f"unknown event kind {kind!r}")
    kwargs = {k: v for k, v in record.items() if k != "kind"}
    allowed = {f.name for f in fields(cls)}
    unexpected = set(kwargs) - allowed
    if unexpected:
        raise ValueError(
            f"unexpected fields for {kind!r}: {sorted(unexpected)}"
        )
    return cls(**kwargs)  # type: ignore[arg-type]


def load_jsonl_events(
    text_or_lines: Union[str, Iterator[str], List[str]],
) -> List[ObsEvent]:
    """Parse a JSONL event stream back into typed records."""
    if isinstance(text_or_lines, str):
        lines: Union[List[str], Iterator[str]] = text_or_lines.splitlines()
    else:
        lines = text_or_lines
    events: List[ObsEvent] = []
    for line in lines:
        line = line.strip()
        if line:
            events.append(event_from_record(json.loads(line)))
    return events
