"""The instrument name catalog: every metric, event kind, and span name.

One authoritative table per signal type. Modules creating instruments
pull help text and histogram buckets from here so the same name always
carries the same schema, and ``docs/observability.md`` is diffed against
these tables by ``tests/obs/test_docs_sync.py`` — adding an instrument
without documenting it (or documenting one that does not exist) fails
the suite.

Naming convention: ``<layer>.<noun>[_<verb>]``, dot-separated, all
lowercase — ``delivery.slots_served``, ``auction.contenders``. The
Prometheus exporter rewrites dots to underscores; everything else keeps
the dotted form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

#: Default histogram buckets for small non-negative counts (candidate
#: set sizes, contender counts): upper bounds, +Inf implied.
COUNT_BUCKETS: Tuple[float, ...] = (0, 1, 2, 5, 10, 25, 50, 100, 250, 500)

#: Default histogram buckets for CPM-denominated dollar amounts.
CPM_BUCKETS: Tuple[float, ...] = (0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0)

#: Default histogram buckets for wall-clock durations in seconds.
SECONDS_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 30.0,
)

#: Finer-grained duration buckets for request latencies: the serving
#: runtime's p50/p95/p99 come out of these (see ``Histogram.quantile``),
#: so the sub-100ms range gets most of the resolution.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0002, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


@dataclass(frozen=True)
class MetricSpec:
    """Catalog entry: what kind of instrument a name denotes."""

    kind: str
    help: str
    buckets: Optional[Tuple[float, ...]] = None


METRICS: Dict[str, MetricSpec] = {
    # -- delivery engine ---------------------------------------------------
    "delivery.slots_served": MetricSpec(
        COUNTER, "Ad slots auctioned by the delivery engine."),
    "delivery.impressions_delivered": MetricSpec(
        COUNTER, "Impressions placed in user feeds (auction wins)."),
    "delivery.match_cache_hits": MetricSpec(
        COUNTER, "Per-run match-cache lookups answered from cache."),
    "delivery.match_cache_misses": MetricSpec(
        COUNTER, "Per-run match-cache lookups that evaluated specs."),
    "delivery.candidate_bucket_size": MetricSpec(
        HISTOGRAM, "Candidate index entries probed per cache-miss slot.",
        COUNT_BUCKETS),
    "delivery.frequency_cap_rejections": MetricSpec(
        COUNTER, "Matched candidates skipped because the per-user "
                 "frequency cap was already reached."),
    "delivery.saturation_pruned": MetricSpec(
        COUNTER, "Capped ads pruned from a user's cached match list."),
    "delivery.clicks_recorded": MetricSpec(
        COUNTER, "Ad clicks recorded by the platform."),
    "delivery.sweep_rounds": MetricSpec(
        COUNTER, "Vectorized batch-sweep rounds executed by "
                 "sweep_slots (each auctions one slot per still-active "
                 "user in the swept row range)."),
    "delivery.sweep_fallback_specs": MetricSpec(
        COUNTER, "Sweep candidates whose targeting spec could not be "
                 "lowered to a column-mask program and was evaluated "
                 "with the per-user compiled matcher instead."),
    "delivery.sweep_budget_fallback_rounds": MetricSpec(
        COUNTER, "Sweep rounds replayed through the scalar per-user "
                 "path because an account's budget could flip "
                 "mid-round (affordability pre-check failed)."),
    # -- auction -----------------------------------------------------------
    "auction.contenders": MetricSpec(
        HISTOGRAM, "Per-account contenders entering each slot auction.",
        COUNT_BUCKETS),
    "auction.clearing_price_cpm": MetricSpec(
        HISTOGRAM, "Clearing price of won auctions, CPM dollars.",
        CPM_BUCKETS),
    "auction.slots_won": MetricSpec(
        COUNTER, "Auctions won by a tracked (submitted) ad."),
    "auction.slots_lost": MetricSpec(
        COUNTER, "Auctions where ambient competition outbid every "
                 "tracked contender (or none was eligible)."),
    # -- targeting compiler ------------------------------------------------
    "targeting.specs_compiled": MetricSpec(
        COUNTER, "Targeting specs lowered to flat matchers."),
    "targeting.compile_cache_hits": MetricSpec(
        COUNTER, "compile_spec calls served from the compiled-spec "
                 "cache."),
    "targeting.specs_lowered": MetricSpec(
        COUNTER, "Targeting specs lowered to column-mask programs."),
    "targeting.lower_fallbacks": MetricSpec(
        COUNTER, "lower_spec calls that declined (unlowerable node), "
                 "flagging the spec for the per-user matcher."),
    # -- platform facade ---------------------------------------------------
    "platform.ads_submitted": MetricSpec(
        COUNTER, "Ads submitted through the advertiser API."),
    "platform.ads_rejected": MetricSpec(
        COUNTER, "Submitted ads rejected by policy review."),
    "platform.users_registered": MetricSpec(
        COUNTER, "User accounts created."),
    # -- billing -----------------------------------------------------------
    "billing.impressions_charged": MetricSpec(
        COUNTER, "Impressions billed to advertiser accounts."),
    "billing.budget_exhausted": MetricSpec(
        COUNTER, "Accounts whose budget crossed to zero (or below the "
                 "smallest billable amount) while being charged."),
    # -- transparency provider --------------------------------------------
    "provider.treads_launched": MetricSpec(
        COUNTER, "Treads that passed review and went ACTIVE."),
    "provider.treads_rejected": MetricSpec(
        COUNTER, "Treads rejected by the platform's ad review."),
    "provider.decode_packs_published": MetricSpec(
        COUNTER, "Decode packs published to subscribers."),
    # -- serving runtime ---------------------------------------------------
    "serve.requests_submitted": MetricSpec(
        COUNTER, "Requests accepted into a shard queue."),
    "serve.requests_served": MetricSpec(
        COUNTER, "Requests that completed a delivery pass (SERVED)."),
    "serve.requests_shed": MetricSpec(
        COUNTER, "Requests shed by admission control (queue full)."),
    "serve.requests_timeout": MetricSpec(
        COUNTER, "Requests whose deadline expired before service "
                 "(shed at dequeue, before any delivery work)."),
    "serve.requests_errored": MetricSpec(
        COUNTER, "Requests that raised during a delivery pass (ERROR)."),
    "serve.errors": MetricSpec(
        COUNTER, "ERROR results, with a per-exception-type breakdown: "
                 "each failure also increments a dynamic "
                 "serve.errors.<ExceptionType> counter (CamelCase "
                 "suffix, e.g. serve.errors.CatalogError)."),
    "serve.queue_depth": MetricSpec(
        GAUGE, "Requests currently queued across all shards."),
    "serve.batch_size": MetricSpec(
        HISTOGRAM, "Requests coalesced into one micro-batched delivery "
                   "pass.", COUNT_BUCKETS),
    "serve.request_latency_s": MetricSpec(
        HISTOGRAM, "End-to-end request latency (submit to result), "
                   "seconds.", LATENCY_BUCKETS),
    "serve.service_time_s": MetricSpec(
        HISTOGRAM, "Per-request delivery service time on the serving "
                   "shard (excludes queueing and IPC), seconds.",
        LATENCY_BUCKETS),
    "serve.ipc_batches": MetricSpec(
        COUNTER, "Request batches framed to shard worker processes."),
    "serve.ipc_bytes": MetricSpec(
        COUNTER, "Bytes exchanged with shard worker processes, both "
                 "directions (frame headers included)."),
    "serve.workers_lost": MetricSpec(
        COUNTER, "Shard worker processes lost mid-run (connection "
                 "dropped before a clean shutdown)."),
    "serve.telemetry_polls": MetricSpec(
        COUNTER, "Periodic telemetry samples taken by the runtime's "
                 "streaming thread (worker registries polled + merged "
                 "into the live time series)."),
    "serve.trace_spans_merged": MetricSpec(
        COUNTER, "Spans recorded in shard worker processes and adopted "
                 "into the parent tracer over IPC."),
    # -- service-level objectives -----------------------------------------
    "slo.availability": MetricSpec(
        GAUGE, "SERVED / resolved requests for the scored run "
               "(shed, timeout and error all spend error budget)."),
    "slo.error_budget_burn_rate": MetricSpec(
        GAUGE, "Observed error rate over the rate the availability "
               "target allows (1.0 = exactly on budget)."),
    # -- HTTP gateway ------------------------------------------------------
    "gateway.connections": MetricSpec(
        COUNTER, "TCP connections accepted by the HTTP gateway."),
    "gateway.requests": MetricSpec(
        COUNTER, "HTTP requests parsed and routed by the gateway."),
    "gateway.http_errors": MetricSpec(
        COUNTER, "HTTP responses with a 4xx/5xx status (parse "
                 "failures, unknown routes, shed/timeout mappings)."),
    "gateway.request_s": MetricSpec(
        HISTOGRAM, "Wall-clock time from a parsed request to its "
                   "response being queued for write, seconds.",
        LATENCY_BUCKETS),
    "gateway.mutations_journaled": MetricSpec(
        COUNTER, "Tenancy mutations (org/campaign/audience writes) "
                 "appended + flushed to the gateway journal before "
                 "their 2xx response."),
    # -- state store -------------------------------------------------------
    "store.records_appended": MetricSpec(
        COUNTER, "Change records appended to a state store journal."),
    "store.journal_bytes": MetricSpec(
        COUNTER, "Bytes written to on-disk JSONL journals."),
    "store.checkpoints_taken": MetricSpec(
        COUNTER, "Snapshots produced by StateStore.checkpoint()."),
    "store.restores": MetricSpec(
        COUNTER, "Snapshots loaded back via StateStore.restore()."),
    "store.records_replayed": MetricSpec(
        COUNTER, "Journal records folded back onto owners by replay()."),
    # -- user-side client --------------------------------------------------
    "client.syncs": MetricSpec(
        COUNTER, "TreadClient feed syncs (full decode passes)."),
    "client.treads_decoded": MetricSpec(
        COUNTER, "Provider ads successfully decoded to a payload."),
    "client.treads_undecoded": MetricSpec(
        COUNTER, "Provider ads no decoder recognised."),
}

#: Span names emitted by the built-in instrumentation, name -> meaning.
SPANS: Dict[str, str] = {
    "delivery.run_sessions": "One round-robin delivery run.",
    "delivery.run_until_saturated": "One saturating campaign run.",
    "serve_slot": "One ad slot: eligibility, auction, delivery.",
    "serve.batch": "One micro-batched delivery pass on a shard.",
    "serve.request": "One request, admission to resolved result.",
    "serve.queue_wait": "Time a request sat in its shard queue.",
    "serve.engine": "One request's delivery pass on the serving shard.",
    "serve.ipc_roundtrip": "One framed batch round-trip to a shard "
                           "worker process.",
    "loadgen.run": "One open-loop load-generation run.",
    "gateway.request": "One HTTP request: parse, route, handle, "
                       "response queued.",
    "provider.launch": "Render + submit one batch of Treads.",
    "client.sync": "One client-side feed scan and decode.",
    "store.checkpoint": "Dump every attached state owner to a snapshot.",
    "store.restore": "Load a snapshot back into the attached owners.",
    "store.replay": "Fold journal records onto the attached owners.",
}

#: Event kinds emitted on the obs event bus, kind -> meaning.
EVENTS: Dict[str, str] = {
    "impression_delivered": "An ad won a slot and entered a feed.",
    "click_recorded": "A delivered ad was clicked.",
    "ad_submitted": "An ad went through submission review.",
    "budget_exhausted": "An account's budget ran out mid-charge.",
    "treads_launched": "A provider launched a batch of Treads.",
}
