"""Single-victim attribute-inference attacks by a malicious advertiser.

Setting (paper section 5, citing Korolova [21] and Venkatadri et al.
[36]): the attacker knows a victim's PII and wants one bit — does the
victim have sensitive attribute A? The attacker is an ordinary
advertiser; its tools are exactly the advertiser API.

Two channels:

* :class:`SizeEstimateAttack` — upload a PII audience of the victim plus
  padding identities the attacker controls (fake accounts known NOT to
  have A), then compare the platform's *potential reach* for
  ``audience & attr:A`` against the no-victim baseline. Defeated by the
  platform's reach floor ("below 1,000"), which collapses 0 and 1 into
  the same answer.
* :class:`DeliveryInferenceAttack` — actually run an ad at
  ``audience & attr:A``: only the victim can match, so a single billed
  impression reveals the bit. This channel is what the paper's
  "we assume any such leaks will be patched" waves at; the simulator's
  ``min_delivery_match_count`` defense blocks it — and benchmark A3 shows
  the same defense breaks Treads on small opted-in audiences, because
  the attack and Treads exploit the *same* deliver-iff-match contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.platform.ads import AdCreative
from repro.platform.pii import record_from_raw
from repro.platform.platform import AdPlatform


@dataclass(frozen=True)
class AttackOutcome:
    """What the attacker concluded, plus scoring fields."""

    inferred_bit: Optional[bool]
    #: True when the attacker's conclusion matches ground truth.
    correct: Optional[bool]
    #: The observable the attacker based its conclusion on.
    observable: str


def _plant_padding(platform: AdPlatform, count: int,
                   prefix: str) -> List[Tuple[str, str]]:
    """Create attacker-controlled fake accounts with known PII and,
    crucially, WITHOUT the target attribute."""
    pii = []
    for index in range(count):
        user = platform.register_user()
        email = f"{prefix}-pad{index}@attacker.example"
        platform.users.attach_pii(user.user_id, "email", email)
        pii.append(("email", email))
    return pii


class SizeEstimateAttack:
    """Infer the victim's bit from audience-size estimates."""

    def __init__(self, platform: AdPlatform, padding: int = 25,
                 label: str = "size-attack"):
        self._platform = platform
        self.padding = padding
        self.label = label

    def run(self, victim_email: str, attr_id: str,
            ground_truth: bool) -> AttackOutcome:
        account = self._platform.create_ad_account(
            f"{self.label}-acct", budget=10.0
        )
        padding_pii = _plant_padding(self._platform, self.padding,
                                     self.label)
        records = [record_from_raw(kind, value)
                   for kind, value in padding_pii]
        records.append(record_from_raw("email", victim_email))
        audience = self._platform.create_pii_audience(
            account.account_id, records, name="probe"
        )
        with_attr = self._platform.estimate_spec_reach(
            account.account_id,
            f"audience:{audience.audience_id} & attr:{attr_id}",
        )
        without_victim_baseline = 0  # attacker knows its fakes lack A
        # The attacker can only act on the DISPLAYED estimate.
        if with_attr.is_floor:
            # "below 1,000" — indistinguishable from the baseline
            return AttackOutcome(
                inferred_bit=None, correct=None,
                observable=f"reach estimate: {with_attr}",
            )
        inferred = with_attr.displayed > without_victim_baseline
        return AttackOutcome(
            inferred_bit=inferred,
            correct=(inferred == ground_truth),
            observable=f"reach estimate: {with_attr}",
        )


class DeliveryInferenceAttack:
    """Infer the victim's bit from billed impressions of a narrow ad."""

    def __init__(self, platform: AdPlatform, padding: int = 25,
                 bid_cap_cpm: float = 10.0, label: str = "delivery-attack"):
        self._platform = platform
        self.padding = padding
        self.bid_cap_cpm = bid_cap_cpm
        self.label = label

    def run(self, victim_email: str, attr_id: str,
            ground_truth: bool) -> AttackOutcome:
        account = self._platform.create_ad_account(
            f"{self.label}-acct", budget=10.0
        )
        campaign = self._platform.create_campaign(account.account_id,
                                                  "probe")
        padding_pii = _plant_padding(self._platform, self.padding,
                                     self.label)
        records = [record_from_raw(kind, value)
                   for kind, value in padding_pii]
        records.append(record_from_raw("email", victim_email))
        audience = self._platform.create_pii_audience(
            account.account_id, records, name="probe"
        )
        ad = self._platform.submit_ad(
            account.account_id, campaign.campaign_id,
            AdCreative("Great deals", "This week only."),
            f"audience:{audience.audience_id} & attr:{attr_id}",
            bid_cap_cpm=self.bid_cap_cpm,
        )
        self._platform.run_until_saturated()
        report = self._platform.report(account.account_id, ad.ad_id)
        if report.impressions > 0:
            inferred: Optional[bool] = True
        else:
            # zero impressions is ambiguous: no match, lost auctions, or
            # the platform's narrow-targeting defense withheld the ad
            inferred = None
        return AttackOutcome(
            inferred_bit=inferred,
            correct=(inferred == ground_truth) if inferred is not None
            else None,
            observable=f"billed impressions: {report.impressions}",
        )
