"""Adversarial probes of the platform's privacy guarantees.

The paper's privacy analysis (sections 3.1 and 5) *assumes* "that the
advertising platform is designed not to leak the information of
individual users to advertisers" and that known leaks "will be patched".
This subpackage makes that assumption testable: it implements the
malicious-advertiser inference attacks from the literature the paper
cites (Korolova's microtargeting attack; the audience-size side channels
of Venkatadri et al.) against the simulated platform, so the benchmarks
can measure which defenses block which attacks — and what those defenses
cost Treads itself.
"""

from repro.attacks.audience_size import (
    DeliveryInferenceAttack,
    SizeEstimateAttack,
)

__all__ = ["DeliveryInferenceAttack", "SizeEstimateAttack"]
