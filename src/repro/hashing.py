"""PII normalization and hashing.

All major advertising platforms accept custom-audience uploads as *hashed*
PII (SHA-256 over a normalized form) so that the advertiser's raw customer
list never reaches the platform in the clear, and — in the Treads setting —
so that an opting-in user never reveals raw PII to the transparency
provider (paper section 3.1, "Supporting PII").

The normalization rules below follow the publicly documented requirements
of Facebook's Customer File custom audiences and Google Customer Match:

* emails: trim, lowercase;
* phone numbers: digits only, with a default country code prefixed when the
  national significant number is given without one;
* names: trim, lowercase, strip punctuation and inner whitespace;
* ZIP codes: first five digits (US) / trimmed lowercase otherwise.
"""

from __future__ import annotations

import hashlib
import re
from typing import Iterable, List

_WHITESPACE_RE = re.compile(r"\s+")
_NON_DIGIT_RE = re.compile(r"\D")
_NAME_STRIP_RE = re.compile(r"[^a-z]")

#: Hex-digest length of SHA-256 — used to recognise already-hashed input.
SHA256_HEX_LEN = 64
_HEX_RE = re.compile(r"^[0-9a-f]{64}$")


def normalize_email(email: str) -> str:
    """Normalize an email address: trim surrounding whitespace, lowercase."""
    return email.strip().lower()


def normalize_phone(phone: str, default_country_code: str = "1") -> str:
    """Normalize a phone number to digits with a country code.

    ``"(617) 555-0199"`` becomes ``"16175550199"`` with the default US
    country code. A leading ``+`` marks an already-internationalized number
    and suppresses prefixing.
    """
    has_plus = phone.strip().startswith("+")
    digits = _NON_DIGIT_RE.sub("", phone)
    if not digits:
        return ""
    if has_plus:
        return digits
    if default_country_code and not digits.startswith(default_country_code):
        return default_country_code + digits
    return digits


def normalize_name(name: str) -> str:
    """Normalize a personal name: lowercase, letters only."""
    return _NAME_STRIP_RE.sub("", name.strip().lower())


def normalize_zip(zip_code: str) -> str:
    """Normalize a postal code: US ZIP+4 is truncated to five digits."""
    cleaned = zip_code.strip().lower()
    if re.match(r"^\d{5}(-\d{4})?$", cleaned):
        return cleaned[:5]
    return _WHITESPACE_RE.sub("", cleaned)


def normalize_maid(maid: str) -> str:
    """Normalize a mobile advertising ID (IDFA/AAID): lowercase hex+dash.

    Platforms accept device-id lists for activity-based targeting (paper
    section 2.1: "advertising IDs from mobile devices"); normalization
    mirrors the documented requirements (lowercase, keep dashes).
    """
    return "".join(
        ch for ch in maid.strip().lower() if ch in "0123456789abcdef-"
    )


_NORMALIZERS = {
    "email": normalize_email,
    "phone": normalize_phone,
    "first_name": normalize_name,
    "last_name": normalize_name,
    "zip": normalize_zip,
    "maid": normalize_maid,
}

#: PII kinds accepted by the platforms' custom-audience upload endpoints.
PII_KINDS = tuple(sorted(_NORMALIZERS))


def normalize_pii(kind: str, value: str) -> str:
    """Normalize one PII value according to its ``kind``.

    Raises :class:`KeyError` for unknown kinds so that typos fail loudly.
    """
    return _NORMALIZERS[kind](value)


def hash_pii(kind: str, value: str) -> str:
    """Normalize then SHA-256 one PII value; returns the hex digest.

    The digest is namespaced by kind (``sha256(kind + ":" + normalized)``)
    so that a phone number and a ZIP code with the same digits cannot
    collide across kinds.
    """
    normalized = normalize_pii(kind, value)
    return hashlib.sha256(f"{kind}:{normalized}".encode("utf-8")).hexdigest()


def is_hashed(value: str) -> bool:
    """Return True when ``value`` looks like a SHA-256 hex digest."""
    return bool(_HEX_RE.match(value))


def hash_pii_batch(kind: str, values: Iterable[str]) -> List[str]:
    """Hash a batch of same-kind PII values, preserving order."""
    return [hash_pii(kind, value) for value in values]
