"""The ad delivery engine.

Delivery stitches everything together: as users browse, their sessions
expose ad slots; for each slot the engine collects the active ads whose
targeting the user satisfies (the deliver-iff-match contract), auctions
the slot against ambient competing demand, charges the winner, and places
the winning creative in the user's feed.

The per-user **frequency cap** (default 1 impression per ad per user)
reflects how a transparency provider would configure Tread campaigns: each
Tread needs to reach each matching user exactly once, which is what makes
the paper's per-attribute cost exactly one CPM-priced impression.

Performance model (see docs/api_tour.md, "Performance model"): eligibility
runs against an **inverted candidate index** — ads are bucketed under one
attribute/page their spec *requires* (computed by the targeting compiler),
so a slot only evaluates ads reachable from the user's own attributes and
page likes, each via a **compiled flat matcher** instead of re-walking the
spec's AST. Reporting reads (per-ad impressions, clicks, unique reach) are
maintained incrementally at delivery time instead of scanning the logs.

State model (PR 4, see docs/state.md): the engine is a
:class:`~repro.store.store.StateOwner`. Every impression and click is a
journal record — ``Impression`` *is*
:class:`repro.store.records.ImpressionRecorded` and ``Click`` *is*
:class:`repro.store.records.ClickRecorded` — appended to the engine's
:class:`~repro.store.store.StateStore` at commit time and then folded
into the in-memory structures by one shared ``_apply_*`` path. Replay,
snapshot restore, and shard migration reuse that same fold, minus the
journaling and obs emission that only the live path performs.
"""

from __future__ import annotations

import itertools
import logging
from collections import Counter, defaultdict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import StoreError
from repro.obs import events as obs_events
from repro.obs import tracing as obs_tracing
from repro.obs.metrics import MetricsRegistry, registry as obs_registry
from repro.platform import bitset
from repro.platform.ads import Ad, AdImage, AdInventory, AdStatus
from repro.platform.auction import (
    AuctionOutcome,
    CompetingBidDraw,
    observe_auctions,
    run_auction,
)
from repro.platform.audiences import AudienceRegistry
from repro.platform.billing import BillingLedger
from repro.platform.targeting import AudienceResolver, CompiledSpec, lower_spec
from repro.platform.users import UserProfile, UserStore
from repro.store.records import (
    CapIncremented,
    ChangeRecord,
    ClickRecorded,
    ImpressionRecorded,
    record_from_dict,
    record_to_dict,
)
from repro.store.store import MemoryStore, StateStore

_EMPTY_SET: frozenset = frozenset()

_log = logging.getLogger("repro.platform.delivery")

#: Platform-internal record of one delivered impression — the journal
#: record *is* the log entry (see the state-model note above).
Impression = ImpressionRecorded

#: Platform-internal record of one ad click.
Click = ClickRecorded


@dataclass(frozen=True)
class DeliveredAd:
    """What lands in a user's feed: the creative plus a handle for the
    "Why am I seeing this?" explanation. The user never sees the bid,
    the price, or the full targeting spec (the platform's explanation is
    deliberately partial — see :mod:`repro.platform.explanations`).

    ``image`` is a shared read-only view of the rendered creative image —
    users see ad images, so a Tread-decoding browser extension can scan
    their pixels. Creative pixels are immutable post-render, so one frozen
    buffer serves every impression (no per-impression deep copy).
    """

    ad_id: str
    account_id: str
    headline: str
    body: str
    image: Optional["AdImage"]
    landing_url: Optional[str]
    impression_seq: int

    @property
    def has_image(self) -> bool:
        return self.image is not None


@dataclass
class DeliveryStats:
    """Counters for one delivery run."""

    slots: int = 0
    filled_by_tracked_ads: int = 0
    lost_to_competition: int = 0
    no_eligible_ad: int = 0


#: Process-wide engine id sequence for engines constructed without an
#: explicit ``engine_id`` (debuggability: shard-owned engines name the
#: shard instead).
_ENGINE_IDS = itertools.count()


class DeliveryEngine:
    """Serves ad slots for browsing users.

    Thread ownership
    ----------------
    An engine instance is **single-owner**: all mutating calls
    (``serve_slot``, the run loops, ``record_click``, ``import_state``)
    must come from one thread at a time. The engine takes no locks —
    the serving layer (:mod:`repro.serve`) gives each shard its own
    engine plus a shard lock and routes each user to exactly one shard,
    which is what makes lock-free per-engine state safe. Shared *read*
    structure (the inventory's ad list, compiled matchers from the
    process-wide compile cache) is safe across engines because compiled
    matchers are pure functions; everything mutable — match caches,
    caps, feeds, logs, reporting views — is per-instance, created in
    ``__init__`` and never shared. ``engine_id`` names the instance in
    logs and :meth:`snapshot_stats` so shard-owned engines stay
    debuggable.
    """

    store_name = "delivery"
    handled_kinds: Tuple[str, ...] = (
        ImpressionRecorded.kind, ClickRecorded.kind, CapIncremented.kind,
    )

    def __init__(
        self,
        inventory: AdInventory,
        audiences: AudienceRegistry,
        ledger: BillingLedger,
        competing_draw: CompetingBidDraw,
        frequency_cap: int = 1,
        floor_price_cpm: float = 0.0,
        min_match_count: int = 0,
        metrics: Optional[MetricsRegistry] = None,
        engine_id: Optional[str] = None,
        store: Optional[StateStore] = None,
        compact: bool = False,
    ):
        if frequency_cap < 1:
            raise ValueError("frequency cap must be >= 1")
        if min_match_count < 0:
            raise ValueError("min match count cannot be negative")
        if compact and frequency_cap != 1:
            raise ValueError("compact delivery requires a frequency cap "
                             "of 1")
        self.engine_id = (engine_id if engine_id is not None
                          else f"engine-{next(_ENGINE_IDS)}")
        self._store = store if store is not None else MemoryStore()
        self._store.attach(self)
        self._inventory = inventory
        self._audiences = audiences
        self._ledger = ledger
        self._competing_draw = competing_draw
        self.frequency_cap = frequency_cap
        self.floor_price = floor_price_cpm / 1000.0
        self.min_match_count = min_match_count
        self._user_store: Optional[UserStore] = None
        #: Columnar stores expose ``row_of``; bound once at attach time.
        self._row_of: Optional[Any] = None
        self._match_count_cache: Dict[str, int] = {}
        self._impression_seq = 0
        #: Million-user memory mode: per-impression structures (logs,
        #: feeds, per-pair cap counts) are replaced by per-ad shown-user
        #: bitsets plus count aggregates. Deliver-iff-match and the
        #: cap-of-1 invariant are unchanged; the APIs that *are* the
        #: per-impression state raise StoreError instead of lying.
        self._compact = compact
        #: Compact mode: ad_id -> bitset of user rows already shown.
        self._shown_bits: Dict[str, np.ndarray] = {}
        self._impression_count = 0
        self._impression_count_by_ad: Dict[str, int] = {}
        self._click_count = 0
        self._impressions: List[Impression] = []
        self._clicks: List[Click] = []
        self._feeds: Dict[str, List[DeliveredAd]] = defaultdict(list)
        #: (ad_id, user_id) -> impressions delivered. Tuple keys: no
        #: per-slot string building, no collision with ids containing ':'.
        self._shown_counts: Dict[Tuple[str, str], int] = {}
        #: user_id -> ads this user can no longer receive (cap reached).
        #: Incrementally maintained by :meth:`_deliver`; lets eligibility
        #: skip saturated candidates with one set lookup.
        self._capped_for_user: Dict[str, Set[str]] = {}
        # -- inverted candidate index (see _ensure_index) ------------------
        self._indexed_ad_count = 0
        #: attr_id -> [(ad, account, bid, matcher)] for ads whose spec
        #: requires that attribute.
        self._index_by_attr: Dict[str, List[tuple]] = {}
        #: page_id -> same, for ads anchored on a required page like.
        self._index_by_page: Dict[str, List[tuple]] = {}
        #: Ads with no attribute/page anchor — evaluated for every slot.
        self._index_general: List[tuple] = []
        # -- columnar (code-keyed) bucket maps (see _sync_code_maps) -------
        self._code_maps_key: Optional[tuple] = None
        self._attr_code_buckets: Dict[int, List[tuple]] = {}
        self._multi_anchor_cols: List[tuple] = []
        self._page_code_buckets: Dict[int, List[tuple]] = {}
        #: Resolver in force for spec evaluation. Delivery runs swap in a
        #: snapshot resolver (one membership materialization per audience
        #: per run); one-off serve_slot calls use the live resolver.
        self._resolver: AudienceResolver = audiences.is_member
        #: Per-run cache: user_id -> index entries whose spec matches the
        #: user. Match outcomes are static for the duration of one
        #: synchronous run (profiles, likes, and memberships cannot change
        #: mid-loop), so each (user, ad) pair is evaluated once per run
        #: instead of once per slot. None outside runs — a one-off
        #: serve_slot must see live state.
        self._match_cache: Optional[Dict[str, List[tuple]]] = None
        # -- indexed reporting views ---------------------------------------
        self._impressions_by_ad: Dict[str, List[Impression]] = {}
        self._reach_by_ad: Dict[str, Set[str]] = {}
        self._clicks_by_ad: Dict[str, int] = {}
        # -- observability -------------------------------------------------
        # Instruments resolve once, at construction (pass ``metrics`` or
        # swap the global registry *before* building the platform); the
        # per-slot cost is then a bound-method call, a no-op under
        # NULL_REGISTRY.
        reg = metrics if metrics is not None else obs_registry()
        # Hot paths branch on this flag instead of calling into null
        # instruments: when metrics are off, one attribute read per
        # event instead of a method call (bench_obs_overhead.py).
        self._obs_on = reg.enabled
        self._obs_slots = reg.counter("delivery.slots_served")
        self._obs_impressions = reg.counter("delivery.impressions_delivered")
        self._obs_cache_hits = reg.counter("delivery.match_cache_hits")
        self._obs_cache_misses = reg.counter("delivery.match_cache_misses")
        self._obs_bucket_size = reg.histogram(
            "delivery.candidate_bucket_size")
        self._obs_cap_rejections = reg.counter(
            "delivery.frequency_cap_rejections")
        self._obs_pruned = reg.counter("delivery.saturation_pruned")
        self._obs_clicks = reg.counter("delivery.clicks_recorded")
        self._obs_sweep_rounds = reg.counter("delivery.sweep_rounds")
        self._obs_sweep_fallback_specs = reg.counter(
            "delivery.sweep_fallback_specs")
        self._obs_sweep_budget_rounds = reg.counter(
            "delivery.sweep_budget_fallback_rounds")
        self._bus = obs_events.bus()

    # -- eligibility ---------------------------------------------------------

    def attach_user_store(self, users: UserStore) -> None:
        """Wire the platform's user store (needed for the narrow-targeting
        defense's match counting, and for compact mode's user-row
        bitsets)."""
        self._user_store = users
        self._row_of = getattr(users, "row_of", None)

    def _matches_enough_users(self, ad: Ad, matcher: CompiledSpec) -> bool:
        """Narrow-targeting defense: an ad whose full spec matches fewer
        than ``min_match_count`` users is withheld from every auction.

        The match count is snapshot once per ad (profiles are effectively
        static within a campaign run); this is the platform-side
        countermeasure to single-user delivery/billing inference (paper
        section 5) and is OFF by default, as on 2018 platforms.
        """
        if self.min_match_count <= 0 or self._user_store is None:
            return True
        cached = self._match_count_cache.get(ad.ad_id)
        if cached is None:
            resolver = self._resolver
            fn = matcher.fn
            cached = sum(
                1 for profile in self._user_store if fn(profile, resolver)
            )
            self._match_count_cache[ad.ad_id] = cached
        return cached >= self.min_match_count

    def _ensure_index(self) -> None:
        """Bring the inverted candidate index up to date.

        Each ad is compiled once and bucketed under exactly one *required*
        anchor — an attribute (preferred: most selective), else a page
        like, else the always-evaluated general bucket. Ads are never
        removed from the inventory, so maintenance is incremental: only
        ads added since the last sync are indexed. Status flips (pause,
        un-pause, review outcomes) and budget exhaustion need no index
        surgery — they are re-checked per candidate at evaluation time,
        so the index can never serve a stale verdict.
        """
        count = self._inventory.ad_count()
        if count == self._indexed_ad_count:
            return
        for ad in self._inventory.ads()[self._indexed_ad_count:]:
            matcher = ad.targeting.compiled()
            account = self._inventory.account(ad.account_id)
            entry = (ad, account, ad.bid_per_impression, matcher)
            if matcher.required_attributes:
                anchor = min(matcher.required_attributes)
                self._index_by_attr.setdefault(anchor, []).append(entry)
            elif matcher.required_pages:
                anchor = min(matcher.required_pages)
                self._index_by_page.setdefault(anchor, []).append(entry)
            else:
                self._index_general.append(entry)
        self._indexed_ad_count = count

    def _candidate_buckets(self, user: UserProfile) -> List[List[tuple]]:
        """Index buckets whose ads could possibly match ``user``.

        Every ad lives in exactly one bucket, so the union is
        duplicate-free: the buckets anchored on the user's own attributes
        and page likes, plus the general bucket. Columnar users
        (:class:`~repro.platform.colstore.UserView`) take the bitmap
        path: their set attribute/page *codes* are probed against
        code-keyed bucket maps, skipping the string round-trip entirely.
        """
        row = getattr(user, "row", None)
        if row is not None:
            return self._candidate_buckets_columnar(user, row)
        buckets: List[List[tuple]] = []
        by_attr = self._index_by_attr
        if by_attr:
            for attr_id in user.attribute_ids():
                bucket = by_attr.get(attr_id)
                if bucket is not None:
                    buckets.append(bucket)
        by_page = self._index_by_page
        if by_page:
            for page_id in user.liked_pages:
                bucket = by_page.get(page_id)
                if bucket is not None:
                    buckets.append(bucket)
        if self._index_general:
            buckets.append(self._index_general)
        return buckets

    def _sync_code_maps(self, cols: Any) -> None:
        """Key the anchor buckets by the column store's integer codes.

        Bucket lists are shared (appended to in place by
        :meth:`_ensure_index`), so the maps stay current until either
        new ads create new anchors or the store interns new attribute/
        page codes — both visible in the cache key below.
        """
        key = (id(cols), self._indexed_ad_count, len(cols.attrs),
               len(cols.pages), len(cols.multi_cols))
        if self._code_maps_key == key:
            return
        attr_map: Dict[int, List[tuple]] = {}
        multi_anchors: List[tuple] = []
        for attr_id, bucket in self._index_by_attr.items():
            code = cols.attrs.get(attr_id)
            if code is not None:
                attr_map[code] = bucket
            col = cols.multi_cols.get(attr_id)
            if col is not None:
                multi_anchors.append((col, bucket))
        page_map: Dict[int, List[tuple]] = {}
        for page_id, bucket in self._index_by_page.items():
            code = cols.pages.get(page_id)
            if code is not None:
                page_map[code] = bucket
        self._attr_code_buckets = attr_map
        self._multi_anchor_cols = multi_anchors
        self._page_code_buckets = page_map
        self._code_maps_key = key

    def _candidate_buckets_columnar(self, user: Any,
                                    row: int) -> List[List[tuple]]:
        """Bitmap candidate collection: probe the user's row directly.

        The row's set attribute codes (one ``to_indices`` over its
        bitset) and assigned multi columns index straight into the
        code-keyed bucket maps — no attribute-id strings are
        materialized on this path.
        """
        cols = user.columns
        self._sync_code_maps(cols)
        buckets: List[List[tuple]] = []
        attr_map = self._attr_code_buckets
        if attr_map:
            for code in cols.attr_codes_of(row):
                bucket = attr_map.get(int(code))
                if bucket is not None:
                    buckets.append(bucket)
        for col, bucket in self._multi_anchor_cols:
            if col[row]:
                buckets.append(bucket)
        page_map = self._page_code_buckets
        if page_map:
            for code in bitset.to_indices(cols.page_bits[row]):
                bucket = page_map.get(int(code))
                if bucket is not None:
                    buckets.append(bucket)
        if self._index_general:
            buckets.append(self._index_general)
        return buckets

    def _matched_entries(self, user: UserProfile) -> List[tuple]:
        """Index entries whose *targeting* matches ``user``.

        Pure spec match — the dynamic conditions (status, frequency cap,
        budget, min-match defense) are applied by the caller per slot.
        Inside a run the result is cached per user (matches are static
        for the run's duration); outside runs it is computed live.
        """
        cache = self._match_cache
        if cache is not None:
            cached = cache.get(user.user_id)
            if cached is not None:
                if self._obs_on:
                    self._obs_cache_hits.inc()
                return cached
        if self._obs_on:
            self._obs_cache_misses.inc()
        resolver = self._resolver
        matched: List[tuple] = []
        candidates = 0
        for bucket in self._candidate_buckets(user):
            candidates += len(bucket)
            for entry in bucket:
                if entry[3].fn(user, resolver):
                    matched.append(entry)
        if self._obs_on:
            self._obs_bucket_size.observe(candidates)
        if self._compact and matched:
            # Compact mode keeps no per-pair cap counts: ads already
            # shown (cap of 1) are filtered here, at match time, via the
            # per-ad shown bitsets. Within a session the cache pruning in
            # _apply_impression keeps the list current, so the slot path
            # needs no cap check at all.
            row = self._compact_row(user.user_id)
            if row is not None:
                matched = [entry for entry in matched
                           if not self._shown_to(entry[0].ad_id, row)]
        if cache is not None:
            cache[user.user_id] = matched
        return matched

    def _compact_row(self, user_id: str) -> Optional[int]:
        if self._row_of is None:
            raise StoreError(
                f"{self.engine_id}: compact delivery needs a columnar "
                "user store attached")
        return self._row_of(user_id)

    def _shown_to(self, ad_id: str, row: int) -> bool:
        bits = self._shown_bits.get(ad_id)
        return bits is not None and bitset.test_bit(bits, row)

    def _slot_contenders(self, user: UserProfile) -> Tuple[List[Ad], bool]:
        """Eligible ads for one slot, already deduplicated per account.

        Returns ``(contenders, had_eligible)``. The auction only ever
        considers each account's best eligible ad (same bid/ad-id
        ordering as :func:`repro.platform.auction.run_auction`), so the
        dedup happens here, during the one pass over matched entries —
        the auction then runs on the handful of per-account champions
        instead of re-scanning the full eligible list. ``had_eligible``
        feeds the run-loop stats (lost-to-competition vs no-eligible-ad)
        without a second eligibility evaluation.
        """
        self._ensure_index()
        capped = self._capped_for_user.get(user.user_id, _EMPTY_SET)
        check_min_match = self.min_match_count > 0
        active = AdStatus.ACTIVE
        best: Dict[str, tuple] = {}
        for ad, account, bid, matcher in self._matched_entries(user):
            if ad.status is not active:
                continue
            if ad.ad_id in capped:
                if self._obs_on:
                    self._obs_cap_rejections.inc()
                continue
            if account.budget + 1e-12 < bid:  # inlined Account.can_afford
                continue
            if check_min_match and \
                    not self._matches_enough_users(ad, matcher):
                continue
            held = best.get(ad.account_id)
            if held is None or bid > held[0] or \
                    (bid == held[0] and ad.ad_id < held[1].ad_id):
                best[ad.account_id] = (bid, ad)
        return [pair[1] for pair in best.values()], bool(best)

    # -- slot serving --------------------------------------------------------

    def serve_slot(self, user: UserProfile) -> AuctionOutcome:
        """Auction one ad slot in ``user``'s session; deliver the winner."""
        with obs_tracing.tracer().span("serve_slot", user_id=user.user_id):
            contenders, _ = self._slot_contenders(user)
            return self._auction_slot(user, contenders)

    def _auction_slot(self, user: UserProfile,
                      eligible: Sequence[Ad]) -> AuctionOutcome:
        """Auction one slot against a pre-computed eligible list.

        The run loops thread their eligibility result through here so
        each slot evaluates eligibility exactly once (previously the
        stats paths re-evaluated it after the auction).
        """
        if self._obs_on:
            self._obs_slots.inc()
        outcome = run_auction(
            eligible,
            competing_bid=self._competing_draw(),
            floor_price=self.floor_price,
        )
        if outcome.winner is not None:
            self._deliver(outcome.winner, user, outcome.price)
        return outcome

    def _deliver(self, ad: Ad, user: UserProfile, price: float) -> None:
        """Live delivery: charge, journal, fold, emit obs signals."""
        seq = self._impression_seq
        # The charge commits before the impression exists anywhere; a
        # raised BudgetError leaves the journal without a trace of this
        # slot. journal=False: the ImpressionRecorded appended below is
        # the journal entry for the whole delivery — impression and
        # charge are one atomic event with one record, and replay
        # re-derives the debit from it (apply_record below).
        self._ledger.charge_impression(
            ad_id=ad.ad_id,
            account_id=ad.account_id,
            amount=price,
            impression_seq=seq,
            journal=False,
        )
        impression = Impression(seq=seq, ad_id=ad.ad_id,
                                account_id=ad.account_id,
                                user_id=user.user_id, price=price)
        self._store.append(impression)
        self._apply_impression(impression, ad)
        if self._obs_on:
            self._obs_impressions.inc()
        if self._bus.active:
            self._bus.emit(obs_events.ImpressionDelivered(
                ad_id=ad.ad_id,
                account_id=ad.account_id,
                user_id=user.user_id,
                price=price,
                impression_seq=seq,
            ))

    def _apply_impression(self, impression: Impression,
                          ad: Optional[Ad] = None) -> None:
        """Fold one impression into every in-memory structure.

        Shared by the live path, snapshot restore, migration import, and
        journal replay — the non-live callers pass no ``ad`` (it is
        re-read from the shared inventory) and run with no match cache,
        so the live-only pruning below is naturally inert for them.
        """
        if ad is None:
            ad = self._inventory.ad(impression.ad_id)
        if self._compact:
            self._apply_impression_compact(impression, ad)
            return
        self._impressions.append(impression)
        # Reporting views, maintained at delivery time so report reads
        # never scan the full impression log.
        per_ad = self._impressions_by_ad.get(impression.ad_id)
        if per_ad is None:
            per_ad = self._impressions_by_ad[impression.ad_id] = []
            self._reach_by_ad[impression.ad_id] = set()
        per_ad.append(impression)
        self._reach_by_ad[impression.ad_id].add(impression.user_id)
        if impression.seq >= self._impression_seq:
            self._impression_seq = impression.seq + 1
        key = (impression.ad_id, impression.user_id)
        shown = self._shown_counts.get(key, 0) + 1
        self._shown_counts[key] = shown
        if shown >= self.frequency_cap:
            self._capped_for_user.setdefault(
                impression.user_id, set()).add(impression.ad_id)
            # Caps are monotone within a run, so a just-capped ad can be
            # pruned from the user's cached match list — later slots then
            # scan only still-deliverable entries instead of re-skipping
            # every capped one.
            cache = self._match_cache
            if cache is not None:
                matched = cache.get(impression.user_id)
                if matched is not None:
                    if self._obs_on:
                        self._obs_pruned.inc()
                    cache[impression.user_id] = [
                        entry for entry in matched if entry[0] is not ad
                    ]
        creative = ad.creative
        self._feeds[impression.user_id].append(
            DeliveredAd(
                ad_id=impression.ad_id,
                account_id=impression.account_id,
                headline=creative.headline,
                body=creative.body,
                image=(creative.image.frozen()
                       if creative.image is not None else None),
                landing_url=(
                    str(creative.landing_url) if creative.landing_url else None
                ),
                impression_seq=impression.seq,
            )
        )

    def _apply_impression_compact(self, impression: Impression,
                                  ad: Ad) -> None:
        """Compact fold: one bit and three counters per impression.

        Setting the user's bit in the ad's shown bitset *is* the cap
        state, the reach set, and the per-pair count all at once (cap of
        1 makes them coincide). No log entry, no feed entry.
        """
        row = self._compact_row(impression.user_id)
        if row is None:
            raise StoreError(
                f"{self.engine_id}: impression for unknown user "
                f"{impression.user_id!r} in compact mode")
        assert self._user_store is not None
        bits = self._shown_bits.get(impression.ad_id)
        if bits is None:
            bits = bitset.make_bitset(len(self._user_store))
            self._shown_bits[impression.ad_id] = bits
        if row >= bits.shape[0] * bitset.WORD_BITS:
            bits = bitset.ensure_width(bits, row + 1)
            self._shown_bits[impression.ad_id] = bits
        bitset.set_bit(bits, row)
        self._impression_count += 1
        self._impression_count_by_ad[impression.ad_id] = (
            self._impression_count_by_ad.get(impression.ad_id, 0) + 1)
        if impression.seq >= self._impression_seq:
            self._impression_seq = impression.seq + 1
        cache = self._match_cache
        if cache is not None:
            matched = cache.get(impression.user_id)
            if matched is not None:
                if self._obs_on:
                    self._obs_pruned.inc()
                cache[impression.user_id] = [
                    entry for entry in matched if entry[0] is not ad
                ]

    @contextmanager
    def serving_session(self) -> Iterator["DeliveryEngine"]:
        """Snapshot resolver + match cache for a multi-slot serving window.

        Inside the ``with`` block, audience memberships are materialized
        once per audience and ``(user, ad)`` spec matches are evaluated
        once per user — the fast-path state the run loops install.
        Valid across any window in which profiles, likes, and audience
        memberships do not change (one run loop; one serve-layer batch
        window). Re-entrant: nesting installs a fresh snapshot and
        restores the outer one on exit. The caller owns the engine for
        the duration (see the class docstring's thread-ownership note).
        """
        outer_resolver = self._resolver
        outer_cache = self._match_cache
        self._resolver = self._audiences.cached_resolver()
        self._match_cache = {}
        try:
            yield self
        finally:
            self._resolver = outer_resolver
            self._match_cache = outer_cache

    def run_sessions(
        self,
        users: Sequence[UserProfile],
        slots_per_user: int,
    ) -> DeliveryStats:
        """Serve ``slots_per_user`` ad slots for each user, round-robin.

        Round-robin (rather than user-at-a-time) interleaves demand the way
        concurrent browsing would, which matters when budgets run out
        mid-run.
        """
        stats = DeliveryStats()
        trc = obs_tracing.tracer()
        traced = trc.enabled
        with self.serving_session(), \
                trc.span("delivery.run_sessions", users=len(users),
                         slots_per_user=slots_per_user):
                for _ in range(slots_per_user):
                    for user in users:
                        if traced:
                            with trc.span("serve_slot",
                                          user_id=user.user_id):
                                contenders, had_eligible = \
                                    self._slot_contenders(user)
                                outcome = self._auction_slot(user,
                                                             contenders)
                        else:
                            contenders, had_eligible = \
                                self._slot_contenders(user)
                            outcome = self._auction_slot(user, contenders)
                        stats.slots += 1
                        if outcome.won:
                            stats.filled_by_tracked_ads += 1
                        elif outcome.competing_bid > 0 and had_eligible:
                            stats.lost_to_competition += 1
                        else:
                            stats.no_eligible_ad += 1
        _log.info(
            "run_sessions: %d slots (%d filled, %d lost, %d empty) "
            "for %d users",
            stats.slots, stats.filled_by_tracked_ads,
            stats.lost_to_competition, stats.no_eligible_ad, len(users),
        )
        return stats

    def run_until_saturated(
        self,
        users: Sequence[UserProfile],
        max_rounds: int = 50,
    ) -> DeliveryStats:
        """Serve slots until no tracked ad can deliver another impression.

        This is the Treads campaign mode: keep going until every matching
        (user, ad) pair has hit the frequency cap or budgets are spent.
        """
        stats = DeliveryStats()
        trc = obs_tracing.tracer()
        traced = trc.enabled
        # Within one run every eligibility condition is monotone —
        # caps only accumulate, budgets only shrink, statuses and
        # matches are static — so a user whose eligible set empties
        # can never regain one and is dropped from the rotation.
        with self.serving_session(), \
                trc.span("delivery.run_until_saturated",
                         users=len(users), max_rounds=max_rounds):
                active = list(users)
                for _ in range(max_rounds):
                    progressed = False
                    still_active: List[UserProfile] = []
                    for user in active:
                        if traced:
                            with trc.span("serve_slot",
                                          user_id=user.user_id):
                                contenders, had_eligible = \
                                    self._slot_contenders(user)
                                if not had_eligible:
                                    continue
                                still_active.append(user)
                                outcome = self._auction_slot(user,
                                                             contenders)
                        else:
                            contenders, had_eligible = \
                                self._slot_contenders(user)
                            if not had_eligible:
                                continue
                            still_active.append(user)
                            outcome = self._auction_slot(user, contenders)
                        stats.slots += 1
                        if outcome.won:
                            stats.filled_by_tracked_ads += 1
                            progressed = True
                        else:
                            stats.lost_to_competition += 1
                    active = still_active
                    if not progressed:
                        break
        _log.info(
            "run_until_saturated: %d slots (%d filled, %d lost) "
            "for %d users",
            stats.slots, stats.filled_by_tracked_ads,
            stats.lost_to_competition, len(users),
        )
        return stats

    # -- batch sweep ---------------------------------------------------------
    #
    # The vectorized twin of run_until_saturated for columnar stores:
    # eligibility is evaluated for a whole row range at once via
    # column-mask programs (repro.platform.targeting.lower_spec), each
    # round's per-user second-price auction is an argmax over a
    # (candidates x users) bit matrix processed in bounded blocks, and
    # the results fold in bulk (shown-bitset ORs, aggregate billing
    # debits, batched counters). Semantics — winners, prices, stats,
    # reports — are identical to running the scalar loop over the same
    # rows (pinned by tests/integration/test_columnar_equivalence.py);
    # the two escape hatches back to the scalar path are per-spec
    # (unlowerable Expr -> per-user matcher fills that ad's mask) and
    # per-round (an account budget that could flip eligibility mid-round
    # replays the round through serve_slot's exact code path).

    def sweep_slots(
        self,
        rows: Optional[Tuple[int, int]] = None,
        *,
        max_rounds: int = 50,
        block_rows: int = 1 << 16,
        _collect_delta: bool = False,
    ):
        """Saturate delivery over a columnar row range, vectorized.

        ``rows`` is a ``(start, stop)`` half-open row range (default:
        the whole store); ``start`` must be 64-aligned so bitset state
        slices word-cleanly. ``block_rows`` bounds the unpacked working
        set: each round's auction runs over blocks of at most this many
        users, so peak transient memory stays flat regardless of range
        size. Returns the same :class:`DeliveryStats` the scalar
        :meth:`run_until_saturated` would have produced.

        ``_collect_delta`` is the parallel partitioner's hook
        (:mod:`repro.platform.parsweep`): compact-mode sweeps then also
        return a per-ad ``{ad_id: (account_id, start_word, words,
        count, price_sum)}`` fold that a parent engine can absorb with
        :meth:`absorb_sweep_delta`.
        """
        users = self._user_store
        cols = getattr(users, "columns", None)
        if cols is None:
            raise StoreError(
                f"{self.engine_id}: batch sweep needs a columnar user "
                "store attached (attach_user_store with a "
                "ColumnarUserStore)")
        if self.frequency_cap != 1:
            raise ValueError("batch sweep requires a frequency cap of 1")
        if block_rows <= 0 or block_rows % bitset.WORD_BITS:
            raise ValueError("block_rows must be a positive multiple "
                             f"of {bitset.WORD_BITS}")
        start, stop = (0, cols.count) if rows is None else rows
        if start % bitset.WORD_BITS:
            raise ValueError(
                f"sweep range must start on a {bitset.WORD_BITS}-bit "
                f"boundary, got {start}")
        if not 0 <= start <= stop <= cols.count:
            raise ValueError(
                f"sweep range [{start}, {stop}) outside the store's "
                f"{cols.count} rows")
        stats = DeliveryStats()
        delta: Optional[Dict[str, list]] = {} if _collect_delta else None
        if _collect_delta and not self._compact:
            raise StoreError(
                f"{self.engine_id}: sweep deltas are a compact-mode "
                "fold (parallel sweeps merge bitsets and counters)")
        with self.serving_session():
            self._run_sweep(stats, cols, start, stop, max_rounds,
                            block_rows, delta)
        _log.info(
            "sweep_slots[%d:%d]: %d slots (%d filled, %d lost)",
            start, stop, stats.slots, stats.filled_by_tracked_ads,
            stats.lost_to_competition,
        )
        if _collect_delta:
            out = {
                ad_id: (rec[0], start // bitset.WORD_BITS, rec[1],
                        rec[2], rec[3])
                for ad_id, rec in delta.items()  # type: ignore[union-attr]
            }
            return stats, out
        return stats

    def _sweep_candidates(self) -> List[tuple]:
        """Every indexed entry once, in global auction-priority order.

        Sorting by (bid desc, ad id asc) makes "first eligible
        candidate" coincide with the scalar path's winner (per-account
        champions, then top-2 — both use exactly this order), so each
        user's winner is one argmax over the availability matrix.
        """
        self._ensure_index()
        entries: List[tuple] = []
        for bucket in self._index_by_attr.values():
            entries.extend(bucket)
        for bucket in self._index_by_page.values():
            entries.extend(bucket)
        entries.extend(self._index_general)
        if self.min_match_count > 0:
            entries = [e for e in entries
                       if self._matches_enough_users(e[0], e[3])]
        entries.sort(key=lambda e: (-e[2], e[0].ad_id))
        return entries

    def _sweep_eligibility(self, entries: List[tuple], cols: Any,
                           start: int, stop: int) -> np.ndarray:
        """Per-candidate packed eligibility over rows [start, stop).

        Bit ``r`` of row ``i`` (relative to ``start``) says entry ``i``'s
        spec matches store row ``start + r``. Lowered specs evaluate as
        one mask program; unlowerable specs fall back to the per-user
        compiled matcher (counted by ``delivery.sweep_fallback_specs``).
        """
        from repro.platform.colstore import UserView
        n = stop - start
        avail = np.zeros((len(entries), bitset.words_for(n)),
                         dtype=np.uint64)
        bits_resolver = getattr(
            self._audiences, "member_bitset_cached", None)
        fallbacks = 0
        for i, (ad, _account, _bid, matcher) in enumerate(entries):
            program = lower_spec(ad.targeting)
            if program is not None:
                flags = program.evaluate(cols, start, stop,
                                         resolver=bits_resolver)
            else:
                fallbacks += 1
                fn = matcher.fn
                resolver = self._resolver
                store = self._user_store
                flags = np.zeros(n, dtype=bool)
                for r in range(start, stop):
                    if fn(UserView(store, r), resolver):
                        flags[r - start] = True
            avail[i] = bitset.pack_bools(flags)
        if self._obs_on and fallbacks:
            self._obs_sweep_fallback_specs.inc(fallbacks)
        return avail

    def _sweep_subtract_shown(self, avail: np.ndarray,
                              entries: List[tuple],
                              start: int, stop: int) -> None:
        """Remove already-shown (capped) pairs from the availability
        matrix. Idempotent — also the resync after a scalar fallback
        round delivered through the per-impression path."""
        range_words = avail.shape[1]
        word0 = start // bitset.WORD_BITS
        if self._compact:
            for i, entry in enumerate(entries):
                shown = self._shown_bits.get(entry[0].ad_id)
                if shown is None:
                    continue
                part = shown[word0:word0 + range_words]
                if part.size:
                    avail[i, :part.size] &= ~part
            return
        if not self._capped_for_user or self._row_of is None:
            return
        position = {e[0].ad_id: i for i, e in enumerate(entries)}
        for user_id, ads in self._capped_for_user.items():
            row = self._row_of(user_id)
            if row is None or not start <= row < stop:
                continue
            rel = row - start
            for ad_id in ads:
                i = position.get(ad_id)
                if i is not None:
                    bitset.clear_bit(avail[i], rel)

    def _run_sweep(self, stats: DeliveryStats, cols: Any, start: int,
                   stop: int, max_rounds: int, block_rows: int,
                   delta: Optional[Dict[str, list]]) -> None:
        from repro.platform.colstore import UserView
        n = stop - start
        if n == 0:
            return
        entries = self._sweep_candidates()
        if not entries:
            return
        avail = self._sweep_eligibility(entries, cols, start, stop)
        self._sweep_subtract_shown(avail, entries, start, stop)
        account_index: Dict[str, int] = {}
        acct_idx = np.empty(len(entries), dtype=np.int64)
        for i, entry in enumerate(entries):
            acct_idx[i] = account_index.setdefault(
                entry[0].account_id, len(account_index))
        bids = np.array([e[2] for e in entries], dtype=np.float64)
        active = AdStatus.ACTIVE
        draw = self._competing_draw
        constant = getattr(draw, "constant", None)
        floor = self.floor_price
        obs_on = self._obs_on

        for _ in range(max_rounds):
            # Round candidates: the dynamic checks the scalar slot path
            # applies per user, hoisted — status and affordability are
            # user-independent, so one pass per round suffices.
            rc = [i for i, e in enumerate(entries)
                  if e[0].status is active and e[1].budget + 1e-12 >= e[2]]
            if not rc:
                break
            rc_arr = np.asarray(rc, dtype=np.int64)
            mat = avail if len(rc) == len(entries) else avail[rc_arr]
            acct_rc = acct_idx[rc_arr]
            multi_account = len(np.unique(acct_rc)) > 1
            mat_bytes = mat.view(np.uint8)

            # Phase A: per-block winner/runner-up selection. Both are
            # draw-independent (the competing bid only decides win/lose
            # and price), so no RNG is consumed before the budget
            # certificate — a fallback round must replay with a virgin
            # draw stream.
            win_rows: List[np.ndarray] = []
            win_cands: List[np.ndarray] = []
            win_runner: List[np.ndarray] = []
            contender_counts: List[np.ndarray] = []
            for r0 in range(0, n, block_rows):
                r1 = min(r0 + block_rows, n)
                nb = r1 - r0
                block = np.unpackbits(
                    mat_bytes[:, r0 // 8: r0 // 8 + (nb + 7) // 8],
                    axis=1, count=nb, bitorder="little")
                positions = np.arange(nb)
                wpos = block.argmax(axis=0)
                has = block[wpos, positions] == 1
                if not has.any():
                    continue
                hrows = np.flatnonzero(has)
                if multi_account:
                    winner_acct = acct_rc[wpos]
                    others = np.where(
                        acct_rc[:, None] == winner_acct[None, :], 0, block)
                    rpos = others.argmax(axis=0)
                    rhas = others[rpos, positions] == 1
                    runner = np.where(
                        rhas, bids[rc_arr[rpos]], 0.0)[hrows]
                    counts = np.zeros(nb, dtype=np.int64)
                    for a in np.unique(acct_rc):
                        counts += block[acct_rc == a].any(axis=0)
                    contender_counts.append(counts[hrows])
                else:
                    runner = np.zeros(len(hrows), dtype=np.float64)
                    contender_counts.append(
                        np.ones(len(hrows), dtype=np.int64))
                win_rows.append(hrows + r0)
                win_cands.append(rc_arr[wpos[hrows]])
                win_runner.append(runner)
            if not win_rows:
                # No user in range has any eligible candidate left: the
                # scalar loop would drop every user and stop. Nothing
                # is counted (dropped users never reach the auction).
                break
            rel_rows = np.concatenate(win_rows)
            wcand = np.concatenate(win_cands)
            runner = np.concatenate(win_runner)
            slots = len(rel_rows)
            winner_bids = bids[wcand]

            # Phase B: the budget certificate. The vector round assumed
            # eligibility fixed at round start; that is exactly the
            # scalar outcome unless some account's budget could cross
            # below a candidate's bid mid-round. Bound each win's charge
            # (the exact price under a constant draw, the winner's bid
            # otherwise), sum per account, and require every round
            # candidate to remain affordable under full planned spend —
            # budgets are monotone, so passing the worst case certifies
            # every intermediate state.
            if constant is not None:
                bound = np.minimum(
                    np.maximum(np.maximum(runner, constant), floor),
                    winner_bids)
            else:
                bound = winner_bids
            planned = np.zeros(len(account_index))
            np.add.at(planned, acct_idx[wcand], bound)
            certified = all(
                entries[i][1].budget - planned[acct_idx[i]] + 1e-12
                >= entries[i][2]
                for i in rc
            )
            if not certified:
                if delta is not None:
                    raise StoreError(
                        f"{self.engine_id}: budget flip inside a "
                        "partitioned sweep range; run the sweep "
                        "single-process (sweep_slots) so the scalar "
                        "fallback can replay the round exactly")
                if obs_on:
                    self._obs_sweep_budget_rounds.inc()
                # Exact scalar replay of this round: the same per-user
                # code path run_until_saturated uses, over every row in
                # range (users with nothing eligible contribute nothing,
                # matching the scalar loop's drop-from-rotation). The
                # session match cache may hold entries the bulk applies
                # never pruned — drop it wholesale first.
                if self._match_cache is not None:
                    self._match_cache.clear()
                progressed = False
                store = self._user_store
                for r in range(start, stop):
                    user = UserView(store, r)
                    contenders, had_eligible = self._slot_contenders(user)
                    if not had_eligible:
                        continue
                    stats.slots += 1
                    outcome = self._auction_slot(user, contenders)
                    if outcome.won:
                        stats.filled_by_tracked_ads += 1
                        progressed = True
                    else:
                        stats.lost_to_competition += 1
                self._sweep_subtract_shown(avail, entries, start, stop)
                if not progressed:
                    break
                continue

            # Phase C: decide, count, and apply in bulk. Draws happen
            # here, one per auctioned user in ascending row order — the
            # exact sequence the scalar loop consumes.
            if constant is not None:
                competing = np.full(slots, constant)
            else:
                competing = np.fromiter(
                    (draw() for _ in range(slots)),
                    dtype=np.float64, count=slots)
            won = (winner_bids > competing) & (winner_bids >= floor)
            price = np.minimum(
                np.maximum(np.maximum(runner, competing), floor),
                winner_bids)
            wins = int(won.sum())
            stats.slots += slots
            stats.filled_by_tracked_ads += wins
            stats.lost_to_competition += slots - wins
            if obs_on:
                self._obs_slots.inc(slots)
                self._obs_sweep_rounds.inc()
            observe_auctions(np.concatenate(contender_counts),
                             price[won], slots - wins)
            if wins == 0:
                break
            self._sweep_apply(entries, start, stop, rel_rows[won],
                              wcand[won], price[won], avail, delta)

    def _sweep_apply(self, entries: List[tuple], start: int, stop: int,
                     rel_rows: np.ndarray, wcand: np.ndarray,
                     price: np.ndarray, avail: np.ndarray,
                     delta: Optional[Dict[str, list]]) -> None:
        """Fold one vector round's wins into engine + ledger state."""
        from repro.platform.colstore import UserView
        users = self._user_store
        assert users is not None
        n = stop - start
        order = np.argsort(wcand, kind="stable")
        grouped = np.split(
            order, np.flatnonzero(np.diff(wcand[order])) + 1)
        if not self._compact:
            # Full-logs mode: deliver each win through the exact scalar
            # commit path (charge -> journal -> fold -> obs -> bus), in
            # ascending row order, so journals and feeds are
            # byte-identical to the scalar loop.
            for j in range(len(rel_rows)):
                entry = entries[int(wcand[j])]
                self._deliver(entry[0],
                              UserView(users, start + int(rel_rows[j])),
                              float(price[j]))
            for group in grouped:
                cand = int(wcand[group[0]])
                avail[cand] &= ~bitset.from_indices(rel_rows[group], n)
            return

        count = len(rel_rows)
        seq_base = self._impression_seq
        discards = getattr(self._store, "discards_records", False)
        if discards:
            self._store.note_discarded(count)
        bus_on = self._bus.active
        # Rounds that cleared at nonzero prices bill per impression in
        # delivery (row) order — budget and spend then accumulate in the
        # exact float association the scalar path produces, interleaved
        # across ads. The all-zero rounds of the Treads economics (zero
        # competition, zero floor) skip this and take the O(1) per-ad
        # debit below.
        priced = bool(np.any(price))
        if priced or not discards or bus_on:
            # Journaling stores get real per-impression records with the
            # same seq/user/price/order the scalar path would append —
            # charge first, then journal, as _deliver does.
            for j in range(count):
                ad = entries[int(wcand[j])][0]
                amount = float(price[j])
                if priced:
                    self._ledger.charge_impression(
                        ad.ad_id, ad.account_id, amount, seq_base + j,
                        journal=False)
                if not discards or bus_on:
                    user_id = users.id_of(start + int(rel_rows[j]))
                    if not discards:
                        self._store.append(Impression(
                            seq=seq_base + j, ad_id=ad.ad_id,
                            account_id=ad.account_id, user_id=user_id,
                            price=amount))
                    if bus_on:
                        self._bus.emit(obs_events.ImpressionDelivered(
                            ad_id=ad.ad_id, account_id=ad.account_id,
                            user_id=user_id, price=amount,
                            impression_seq=seq_base + j))
        for group in grouped:
            cand = int(wcand[group[0]])
            ad = entries[cand][0]
            group_rows = rel_rows[group]
            if priced:
                total = 0.0
                for value in price[group]:
                    total += float(value)
            else:
                total = 0.0
                self._ledger.charge_impressions_bulk(
                    ad.ad_id, ad.account_id, 0.0, len(group))
            shown = self._shown_bits.get(ad.ad_id)
            if shown is None:
                shown = bitset.make_bitset(len(users))
            if stop > shown.shape[0] * bitset.WORD_BITS:
                shown = bitset.ensure_width(shown, stop)
            bitset.or_indices(shown, group_rows + start)
            self._shown_bits[ad.ad_id] = shown
            added = bitset.from_indices(group_rows, n)
            avail[cand] &= ~added
            self._impression_count_by_ad[ad.ad_id] = (
                self._impression_count_by_ad.get(ad.ad_id, 0)
                + len(group))
            if delta is not None:
                record = delta.get(ad.ad_id)
                if record is None:
                    record = delta[ad.ad_id] = [
                        ad.account_id, bitset.make_bitset(n), 0, 0.0]
                record[1] |= added
                record[2] += len(group)
                record[3] += total
        self._impression_count += count
        self._impression_seq = seq_base + count
        if self._obs_on:
            self._obs_impressions.inc(count)

    def absorb_sweep_delta(self, delta: Dict[str, tuple]) -> None:
        """Fold a partitioned sweep's per-ad results into this engine.

        The parent side of :mod:`repro.platform.parsweep`: each value is
        the ``(account_id, start_word, words, count, price_sum)`` tuple
        a worker's ``sweep_slots(..., _collect_delta=True)`` produced
        for a disjoint row range. Ads fold in sorted id order so the
        merge is deterministic regardless of worker arrival order.
        """
        if not self._compact:
            raise StoreError(
                f"{self.engine_id}: sweep deltas fold into compact "
                "engines only")
        users = self._user_store
        assert users is not None
        total = 0
        for ad_id in sorted(delta):
            account_id, start_word, words, count, price_sum = delta[ad_id]
            shown = self._shown_bits.get(ad_id)
            if shown is None:
                shown = bitset.make_bitset(len(users))
            need_bits = (start_word + len(words)) * bitset.WORD_BITS
            if need_bits > shown.shape[0] * bitset.WORD_BITS:
                shown = bitset.ensure_width(shown, need_bits)
            shown[start_word:start_word + len(words)] |= words
            self._shown_bits[ad_id] = shown
            self._impression_count_by_ad[ad_id] = (
                self._impression_count_by_ad.get(ad_id, 0) + count)
            self._ledger.charge_impressions_bulk(
                ad_id, account_id, price_sum, count)
            total += count
        if total:
            self._impression_count += total
            self._impression_seq += total
            discards = getattr(self._store, "discards_records", False)
            if discards:
                self._store.note_discarded(total)
            if self._obs_on:
                self._obs_impressions.inc(total)

    # -- views ---------------------------------------------------------------

    def _require_full_logs(self, operation: str) -> None:
        if self._compact:
            raise StoreError(
                f"{self.engine_id}: compact delivery does not retain "
                f"per-impression state ({operation})")

    def feed(self, user_id: str) -> List[DeliveredAd]:
        """The ads a user has seen, in delivery order (user-visible)."""
        self._require_full_logs("feed")
        return list(self._feeds[user_id])

    def impressions(self) -> List[Impression]:
        """Platform-internal impression log (reporting reads this)."""
        self._require_full_logs("impressions")
        return list(self._impressions)

    def impressions_for_ad(self, ad_id: str) -> List[Impression]:
        self._require_full_logs("impressions_for_ad")
        return list(self._impressions_by_ad.get(ad_id, ()))

    def impression_count(self) -> int:
        """Total delivered impressions (works in both modes)."""
        if self._compact:
            return self._impression_count
        return len(self._impressions)

    def impression_count_for_ad(self, ad_id: str) -> int:
        if self._compact:
            return self._impression_count_by_ad.get(ad_id, 0)
        return len(self._impressions_by_ad.get(ad_id, ()))

    def record_click(self, user_id: str, ad_id: str) -> None:
        """Record a click; only users who actually received the ad can
        click it (anything else is a caller bug, not ad traffic)."""
        if self._compact:
            row = self._compact_row(user_id)
            shown = row is not None and self._shown_to(ad_id, row)
        else:
            shown = self._shown_counts.get((ad_id, user_id), 0) > 0
        if not shown:
            raise ValueError(
                f"user {user_id!r} never received ad {ad_id!r}"
            )
        click = Click(ad_id=ad_id, user_id=user_id,
                      click_seq=self._click_count)
        self._store.append(click)
        self._apply_click(click)
        self._obs_clicks.inc()
        if self._bus.active:
            self._bus.emit(obs_events.ClickRecorded(
                ad_id=ad_id, user_id=user_id, click_seq=click.click_seq,
            ))

    def _apply_click(self, click: Click) -> None:
        """Fold one click into the log and the per-ad view (shared by
        the live path, restore, import, and replay)."""
        if not self._compact:
            self._clicks.append(click)
        self._click_count += 1
        self._clicks_by_ad[click.ad_id] = (
            self._clicks_by_ad.get(click.ad_id, 0) + 1
        )

    def _apply_cap(self, record: CapIncremented) -> None:
        """Fold a bare cap adjustment (migration-only; see
        :class:`repro.store.records.CapIncremented`)."""
        key = (record.ad_id, record.user_id)
        shown = self._shown_counts.get(key, 0) + record.count
        self._shown_counts[key] = shown
        if shown >= self.frequency_cap:
            self._capped_for_user.setdefault(
                record.user_id, set()).add(record.ad_id)

    def clicks(self) -> List[Click]:
        """Platform-internal click log, in click order."""
        self._require_full_logs("clicks")
        return list(self._clicks)

    def clicks_for_ad(self, ad_id: str) -> int:
        return self._clicks_by_ad.get(ad_id, 0)

    def unique_reach(self, ad_id: str) -> Set[str]:
        """Distinct users reached by an ad (platform-internal)."""
        if self._compact:
            bits = self._shown_bits.get(ad_id)
            if bits is None:
                return set()
            assert self._user_store is not None
            return self._user_store.rows_to_ids(bits)
        return set(self._reach_by_ad.get(ad_id, ()))

    def reach_count(self, ad_id: str) -> int:
        """Number of distinct users reached — O(1), no set copy (one
        popcount in compact mode)."""
        if self._compact:
            bits = self._shown_bits.get(ad_id)
            return 0 if bits is None else bitset.popcount(bits)
        return len(self._reach_by_ad.get(ad_id, ()))

    # -- state snapshot / migration ------------------------------------------

    def snapshot_stats(self) -> Dict[str, object]:
        """Debug snapshot of this engine's accumulated state.

        Cheap (counts only, no copies) and assertion-friendly: the
        serving layer surfaces one per shard, keyed by ``engine_id``, so
        an imbalanced or double-delivering shard is visible at a glance.
        """
        if self._compact:
            nbits = (len(self._user_store)
                     if self._user_store is not None else 0)
            reached = bitset.union_all(
                list(self._shown_bits.values()), nbits)
            return {
                "engine_id": self.engine_id,
                "impressions": self._impression_count,
                "clicks": self._click_count,
                "users_with_feeds": 0,
                "users_reached": bitset.popcount(reached),
                "ads_delivered": len(self._shown_bits),
                "capped_pairs": sum(
                    bitset.popcount(bits)
                    for bits in self._shown_bits.values()
                ),
                "indexed_ads": self._indexed_ad_count,
                "in_session": self._match_cache is not None,
            }
        return {
            "engine_id": self.engine_id,
            "impressions": len(self._impressions),
            "clicks": len(self._clicks),
            "users_with_feeds": len(self._feeds),
            "users_reached": len(
                set().union(*self._reach_by_ad.values())
                if self._reach_by_ad else ()
            ),
            "ads_delivered": len(self._impressions_by_ad),
            "capped_pairs": sum(
                len(ads) for ads in self._capped_for_user.values()
            ),
            "indexed_ads": self._indexed_ad_count,
            "in_session": self._match_cache is not None,
        }

    @property
    def store(self) -> StateStore:
        return self._store

    def _require_out_of_session(self, operation: str) -> None:
        if self._match_cache is not None:
            raise StoreError(
                f"{self.engine_id}: cannot {operation} inside a "
                "serving session"
            )

    def _extra_caps(
        self,
        impressions: Sequence[Impression],
        shown_counts: Dict[Tuple[str, str], int],
    ) -> List[List[object]]:
        """Cap counts beyond what ``impressions`` imply, sorted for
        deterministic dumps. Empty for any state this engine delivered
        itself; non-empty only after a bare-cap import."""
        implied = Counter(
            (imp.ad_id, imp.user_id) for imp in impressions
        )
        extras: List[List[object]] = []
        for key in sorted(shown_counts):
            excess = shown_counts[key] - implied.get(key, 0)
            if excess > 0:
                extras.append([key[0], key[1], excess])
        return extras

    def export_state(
        self, user_ids: Optional[Set[str]] = None
    ) -> Dict[str, Any]:
        """Export per-user delivery state, optionally for a user subset.

        Everything exported is per-user, so exporting the users a shard
        is giving up and importing them elsewhere preserves every
        engine-level invariant (deliver-once via the cap counts, exact
        reporting via the logs). The export is JSON-safe — impressions
        and clicks as their journal-record dicts, caps beyond those the
        impressions imply as explicit ``extra_caps`` — because it is
        also the engine's snapshot section (see :meth:`state_dump`);
        feeds are not exported, they are rebuilt from the impressions
        and the shared inventory on import.
        """
        self._require_full_logs("export state")
        if user_ids is None:
            impressions: List[Impression] = self._impressions
            clicks: List[Click] = self._clicks
            shown = self._shown_counts
        else:
            impressions = [i for i in self._impressions
                           if i.user_id in user_ids]
            clicks = [c for c in self._clicks if c.user_id in user_ids]
            shown = {key: count
                     for key, count in self._shown_counts.items()
                     if key[1] in user_ids}
        return {
            "impressions": [record_to_dict(i) for i in impressions],
            "clicks": [record_to_dict(c) for c in clicks],
            "extra_caps": self._extra_caps(impressions, shown),
        }

    def import_state(self, state: Dict[str, Any]) -> None:
        """Merge exported per-user state into this engine, journaling it.

        The migration hook behind :meth:`repro.serve.ShardRouter.rebalance`:
        each imported impression/click/cap is appended to this engine's
        store (the receiving journal must account for every unit of
        state it holds, or crash recovery after a migration would lose
        it) and folded through the same ``_apply_*`` path as live
        delivery, so every read answers as if this engine had delivered
        the imported impressions itself. Must not be called mid-session
        (single-owner rule; the serving layer only migrates between
        serving windows).
        """
        self._require_out_of_session("import state")
        self._require_full_logs("import state")
        self._fold_state(state, journal=True)

    def _fold_state(self, state: Dict[str, Any], journal: bool) -> None:
        for data in state.get("impressions", []):
            record = record_from_dict(dict(data))
            if not isinstance(record, ImpressionRecorded):
                raise StoreError(
                    f"delivery state holds a {record.kind!r} record "
                    "in its impressions section")
            if journal:
                self._store.append(record)
            self._apply_impression(record)
        for data in state.get("clicks", []):
            record = record_from_dict(dict(data))
            if not isinstance(record, ClickRecorded):
                raise StoreError(
                    f"delivery state holds a {record.kind!r} record "
                    "in its clicks section")
            if journal:
                self._store.append(record)
            self._apply_click(record)
        for ad_id, user_id, count in state.get("extra_caps", []):
            cap = CapIncremented(ad_id=ad_id, user_id=user_id,
                                 count=int(count))
            if journal:
                self._store.append(cap)
            self._apply_cap(cap)

    # -- state owner ---------------------------------------------------------

    def state_dump(self) -> Dict[str, Any]:
        dump = self.export_state()
        dump["impression_seq"] = self._impression_seq
        return dump

    def state_load(self, state: Dict[str, Any]) -> None:
        """Replace all mutable delivery state with a prior dump.

        Unlike :meth:`import_state` this is the restore path: nothing is
        journaled (the records behind this dump are already in the
        journal, before the snapshot point), and existing state is
        discarded first.
        """
        self._require_out_of_session("load state")
        self._impression_seq = 0
        self._impressions = []
        self._clicks = []
        self._feeds = defaultdict(list)
        self._shown_counts = {}
        self._capped_for_user = {}
        self._impressions_by_ad = {}
        self._reach_by_ad = {}
        self._clicks_by_ad = {}
        self._shown_bits = {}
        self._impression_count = 0
        self._impression_count_by_ad = {}
        self._click_count = 0
        self._fold_state(state, journal=False)
        seq = state.get("impression_seq")
        if isinstance(seq, int) and seq > self._impression_seq:
            self._impression_seq = seq

    def apply_record(self, record: ChangeRecord) -> None:
        """Replay one journal record (no journaling, no obs).

        An impression record implies its charge (see ``_deliver``), so
        replaying one re-debits the ledger first — matching the live
        order — then folds the impression. Snapshot restore does NOT
        come through here: the ledger's own dump carries the charge log
        and budgets, so only journal replay re-derives charges.
        """
        if isinstance(record, ImpressionRecorded):
            self._ledger.apply_implied_charge(
                ad_id=record.ad_id,
                account_id=record.account_id,
                amount=record.price,
                impression_seq=record.seq,
            )
            self._apply_impression(record)
        elif isinstance(record, ClickRecorded):
            self._apply_click(record)
        elif isinstance(record, CapIncremented):
            self._apply_cap(record)
        else:
            raise StoreError(
                f"delivery cannot apply record kind {record.kind!r}")
