"""The ad delivery engine.

Delivery stitches everything together: as users browse, their sessions
expose ad slots; for each slot the engine collects the active ads whose
targeting the user satisfies (the deliver-iff-match contract), auctions
the slot against ambient competing demand, charges the winner, and places
the winning creative in the user's feed.

The per-user **frequency cap** (default 1 impression per ad per user)
reflects how a transparency provider would configure Tread campaigns: each
Tread needs to reach each matching user exactly once, which is what makes
the paper's per-attribute cost exactly one CPM-priced impression.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.platform.ads import Ad, AdImage, AdInventory, AdStatus
from repro.platform.auction import AuctionOutcome, CompetingBidDraw, run_auction
from repro.platform.audiences import AudienceRegistry
from repro.platform.billing import BillingLedger
from repro.platform.users import UserProfile, UserStore


@dataclass(frozen=True)
class Impression:
    """Platform-internal record of one delivered impression."""

    seq: int
    ad_id: str
    account_id: str
    user_id: str
    price: float


@dataclass(frozen=True)
class Click:
    """Platform-internal record of one ad click."""

    ad_id: str
    user_id: str
    click_seq: int


@dataclass(frozen=True)
class DeliveredAd:
    """What lands in a user's feed: the creative plus a handle for the
    "Why am I seeing this?" explanation. The user never sees the bid,
    the price, or the full targeting spec (the platform's explanation is
    deliberately partial — see :mod:`repro.platform.explanations`).

    ``image`` is a copy of the rendered creative image — users see ad
    images, so a Tread-decoding browser extension can scan their pixels.
    """

    ad_id: str
    account_id: str
    headline: str
    body: str
    image: Optional["AdImage"]
    landing_url: Optional[str]
    impression_seq: int

    @property
    def has_image(self) -> bool:
        return self.image is not None


@dataclass
class DeliveryStats:
    """Counters for one delivery run."""

    slots: int = 0
    filled_by_tracked_ads: int = 0
    lost_to_competition: int = 0
    no_eligible_ad: int = 0


class DeliveryEngine:
    """Serves ad slots for browsing users."""

    def __init__(
        self,
        inventory: AdInventory,
        audiences: AudienceRegistry,
        ledger: BillingLedger,
        competing_draw: CompetingBidDraw,
        frequency_cap: int = 1,
        floor_price_cpm: float = 0.0,
        min_match_count: int = 0,
    ):
        if frequency_cap < 1:
            raise ValueError("frequency cap must be >= 1")
        if min_match_count < 0:
            raise ValueError("min match count cannot be negative")
        self._inventory = inventory
        self._audiences = audiences
        self._ledger = ledger
        self._competing_draw = competing_draw
        self.frequency_cap = frequency_cap
        self.floor_price = floor_price_cpm / 1000.0
        self.min_match_count = min_match_count
        self._user_store: Optional[UserStore] = None
        self._match_count_cache: Dict[str, int] = {}
        self._impression_seq = 0
        self._impressions: List[Impression] = []
        self._clicks: List[Click] = []
        self._feeds: Dict[str, List[DeliveredAd]] = defaultdict(list)
        self._shown_counts: Dict[str, int] = defaultdict(int)

    # -- eligibility ---------------------------------------------------------

    def attach_user_store(self, users: UserStore) -> None:
        """Wire the platform's user store (needed for the narrow-targeting
        defense's match counting)."""
        self._user_store = users

    def _matches_enough_users(self, ad: Ad) -> bool:
        """Narrow-targeting defense: an ad whose full spec matches fewer
        than ``min_match_count`` users is withheld from every auction.

        The match count is snapshot once per ad (profiles are effectively
        static within a campaign run); this is the platform-side
        countermeasure to single-user delivery/billing inference (paper
        section 5) and is OFF by default, as on 2018 platforms.
        """
        if self.min_match_count <= 0 or self._user_store is None:
            return True
        cached = self._match_count_cache.get(ad.ad_id)
        if cached is None:
            cached = sum(
                1 for profile in self._user_store
                if ad.targeting.matches(profile, self._audiences.is_member)
            )
            self._match_count_cache[ad.ad_id] = cached
        return cached >= self.min_match_count

    def _eligible_ads(self, user: UserProfile) -> List[Ad]:
        eligible: List[Ad] = []
        for ad in self._inventory.active_ads():
            if self._shown_counts[f"{ad.ad_id}:{user.user_id}"] >= \
                    self.frequency_cap:
                continue
            account = self._inventory.account(ad.account_id)
            if not account.can_afford(ad.bid_per_impression):
                continue
            if not self._matches_enough_users(ad):
                continue
            if ad.targeting.matches(user, self._audiences.is_member):
                eligible.append(ad)
        return eligible

    # -- slot serving --------------------------------------------------------

    def serve_slot(self, user: UserProfile) -> AuctionOutcome:
        """Auction one ad slot in ``user``'s session; deliver the winner."""
        eligible = self._eligible_ads(user)
        outcome = run_auction(
            eligible,
            competing_bid=self._competing_draw(),
            floor_price=self.floor_price,
        )
        if outcome.winner is not None:
            self._deliver(outcome.winner, user, outcome.price)
        return outcome

    def _deliver(self, ad: Ad, user: UserProfile, price: float) -> None:
        seq = self._impression_seq
        self._impression_seq += 1
        self._ledger.charge_impression(
            ad_id=ad.ad_id,
            account_id=ad.account_id,
            amount=price,
            impression_seq=seq,
        )
        self._impressions.append(
            Impression(seq=seq, ad_id=ad.ad_id, account_id=ad.account_id,
                       user_id=user.user_id, price=price)
        )
        self._shown_counts[f"{ad.ad_id}:{user.user_id}"] += 1
        creative = ad.creative
        self._feeds[user.user_id].append(
            DeliveredAd(
                ad_id=ad.ad_id,
                account_id=ad.account_id,
                headline=creative.headline,
                body=creative.body,
                image=(creative.image.copy()
                       if creative.image is not None else None),
                landing_url=(
                    str(creative.landing_url) if creative.landing_url else None
                ),
                impression_seq=seq,
            )
        )

    def run_sessions(
        self,
        users: Sequence[UserProfile],
        slots_per_user: int,
    ) -> DeliveryStats:
        """Serve ``slots_per_user`` ad slots for each user, round-robin.

        Round-robin (rather than user-at-a-time) interleaves demand the way
        concurrent browsing would, which matters when budgets run out
        mid-run.
        """
        stats = DeliveryStats()
        for _ in range(slots_per_user):
            for user in users:
                outcome = self.serve_slot(user)
                stats.slots += 1
                if outcome.won:
                    stats.filled_by_tracked_ads += 1
                elif outcome.competing_bid > 0 and self._had_eligible(user):
                    stats.lost_to_competition += 1
                else:
                    stats.no_eligible_ad += 1
        return stats

    def _had_eligible(self, user: UserProfile) -> bool:
        return bool(self._eligible_ads(user))

    def run_until_saturated(
        self,
        users: Sequence[UserProfile],
        max_rounds: int = 50,
    ) -> DeliveryStats:
        """Serve slots until no tracked ad can deliver another impression.

        This is the Treads campaign mode: keep going until every matching
        (user, ad) pair has hit the frequency cap or budgets are spent.
        """
        stats = DeliveryStats()
        for _ in range(max_rounds):
            progressed = False
            for user in users:
                if not self._eligible_ads(user):
                    continue
                outcome = self.serve_slot(user)
                stats.slots += 1
                if outcome.won:
                    stats.filled_by_tracked_ads += 1
                    progressed = True
                else:
                    stats.lost_to_competition += 1
            if not progressed:
                break
        return stats

    # -- views ---------------------------------------------------------------

    def feed(self, user_id: str) -> List[DeliveredAd]:
        """The ads a user has seen, in delivery order (user-visible)."""
        return list(self._feeds[user_id])

    def impressions(self) -> List[Impression]:
        """Platform-internal impression log (reporting reads this)."""
        return list(self._impressions)

    def impressions_for_ad(self, ad_id: str) -> List[Impression]:
        return [imp for imp in self._impressions if imp.ad_id == ad_id]

    def record_click(self, user_id: str, ad_id: str) -> None:
        """Record a click; only users who actually received the ad can
        click it (anything else is a caller bug, not ad traffic)."""
        if self._shown_counts.get(f"{ad_id}:{user_id}", 0) == 0:
            raise ValueError(
                f"user {user_id!r} never received ad {ad_id!r}"
            )
        self._clicks.append(Click(ad_id=ad_id, user_id=user_id,
                                  click_seq=len(self._clicks)))

    def clicks_for_ad(self, ad_id: str) -> int:
        return sum(1 for click in self._clicks if click.ad_id == ad_id)

    def unique_reach(self, ad_id: str) -> Set[str]:
        """Distinct users reached by an ad (platform-internal)."""
        return {imp.user_id for imp in self._impressions
                if imp.ad_id == ad_id}
