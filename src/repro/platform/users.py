"""Platform user accounts and profiles.

The platform keeps a detailed per-user profile "based on activity and
information from both on and off their platform" (paper section 1):
demographics, binary attribute memberships, multi-valued attribute
assignments, PII it has collected (from the user or elsewhere — see [35]),
page likes, and the audiences the user has been matched into.

Profiles are *internal to the platform*: advertisers never see them, and
the platform's own transparency surfaces deliberately show users only a
subset (see :mod:`repro.platform.adpreferences`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Set

from repro.errors import CatalogError, PIIError
from repro.hashing import PII_KINDS, hash_pii
from repro.platform.attributes import Attribute, AttributeCatalog, AttributeKind


@dataclass
class UserProfile:
    """Everything the platform knows about one user.

    Parameters
    ----------
    user_id:
        Platform-assigned id.
    country, age, gender, zip_code:
        Core demographics used by demographic targeting predicates.
    binary_attrs:
        Ids of BINARY catalog attributes that are *set* for this user.
        Absence means false-or-unknown — the platform does not distinguish,
        which is exactly why the paper's exclusion Treads can only reveal
        "false or missing" (section 3.1).
    multi_attrs:
        MULTI catalog attribute id -> assigned value.
    pii_hashes:
        Hashed PII the platform has associated with this user, as
        ``kind -> set of sha256 hex digests``. The platform may hold PII
        the user never provided directly (contact-list sync, 2FA numbers —
        paper section 5, citing [35]).
    liked_pages:
        Page ids the user has liked; page-engagement audiences build on
        this (the paper's validation opt-in is a page like).
    """

    user_id: str
    country: str = "US"
    age: int = 30
    gender: str = "unknown"
    zip_code: str = "00000"
    binary_attrs: Set[str] = field(default_factory=set)
    multi_attrs: Dict[str, str] = field(default_factory=dict)
    pii_hashes: Dict[str, Set[str]] = field(default_factory=dict)
    liked_pages: Set[str] = field(default_factory=set)
    #: Installed by the owning store so attribute writes that happen
    #: *after* registration keep the store's attribute index current.
    _listener: Optional[Callable[[str, bool], None]] = field(
        default=None, repr=False, compare=False)

    def has_attribute(self, attr_id: str) -> bool:
        """True when a binary attribute is set (or a multi attr assigned)."""
        return attr_id in self.binary_attrs or attr_id in self.multi_attrs

    def attribute_ids(self) -> Iterator[str]:
        """All attribute ids present on this profile (binary then multi).

        The delivery engine's inverted candidate index probes these to
        collect the ads that could possibly match this user."""
        yield from self.binary_attrs
        yield from self.multi_attrs

    def attribute_value(self, attr_id: str) -> Optional[str]:
        """Assigned value of a multi attribute, or None when unassigned."""
        return self.multi_attrs.get(attr_id)

    def add_pii_hash(self, kind: str, digest: str) -> None:
        """Associate one hashed PII value with this user."""
        if kind not in PII_KINDS:
            raise PIIError(f"unknown PII kind {kind!r}")
        self.pii_hashes.setdefault(kind, set()).add(digest)

    def add_pii(self, kind: str, raw_value: str) -> None:
        """Associate raw PII (hashed internally) with this user."""
        self.add_pii_hash(kind, hash_pii(kind, raw_value))

    def has_pii_hash(self, kind: str, digest: str) -> bool:
        """Whether the platform holds this exact hashed PII for the user."""
        return digest in self.pii_hashes.get(kind, set())

    def set_attribute(self, attribute: Attribute, value: Optional[str] = None) -> None:
        """Set a catalog attribute on this profile.

        Binary attributes are flagged set; multi attributes require a
        ``value`` drawn from the attribute's enumerated values.
        """
        if attribute.kind is AttributeKind.BINARY:
            if value is not None:
                raise CatalogError(
                    f"binary attribute {attribute.attr_id!r} takes no value"
                )
            self.binary_attrs.add(attribute.attr_id)
            if self._listener is not None:
                self._listener(attribute.attr_id, True)
            return
        if value is None:
            raise CatalogError(
                f"multi attribute {attribute.attr_id!r} needs a value"
            )
        attribute.value_index(value)  # validates membership
        self.multi_attrs[attribute.attr_id] = value
        if self._listener is not None:
            self._listener(attribute.attr_id, True)

    def clear_attribute(self, attr_id: str) -> None:
        """Unset an attribute (used by the broker-shutdown scenario)."""
        self.binary_attrs.discard(attr_id)
        self.multi_attrs.pop(attr_id, None)
        if self._listener is not None:
            self._listener(attr_id, False)

    def set_attributes(self, attrs: Dict[str, Optional[str]],
                       catalog: AttributeCatalog) -> None:
        """Bulk-set attributes from ``attr_id -> value-or-None``."""
        for attr_id, value in attrs.items():
            self.set_attribute(catalog.get(attr_id), value)


class UserStore:
    """The platform's internal registry of user profiles.

    Provides the reverse PII index the custom-audience matcher needs
    (hashed PII -> user) and iteration for audience materialization.
    """

    def __init__(self) -> None:
        self._profiles: Dict[str, UserProfile] = {}
        self._pii_index: Dict[str, Set[str]] = {}
        #: attr_id -> ids of users carrying it (kept current by the
        #: write-through listener installed on registered profiles).
        self._attr_index: Dict[str, Set[str]] = {}
        self._epoch = 0

    def __len__(self) -> int:
        return len(self._profiles)

    def __iter__(self) -> Iterator[UserProfile]:
        return iter(self._profiles.values())

    def __contains__(self, user_id: str) -> bool:
        return user_id in self._profiles

    @property
    def mutation_epoch(self) -> int:
        """Bumped on every membership-relevant mutation made through the
        store API; derived caches (audience reach counts) key on it."""
        return self._epoch

    def add(self, profile: UserProfile) -> UserProfile:
        """Register a profile; re-registering the same id is an error.

        Profiles carrying PII of an unindexable kind are rejected *before*
        any state changes, so a bad profile can never leave the store
        half-registered or the PII index partially built.
        """
        if profile.user_id in self._profiles:
            raise CatalogError(f"duplicate user id {profile.user_id!r}")
        for kind in profile.pii_hashes:
            if kind not in PII_KINDS:
                raise PIIError(
                    f"profile {profile.user_id!r} carries unindexed PII "
                    f"kind {kind!r}")
        self._profiles[profile.user_id] = profile
        for kind, digests in profile.pii_hashes.items():
            for digest in digests:
                self._index_pii(kind, digest, profile.user_id)
        for attr_id in profile.attribute_ids():
            self._attr_index.setdefault(attr_id, set()).add(profile.user_id)
        user_id = profile.user_id
        profile._listener = (
            lambda attr_id, present: self._profile_changed(
                user_id, attr_id, present))
        self._epoch += 1
        return profile

    def _profile_changed(self, user_id: str, attr_id: str,
                         present: bool) -> None:
        if present:
            self._attr_index.setdefault(attr_id, set()).add(user_id)
        else:
            self._attr_index.get(attr_id, set()).discard(user_id)
        self._epoch += 1

    def get(self, user_id: str) -> UserProfile:
        try:
            return self._profiles[user_id]
        except KeyError:
            raise CatalogError(f"unknown user id {user_id!r}") from None

    def attach_pii(self, user_id: str, kind: str, raw_value: str) -> str:
        """Attach raw PII to a user and index it; returns the digest."""
        digest = hash_pii(kind, raw_value)
        self.attach_pii_hash(user_id, kind, digest)
        return digest

    def attach_pii_hash(self, user_id: str, kind: str, digest: str) -> None:
        """Attach already-hashed PII to a user and index it."""
        profile = self.get(user_id)
        profile.add_pii_hash(kind, digest)
        self._index_pii(kind, digest, user_id)
        self._epoch += 1

    def like_page(self, user_id: str, page_id: str) -> None:
        """Record a page like (the epoch-honest mutation path)."""
        self.get(user_id).liked_pages.add(page_id)
        self._epoch += 1

    def _index_pii(self, kind: str, digest: str, user_id: str) -> None:
        self._pii_index.setdefault(f"{kind}:{digest}", set()).add(user_id)

    def users_matching_pii(self, kind: str, digest: str) -> Set[str]:
        """User ids whose profile carries this hashed PII.

        This is the platform-internal match step of PII-based targeting
        (paper section 2.1): uploaded hashes are joined against profiles.
        """
        return set(self._pii_index.get(f"{kind}:{digest}", set()))

    def users_with_attribute(self, attr_id: str) -> List[UserProfile]:
        """All profiles with ``attr_id`` set/assigned (platform-internal).

        Served from the write-through attribute index — one bucket probe,
        not a scan over every profile in the store.
        """
        ids = self._attr_index.get(attr_id)
        if not ids:
            return []
        return [self._profiles[uid] for uid in sorted(ids)]

    def user_ids(self) -> List[str]:
        return list(self._profiles)
