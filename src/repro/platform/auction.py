"""The per-impression ad auction.

Whenever a user's browsing session exposes an ad slot, the platform runs
an auction among the ads whose targeting the user satisfies, plus the
ambient *competing demand* from all other advertisers (modelled as a draw
from a competing-bid distribution — see
:mod:`repro.workloads.competition`). The auction is second-price with bid
caps: the winner pays the maximum of the runner-up's bid, the competing
bid, and the floor price — never more than its own cap.

This is the mechanism behind the paper's validation detail that matters
for cost: the authors "set the bid cap for each ad to be $10 CPM — five
times its default value of $2 CPM for U.S. users — to increase the chances
of these ads winning the ad auction" (section 3.1). Benchmark E6 sweeps
the bid cap against calibrated competition to reproduce that reasoning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.obs.metrics import bind
from repro.platform.ads import Ad

#: Draws the strongest competing bid (dollars per impression) for one slot.
CompetingBidDraw = Callable[[], float]

#: Late-bound auction instruments: resolved against the current metrics
#: registry (identity-checked per call, so registry swaps take effect
#: without a per-auction dict lookup). None while the registry is a
#: no-op, so a disabled process pays one None check per auction instead
#: of four null method calls.
_instruments = bind(lambda reg: (
    reg.histogram("auction.contenders"),
    reg.histogram("auction.clearing_price_cpm"),
    reg.counter("auction.slots_won"),
    reg.counter("auction.slots_lost"),
) if reg.enabled else None)


@dataclass(frozen=True)
class AuctionOutcome:
    """Result of one ad-slot auction.

    ``winner`` is None when ambient competition outbid every eligible ad
    (the slot goes to some unrelated advertiser). ``price`` is the
    per-impression second price the winner pays; 0.0 when there is no
    winner among the eligible ads.
    """

    winner: Optional[Ad]
    price: float
    competing_bid: float

    @property
    def won(self) -> bool:
        return self.winner is not None


def run_auction(
    eligible_ads: Sequence[Ad],
    competing_bid: float,
    floor_price: float = 0.0,
) -> AuctionOutcome:
    """Second-price auction for one impression.

    ``eligible_ads`` are ads whose targeting the user matched and whose
    accounts can still pay. Ties between equal bids are broken by ad id so
    outcomes are deterministic.

    An advertiser never bids against itself: only each account's best ad
    enters the auction, so a Tread sweep's 500 sibling ads do not inflate
    one another's second price (real platforms deduplicate per advertiser
    the same way — without this, a provider would pay its own bid cap
    instead of the market price on every impression).
    """
    instruments = _instruments()
    if instruments is None:
        return _decide(eligible_ads, competing_bid, floor_price)
    contenders, clearing_price, slots_won, slots_lost = instruments
    contenders.observe(len(eligible_ads))
    outcome = _decide(eligible_ads, competing_bid, floor_price)
    if outcome.winner is not None:
        slots_won.inc()
        clearing_price.observe(outcome.price * 1000.0)
    else:
        slots_lost.inc()
    return outcome


def observe_auctions(
    contender_counts,
    prices_won,
    lost_count: int,
) -> None:
    """Bulk-record a whole round of auction outcomes.

    The batch sweep (:meth:`repro.platform.delivery.DeliveryEngine.
    sweep_slots`) decides thousands of slot auctions per vectorized
    round; this folds them into the same four instruments
    :func:`run_auction` maintains, in one update per round.
    ``contender_counts`` is the per-slot eligible-account count (any
    array-like), ``prices_won`` the per-impression dollar prices of the
    won slots, ``lost_count`` how many slots had no tracked winner.
    No-op while the registry is disabled, same as the scalar path.
    """
    instruments = _instruments()
    if instruments is None:
        return
    contenders, clearing_price, slots_won, slots_lost = instruments
    contenders.observe_many(contender_counts)
    won = len(prices_won)
    if won:
        slots_won.inc(won)
        import numpy as np
        clearing_price.observe_many(
            np.asarray(prices_won, dtype=np.float64) * 1000.0)
    if lost_count:
        slots_lost.inc(lost_count)


def _decide(
    eligible_ads: Sequence[Ad],
    competing_bid: float,
    floor_price: float,
) -> AuctionOutcome:
    """The auction decision itself, free of instrumentation."""
    if competing_bid < 0:
        raise ValueError("competing bid cannot be negative")
    # Lone-contender fast path: the delivery engine pre-deduplicates per
    # account, so the common Tread-sweep slot arrives here with exactly
    # one contender — no runner-up, price set by competition/floor alone.
    if len(eligible_ads) == 1:
        only = eligible_ads[0]
        bid = only.bid_per_impression
        if bid <= competing_bid or bid < floor_price:
            return AuctionOutcome(winner=None, price=0.0,
                                  competing_bid=competing_bid)
        return AuctionOutcome(
            winner=only,
            price=min(max(competing_bid, floor_price), bid),
            competing_bid=competing_bid,
        )
    # Single pass, no sorting: keep each account's best (highest bid,
    # ties by ad id) — this runs once per served slot, so it stays O(n).
    best_per_account: dict = {}
    for ad in eligible_ads:
        bid = ad.bid_per_impression
        held = best_per_account.get(ad.account_id)
        if held is None or bid > held[0] or \
                (bid == held[0] and ad.ad_id < held[1].ad_id):
            best_per_account[ad.account_id] = (bid, ad)
    if not best_per_account:
        return AuctionOutcome(winner=None, price=0.0,
                              competing_bid=competing_bid)
    # Top-2 selection among the per-account contenders, same ordering.
    best_bid = -1.0
    best: Optional[Ad] = None
    runner_up = 0.0
    for bid, ad in best_per_account.values():
        if best is None or bid > best_bid or \
                (bid == best_bid and ad.ad_id < best.ad_id):
            if best is not None and best_bid > runner_up:
                runner_up = best_bid
            best_bid, best = bid, ad
        elif bid > runner_up:
            runner_up = bid
    assert best is not None
    if best_bid <= competing_bid or best_bid < floor_price:
        return AuctionOutcome(winner=None, price=0.0,
                              competing_bid=competing_bid)
    price = max(runner_up, competing_bid, floor_price)
    # Second price never exceeds the winner's own cap.
    price = min(price, best_bid)
    return AuctionOutcome(winner=best, price=price,
                          competing_bid=competing_bid)


def win_probability(
    bid_cpm: float,
    competing_draw: CompetingBidDraw,
    trials: int = 10_000,
) -> float:
    """Monte-Carlo estimate of the probability one lone ad wins a slot.

    Used by the bid-cap benchmark (E6) to trace the delivery-vs-bid curve
    the paper's 5x bid elevation implicitly climbs.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    bid = bid_cpm / 1000.0
    wins = sum(1 for _ in range(trials) if bid > competing_draw())
    return wins / trials
