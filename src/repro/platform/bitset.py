"""Packed ``uint64`` bitsets: the columnar store's membership primitive.

A *bitset* here is a 1-D ``numpy.uint64`` array in which bit ``i`` (word
``i >> 6``, bit ``i & 63``, little-endian within the word) says whether
row ``i`` is in the set. The columnar user store
(:mod:`repro.platform.colstore`) keeps binary attributes and page likes
as matrices of such rows, and the audience registry keeps memberships as
single rows — so set algebra (intersection, union, difference) becomes
``numpy`` bitwise ops and cardinality becomes a popcount, both running at
memory bandwidth instead of per-object dict probes.

Every helper treats arrays as immutable unless named otherwise
(:func:`set_bit`/:func:`clear_bit` mutate in place); the boolean
combinators allocate. Serialization round-trips through little-endian
bytes so journaled snapshots are byte-stable across platforms.
"""

from __future__ import annotations

import base64
from typing import Iterator, List, Sequence

import numpy as np

#: Bits per bitset word.
WORD_BITS = 64

if hasattr(np, "bitwise_count"):  # numpy >= 2.0
    def _word_popcounts(words: np.ndarray) -> np.ndarray:
        return np.bitwise_count(words)
else:  # pragma: no cover - numpy 1.x fallback
    def _word_popcounts(words: np.ndarray) -> np.ndarray:
        flat = np.ascontiguousarray(words).reshape(-1)
        counts = (np.unpackbits(flat.view(np.uint8))
                  .reshape(flat.size, -1).sum(axis=1))
        return counts.reshape(words.shape)


def words_for(nbits: int) -> int:
    """Words needed to hold ``nbits`` bits (at least one word)."""
    return max(1, (int(nbits) + WORD_BITS - 1) // WORD_BITS)


def make_bitset(nbits: int) -> np.ndarray:
    """A zeroed bitset wide enough for ``nbits`` bits."""
    return np.zeros(words_for(nbits), dtype=np.uint64)


def ensure_width(bits: np.ndarray, nbits: int) -> np.ndarray:
    """``bits`` widened (zero-padded) to hold ``nbits`` bits."""
    need = words_for(nbits)
    if bits.shape[-1] >= need:
        return bits
    pad = need - bits.shape[-1]
    return np.concatenate([bits, np.zeros(pad, dtype=np.uint64)])


def set_bit(bits: np.ndarray, index: int) -> None:
    """Set bit ``index`` in place (the bitset must already be wide enough)."""
    bits[index >> 6] |= np.uint64(1 << (index & 63))


def clear_bit(bits: np.ndarray, index: int) -> None:
    """Clear bit ``index`` in place."""
    bits[index >> 6] &= np.uint64(~(1 << (index & 63)) & 0xFFFFFFFFFFFFFFFF)


def test_bit(bits: np.ndarray, index: int) -> bool:
    """Whether bit ``index`` is set (False when past the array's width)."""
    word = index >> 6
    if word >= bits.shape[-1]:
        return False
    return bool(bits[word] >> np.uint64(index & 63) & np.uint64(1))


def popcount(bits: np.ndarray) -> int:
    """Number of set bits (set cardinality)."""
    if bits.size == 0:
        return 0
    return int(_word_popcounts(bits).sum())


def row_popcounts(matrix: np.ndarray) -> np.ndarray:
    """Per-row set-bit counts of a 2-D bitset matrix."""
    if matrix.size == 0:
        return np.zeros(matrix.shape[0], dtype=np.int64)
    return _word_popcounts(matrix).sum(axis=1)


def from_indices(indices: Sequence[int], nbits: int) -> np.ndarray:
    """Build a bitset of width ``nbits`` with the given bits set."""
    bits = make_bitset(nbits)
    if len(indices):
        idx = np.asarray(indices, dtype=np.int64)
        np.bitwise_or.at(bits, idx >> 6,
                         np.uint64(1) << (idx & 63).astype(np.uint64))
    return bits


def or_indices(bits: np.ndarray, indices: Sequence[int]) -> None:
    """OR the given bit indices into ``bits`` in place (bulk
    :func:`set_bit` — the batch sweep's per-round shown-bitset fold)."""
    if len(indices) == 0:
        return
    idx = np.asarray(indices, dtype=np.int64)
    np.bitwise_or.at(bits, idx >> 6,
                     np.uint64(1) << (idx & 63).astype(np.uint64))


def to_indices(bits: np.ndarray) -> np.ndarray:
    """Indices of set bits, ascending (the decoded member rows)."""
    if bits.size == 0:
        return np.zeros(0, dtype=np.int64)
    # Little-endian within each byte *and* across each word's bytes, so
    # the flat unpacked position equals the bit index.
    unpacked = np.unpackbits(bits.view(np.uint8), bitorder="little")
    return np.flatnonzero(unpacked).astype(np.int64)


def iter_indices(bits: np.ndarray) -> Iterator[int]:
    """Iterate set-bit indices as Python ints."""
    for index in to_indices(bits):
        yield int(index)


def intersect(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Bitwise AND over the common width (differing widths allowed)."""
    width = min(a.shape[-1], b.shape[-1])
    return a[:width] & b[:width]


def union(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Bitwise OR, zero-extending the narrower operand."""
    if a.shape[-1] < b.shape[-1]:
        a, b = b, a
    out = a.copy()
    out[: b.shape[-1]] |= b
    return out


def union_all(rows: Sequence[np.ndarray], nbits: int) -> np.ndarray:
    """OR many bitsets into one of width ``nbits``."""
    out = make_bitset(nbits)
    for row in rows:
        width = min(out.shape[-1], row.shape[-1])
        out[:width] |= row[:width]
    return out


def intersect_count(a: np.ndarray, b: np.ndarray) -> int:
    """``popcount(a & b)`` without keeping the intermediate."""
    return popcount(intersect(a, b))


def bitset_to_b64(bits: np.ndarray) -> str:
    """Serialize to base64 over little-endian bytes (JSON-safe)."""
    le = np.ascontiguousarray(bits, dtype="<u8")
    return base64.b64encode(le.tobytes()).decode("ascii")


def bitset_from_b64(data: str) -> np.ndarray:
    """Inverse of :func:`bitset_to_b64`."""
    raw = base64.b64decode(data.encode("ascii"))
    return np.frombuffer(raw, dtype="<u8").astype(np.uint64)


def matrix_to_b64(matrix: np.ndarray) -> str:
    """Serialize a 2-D bitset matrix (rows of equal width)."""
    le = np.ascontiguousarray(matrix, dtype="<u8")
    return base64.b64encode(le.tobytes()).decode("ascii")


def matrix_from_b64(data: str, rows: int, words: int) -> np.ndarray:
    """Inverse of :func:`matrix_to_b64` for a known shape."""
    raw = base64.b64decode(data.encode("ascii"))
    flat = np.frombuffer(raw, dtype="<u8").astype(np.uint64)
    return flat.reshape(rows, words)


def column_bitset(matrix: np.ndarray, nrows: int, bit: int) -> np.ndarray:
    """Rows (of ``nrows``) whose row-bitset has ``bit`` set, as a bitset.

    This is the transpose probe the audience layer leans on: the store
    keeps *user-major* rows (one bitset of attributes per user), while
    audiences want *attribute-major* membership (one bitset of users per
    attribute). Extracting one attribute column is a strided word load,
    a shift, and a packbits — no per-user Python loop.
    """
    if nrows == 0 or matrix.size == 0:
        return make_bitset(nrows)
    word, shift = bit >> 6, np.uint64(bit & 63)
    flags = (matrix[:nrows, word] >> shift) & np.uint64(1)
    packed = np.packbits(flags.astype(np.uint8), bitorder="little")
    out = make_bitset(nrows)
    out_bytes = out.view(np.uint8)
    out_bytes[: packed.size] = packed
    return out


def select_rows(matrix: np.ndarray, rows: np.ndarray) -> List[np.ndarray]:
    """Materialize the given row bitsets (helper for lookalike probes)."""
    return [matrix[int(r)] for r in rows]


def pack_bools(flags: np.ndarray) -> np.ndarray:
    """Pack a boolean (or 0/1) row-flag array into a bitset.

    Bit ``i`` of the result is ``flags[i]`` — the inverse of
    :func:`unpack_range` over ``[0, len(flags))``. The batch sweep packs
    mask-program outputs through here so eligibility lives in the same
    word layout as the store's columns and the shown bitsets.
    """
    out = make_bitset(len(flags))
    if len(flags):
        packed = np.packbits(np.asarray(flags, dtype=np.uint8),
                             bitorder="little")
        out.view(np.uint8)[: packed.size] = packed
    return out


def unpack_range(bits: np.ndarray, start: int, stop: int) -> np.ndarray:
    """Bits ``[start, stop)`` of a bitset as a boolean array.

    ``start`` must be byte-aligned (``start % 8 == 0``; sweep callers
    use 64-aligned row ranges). Bits past the array's width read as
    zero, so a narrow bitset against a wide row range is handled the
    same way :func:`test_bit` handles it.
    """
    if start % 8 != 0:
        raise ValueError(f"unpack_range start must be byte-aligned, "
                         f"got {start}")
    n = stop - start
    out = np.zeros(max(0, n), dtype=bool)
    if n <= 0 or bits.size == 0:
        return out
    byte_view = np.ascontiguousarray(bits).view(np.uint8)
    take = min(n, max(0, byte_view.size * 8 - start))
    if take <= 0:
        return out
    first = start // 8
    nbytes = (take + 7) // 8
    out[:take] = np.unpackbits(
        byte_view[first:first + nbytes], count=take, bitorder="little",
    ).astype(bool)
    return out
