"""Platform presets: Facebook-, Google-, and Twitter-alikes.

The paper treats "Facebook, Google, and Twitter" as the three platforms a
transparency provider would cover (sections 1-2), and quotes each one's
ToS in section 4. These factories encode the public differences that
matter to Treads:

* **catalog shape** — Facebook's 614+507 catalog with partner categories;
  Google and Twitter with platform-computed attributes only (their broker
  integrations worked differently and are not the paper's target);
* **minimum custom-audience sizes** — Facebook's 20 vs the ~100 floor
  Google Customer Match and Twitter Tailored Audiences enforced;
* **review strictness** — Google's personalized-advertising policy was
  the broadest ("imply knowledge of ... sensitive information"), modelled
  as the strict reviewer;
* **market price level** — distinct competing-bid medians so multi-
  platform examples exercise different cost regimes.

The numbers are order-of-magnitude public knowledge, not measurements;
what matters for the reproduction is that the *differences* exist and the
Treads mechanics survive all three configurations (tested).
"""

from __future__ import annotations

from typing import Optional

from repro.platform.catalog import build_us_catalog
from repro.platform.platform import AdPlatform, PlatformConfig
from repro.workloads.competition import lognormal_competition


def facebook_like(name: str = "fbsim", seed: int = 18,
                  platform_count: int = 614,
                  partner_count: int = 507) -> AdPlatform:
    """The paper's validation target: partner categories, page-like
    opt-in loophole (min audience size 20 but page audiences exempt)."""
    return AdPlatform(
        config=PlatformConfig(
            name=name,
            default_cpm=2.0,
            min_custom_audience_size=20,
            policy_strictness="standard",
        ),
        catalog=build_us_catalog(platform_count, partner_count),
        competing_draw=lognormal_competition(median_cpm=2.0, seed=seed),
    )


def google_like(name: str = "googsim", seed: int = 19,
                platform_count: int = 450) -> AdPlatform:
    """Customer Match-style platform: no partner categories, keyword
    (custom intent/affinity) audiences, 100-member audience floor,
    strict personalized-advertising review."""
    return AdPlatform(
        config=PlatformConfig(
            name=name,
            default_cpm=2.5,
            min_custom_audience_size=100,
            policy_strictness="strict",
        ),
        catalog=build_us_catalog(platform_count, 0),
        competing_draw=lognormal_competition(median_cpm=2.5, seed=seed),
    )


def twitter_like(name: str = "twtrsim", seed: int = 20,
                 platform_count: int = 300) -> AdPlatform:
    """Tailored Audiences-style platform: smaller catalog, 100-member
    audience floor, standard review."""
    return AdPlatform(
        config=PlatformConfig(
            name=name,
            default_cpm=1.5,
            min_custom_audience_size=100,
            policy_strictness="standard",
        ),
        catalog=build_us_catalog(platform_count, 0),
        competing_draw=lognormal_competition(median_cpm=1.5, seed=seed),
    )


def all_major_platforms(seed: Optional[int] = None) -> list:
    """The paper's trio, ready for a MultiPlatformProvider."""
    kwargs = {} if seed is None else {"seed": seed}
    return [
        facebook_like(**kwargs),
        google_like(**({} if seed is None else {"seed": seed + 1})),
        twitter_like(**({} if seed is None else {"seed": seed + 2})),
    ]
