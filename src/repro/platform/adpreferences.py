"""The platform's "ad preferences" page — the incomplete status quo.

Platforms "reveal to a user a list of their attributes that an advertiser
can use" via an ad-preferences page (paper section 2.2), but prior work
([1], recounted in section 1) showed Facebook's page "does not reveal any
user information that is sourced from third parties (e.g., data brokers),
despite this information being available to advertisers for targeting".

This module reproduces that incompleteness precisely, because it is the
baseline Treads is measured against (benchmark E12):

* platform-computed attributes: **shown**;
* partner (data-broker) attributes: **hidden**;
* advertisers targeting the user via customer lists or pixels: listed *by
  name only* — never which PII or which activity was used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.platform.ads import AdInventory
from repro.platform.attributes import AttributeCatalog, AttributeSource
from repro.platform.audiences import AudienceRegistry
from repro.platform.users import UserProfile


@dataclass(frozen=True)
class AdPreferencesView:
    """What one user sees on the ad-preferences page."""

    user_id: str
    #: (attr_id, display name) of platform-computed attributes only.
    shown_attributes: Tuple[Tuple[str, str], ...]
    #: Advertiser account ids that have included this user in a custom
    #: (PII or pixel) audience — names only, no mechanism details.
    advertisers_with_custom_audiences: Tuple[str, ...]

    @property
    def shown_attribute_ids(self) -> Tuple[str, ...]:
        return tuple(attr_id for attr_id, _ in self.shown_attributes)


class AdPreferencesService:
    """Builds the (incomplete) user-facing transparency page."""

    def __init__(
        self,
        catalog: AttributeCatalog,
        audiences: AudienceRegistry,
        inventory: AdInventory,
    ):
        self._catalog = catalog
        self._audiences = audiences
        self._inventory = inventory

    def view_for(self, user: UserProfile) -> AdPreferencesView:
        shown: List[Tuple[str, str]] = []
        for attr_id in sorted(user.binary_attrs | set(user.multi_attrs)):
            if attr_id not in self._catalog:
                continue  # e.g. partner categories after shutdown
            attribute = self._catalog.get(attr_id)
            if attribute.source is AttributeSource.PARTNER:
                continue  # the documented gap: broker data is never shown
            shown.append((attr_id, attribute.name))

        advertisers: List[str] = []
        for account in self._inventory.accounts():
            for audience in self._audiences.audiences_owned_by(
                    account.account_id):
                if user.user_id in self._audiences.members(
                        audience.audience_id):
                    advertisers.append(account.account_id)
                    break
        return AdPreferencesView(
            user_id=user.user_id,
            shown_attributes=tuple(shown),
            advertisers_with_custom_audiences=tuple(sorted(set(advertisers))),
        )

    def hidden_partner_attributes(self, user: UserProfile) -> List[str]:
        """Ground truth of what the page hides — used by the completeness
        metrics, never by any user/advertiser-facing surface."""
        hidden = []
        for attr_id in sorted(user.binary_attrs | set(user.multi_attrs)):
            if attr_id in self._catalog and \
                    self._catalog.get(attr_id).source is AttributeSource.PARTNER:
                hidden.append(attr_id)
        return hidden
