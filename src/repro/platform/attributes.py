"""Targeting attributes and the attribute catalog.

Advertising platforms expose a pre-selected list of *targeting attributes*
(paper section 2.1). Attributes are typically binary ("is single", "net
worth $1M-$2M") but some — age, location, relationship status — range over
many values. Attributes are either computed by the platform itself or
sourced from third-party data brokers ("partner categories" in Facebook's
terminology); as of early 2018 Facebook offered 614 platform attributes and
507 US partner attributes (paper section 2.1, citing [1]).

This module defines the :class:`Attribute` value object and the
:class:`AttributeCatalog` container with the lookup/search operations that
the targeting layer and the Treads planner rely on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import CatalogError


class AttributeSource(enum.Enum):
    """Where an attribute's data comes from."""

    #: Computed by the platform from on/off-platform activity.
    PLATFORM = "platform"
    #: Sourced from an external data broker ("partner category").
    PARTNER = "partner"


class AttributeKind(enum.Enum):
    """Value structure of an attribute."""

    #: The attribute is set or not set for a user (the common case).
    BINARY = "binary"
    #: The attribute takes exactly one of an enumerated set of values.
    MULTI = "multi"


@dataclass(frozen=True)
class Attribute:
    """One entry of a platform's targeting-attribute catalog.

    Attributes are immutable and hashable so they can key dictionaries and
    populate sets throughout the simulator.

    Parameters
    ----------
    attr_id:
        Stable identifier, unique within a catalog (``"pc-networth-007"``).
    name:
        Human-readable name shown to advertisers ("Net worth: $2M+").
    source:
        :class:`AttributeSource` — platform-computed or broker-sourced.
    kind:
        :class:`AttributeKind` — binary or multi-valued.
    category:
        Hierarchical category path as shown in the advertiser UI,
        e.g. ``("Financial", "Net worth")``.
    values:
        For MULTI attributes, the enumerated value set (in a stable order);
        empty for BINARY attributes.
    broker:
        Name of the sourcing data broker for PARTNER attributes.
    countries:
        Country codes where the attribute is offered to advertisers.
        Facebook provides different partner attributes per country (paper
        section 3.1); the validation uses the US catalog.
    """

    attr_id: str
    name: str
    source: AttributeSource
    kind: AttributeKind = AttributeKind.BINARY
    category: Tuple[str, ...] = ()
    values: Tuple[str, ...] = ()
    broker: Optional[str] = None
    countries: Tuple[str, ...] = ("US",)

    def __post_init__(self) -> None:
        if self.kind is AttributeKind.MULTI and not self.values:
            raise CatalogError(
                f"multi-valued attribute {self.attr_id!r} needs values"
            )
        if self.kind is AttributeKind.BINARY and self.values:
            raise CatalogError(
                f"binary attribute {self.attr_id!r} must not carry values"
            )
        if self.source is AttributeSource.PARTNER and not self.broker:
            raise CatalogError(
                f"partner attribute {self.attr_id!r} needs a broker name"
            )

    @property
    def is_partner(self) -> bool:
        """True for data-broker-sourced ("partner category") attributes."""
        return self.source is AttributeSource.PARTNER

    @property
    def is_binary(self) -> bool:
        return self.kind is AttributeKind.BINARY

    @property
    def cardinality(self) -> int:
        """Number of distinct values a user's assignment can take.

        Binary attributes count as 2 (set / not-set); multi-valued
        attributes count their enumerated values.
        """
        if self.kind is AttributeKind.BINARY:
            return 2
        return len(self.values)

    def value_index(self, value: str) -> int:
        """Position of ``value`` in the enumerated value set.

        The Treads bit-splitting scheme (paper section 3.1 "Scale") encodes
        a user's value as its index, revealed one bit per Tread.
        """
        try:
            return self.values.index(value)
        except ValueError:
            raise CatalogError(
                f"{value!r} is not a value of attribute {self.attr_id!r}"
            ) from None

    def offered_in(self, country: str) -> bool:
        """Whether advertisers in ``country`` may target this attribute."""
        return country in self.countries


@dataclass
class AttributeCatalog:
    """The pre-selected attribute list a platform offers advertisers.

    Supports id lookup, keyword search (platforms let advertisers search
    the catalog by keyword — paper section 2.1), and the source/country
    filters the Treads planner needs to enumerate "all US partner
    categories".
    """

    attributes: List[Attribute] = field(default_factory=list)
    _by_id: Dict[str, Attribute] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        for attribute in self.attributes:
            if attribute.attr_id in self._by_id:
                raise CatalogError(f"duplicate attribute id {attribute.attr_id!r}")
            self._by_id[attribute.attr_id] = attribute

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __contains__(self, attr_id: str) -> bool:
        return attr_id in self._by_id

    def add(self, attribute: Attribute) -> None:
        """Add one attribute; duplicate ids are rejected."""
        if attribute.attr_id in self._by_id:
            raise CatalogError(f"duplicate attribute id {attribute.attr_id!r}")
        self.attributes.append(attribute)
        self._by_id[attribute.attr_id] = attribute

    def remove(self, attr_id: str) -> Attribute:
        """Remove and return an attribute.

        Used to model Facebook shutting down partner categories (paper
        footnote 2): the broker-sourced attributes disappear from the
        catalog offered to advertisers.
        """
        attribute = self.get(attr_id)
        self.attributes.remove(attribute)
        del self._by_id[attr_id]
        return attribute

    def get(self, attr_id: str) -> Attribute:
        """Look up an attribute by id; raises :class:`CatalogError`."""
        try:
            return self._by_id[attr_id]
        except KeyError:
            raise CatalogError(f"unknown attribute id {attr_id!r}") from None

    def search(self, keyword: str, country: str = "US") -> List[Attribute]:
        """Keyword search over names and categories, like the advertiser UI.

        Case-insensitive substring match over the attribute name and its
        category path, restricted to attributes offered in ``country``.
        """
        needle = keyword.strip().lower()
        if not needle:
            return []
        hits = []
        for attribute in self.attributes:
            if not attribute.offered_in(country):
                continue
            haystack = " ".join((attribute.name, *attribute.category)).lower()
            if needle in haystack:
                hits.append(attribute)
        return hits

    def by_source(
        self, source: AttributeSource, country: str = "US"
    ) -> List[Attribute]:
        """All attributes of one source offered in ``country``."""
        return [
            attribute
            for attribute in self.attributes
            if attribute.source is source and attribute.offered_in(country)
        ]

    def partner_attributes(self, country: str = "US") -> List[Attribute]:
        """The "partner categories" — broker-sourced attributes.

        These are the attributes the paper's validation makes transparent:
        available to advertisers for targeting but hidden from users by
        the platform's own transparency surfaces.
        """
        return self.by_source(AttributeSource.PARTNER, country)

    def platform_attributes(self, country: str = "US") -> List[Attribute]:
        """Platform-computed attributes offered in ``country``."""
        return self.by_source(AttributeSource.PLATFORM, country)

    def binary_attributes(self, country: str = "US") -> List[Attribute]:
        """All binary attributes offered in ``country``."""
        return [
            attribute
            for attribute in self.attributes
            if attribute.is_binary and attribute.offered_in(country)
        ]

    def multi_attributes(self, country: str = "US") -> List[Attribute]:
        """All multi-valued attributes offered in ``country``."""
        return [
            attribute
            for attribute in self.attributes
            if not attribute.is_binary and attribute.offered_in(country)
        ]

    def subset(self, attr_ids: Iterable[str]) -> "AttributeCatalog":
        """A new catalog holding only the named attributes (stable order)."""
        wanted = set(attr_ids)
        missing = wanted - set(self._by_id)
        if missing:
            raise CatalogError(f"unknown attribute ids: {sorted(missing)}")
        kept = [a for a in self.attributes if a.attr_id in wanted]
        return AttributeCatalog(attributes=kept)


def make_binary(
    attr_id: str,
    name: str,
    category: Sequence[str],
    source: AttributeSource = AttributeSource.PLATFORM,
    broker: Optional[str] = None,
    countries: Sequence[str] = ("US",),
) -> Attribute:
    """Convenience constructor for the common binary-attribute case."""
    return Attribute(
        attr_id=attr_id,
        name=name,
        source=source,
        kind=AttributeKind.BINARY,
        category=tuple(category),
        broker=broker,
        countries=tuple(countries),
    )


def make_multi(
    attr_id: str,
    name: str,
    category: Sequence[str],
    values: Sequence[str],
    source: AttributeSource = AttributeSource.PLATFORM,
    broker: Optional[str] = None,
    countries: Sequence[str] = ("US",),
) -> Attribute:
    """Convenience constructor for multi-valued attributes (age, ZIP, ...)."""
    return Attribute(
        attr_id=attr_id,
        name=name,
        source=source,
        kind=AttributeKind.MULTI,
        category=tuple(category),
        values=tuple(values),
        broker=broker,
        countries=tuple(countries),
    )
