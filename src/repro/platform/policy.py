"""ToS review: the "personal attributes" rule, and Tread-pattern detection.

Section 4 of the paper quotes the policy text of all three major
platforms: Facebook ads "must not contain content that asserts or implies
personal attributes"; Twitter ads "must not assert or imply knowledge of
personal information"; Google forbids ads that "imply knowledge of
personally identifiable or sensitive information within the ad".

Two properties of real review matter for Treads and are reproduced here:

1. review scans only the **ad's visible text** — not external landing
   pages — so a Tread that reveals targeting on its landing page, or one
   that obfuscates the payload into an innocuous code ("2,830,120"),
   passes review (paper section 4, "Co-operation from platforms");
2. review is per-ad and lexicon-driven — it flags second-person assertions
   of sensitive attributes, the "creepy ad" pattern the rule exists for.

:class:`TreadPatternDetector` models the *future* countermeasure the paper
anticipates ("If advertising platforms forbid all forms of Treads"): a
platform-side auditor that flags accounts running many near-identical
single-attribute ads at the same audience. The crowdsourcing evasion of
section 4 shards the attribute set across accounts to stay under its
per-account threshold (benchmark E11).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.platform.ads import Ad, AdCreative
from repro.platform.attributes import AttributeCatalog

#: Second-person phrasings that "assert or imply" something about the viewer.
_SECOND_PERSON_PATTERNS = (
    r"\byou are\b",
    r"\byou're\b",
    r"\byou have\b",
    r"\byou recently\b",
    r"\byou live\b",
    r"\byou earn\b",
    r"\byou bought\b",
    r"\byou visited\b",
    r"\byour\b",
    r"\baccording to (this|the) (ad )?platform\b",
    r"\bwe know\b",
    r"\bthis platform (thinks|believes|knows)\b",
)

#: Sensitive-attribute vocabulary (financial, relationship, health,
#: employment, purchase behaviour) drawn from the categories platforms'
#: policies call out.
_SENSITIVE_TERMS = (
    "net worth", "income", "salary", "debt", "credit",
    "single", "married", "divorced", "widowed", "engaged",
    "relationship", "pregnant", "parent",
    "unemployed", "job role", "job", "employer", "occupation",
    "purchase", "purchases", "bought", "buys", "shopping",
    "donate", "donates", "donation",
    "medical", "health", "diagnosis",
    "religion", "religious", "ethnic", "race",
    "age", "birthday", "net-worth",
    "interested in", "interests",
    "home type", "home value", "homeowner", "renter",
    "automobile", "vehicle", "car you",
    "worth over", "worth between",
)

_SECOND_PERSON_RE = re.compile(
    "|".join(_SECOND_PERSON_PATTERNS), re.IGNORECASE
)


@dataclass(frozen=True)
class ReviewResult:
    """Outcome of reviewing one creative."""

    approved: bool
    rule_id: Optional[str] = None
    reasons: Tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return self.approved


class PolicyEngine:
    """The platform's ad-review pipeline.

    ``strictness`` tunes how aggressively implied attributes are flagged:

    * ``"standard"`` — flag second-person + sensitive-term co-occurrence
      and second-person + verbatim catalog attribute names (default;
      models review as the paper found it in 2018);
    * ``"lenient"`` — only flag explicit "according to this platform"
      style assertions;
    * ``"strict"`` — additionally flag any verbatim catalog attribute
      name in ad text, even without second-person phrasing.
    """

    RULE_PERSONAL_ATTRIBUTES = "personal-attributes"

    def __init__(self, catalog: AttributeCatalog, strictness: str = "standard"):
        if strictness not in ("lenient", "standard", "strict"):
            raise ValueError(f"unknown strictness {strictness!r}")
        self._catalog = catalog
        self.strictness = strictness
        # Pre-lower attribute names once; review runs per submitted ad.
        self._attribute_names = [
            attribute.name.lower() for attribute in catalog
        ]

    def review(self, creative: AdCreative) -> ReviewResult:
        """Review one creative's visible text (landing pages NOT fetched)."""
        text = creative.visible_text().lower()
        reasons: List[str] = []

        second_person = bool(_SECOND_PERSON_RE.search(text))
        explicit_assertion = bool(
            re.search(r"according to (this|the) (ad )?platform", text)
        )
        sensitive_hits = [term for term in _SENSITIVE_TERMS if term in text]
        name_hits = [name for name in self._attribute_names if name in text]

        if explicit_assertion:
            reasons.append("explicitly asserts platform knowledge")
        if self.strictness in ("standard", "strict"):
            if second_person and sensitive_hits:
                reasons.append(
                    "second-person assertion of sensitive attribute "
                    f"({', '.join(sensitive_hits[:3])})"
                )
            if second_person and name_hits:
                reasons.append(
                    f"second-person use of catalog attribute name "
                    f"({name_hits[0]!r})"
                )
        if self.strictness == "strict" and name_hits:
            reasons.append(
                f"verbatim catalog attribute name ({name_hits[0]!r})"
            )

        if reasons:
            return ReviewResult(
                approved=False,
                rule_id=self.RULE_PERSONAL_ATTRIBUTES,
                reasons=tuple(reasons),
            )
        return ReviewResult(approved=True)


#: Categories subject to the anti-discrimination targeting rules
#: (Facebook's post-ProPublica "special ad categories").
SPECIAL_AD_CATEGORIES = ("housing", "employment", "credit")

#: Partner-attribute id prefixes considered proxies for protected classes
#: or financial standing in special-category review.
_SPECIAL_SENSITIVE_PREFIXES = (
    "pc-networth", "pc-income", "pc-credit", "pc-homevalue",
)


def review_targeting_for_special_category(
    spec: "TargetingSpec",
    special_category: str,
) -> ReviewResult:
    """Anti-discrimination review of a housing/employment/credit ad.

    Section 5 recounts the ProPublica findings ("Facebook Lets
    Advertisers Exclude Users by Race", still exploitable as of late
    2017). The rule set mirrors the remediation platforms adopted:
    special-category ads may not use age, gender, or ZIP targeting, may
    not EXCLUDE any attribute, and may not target financial-standing
    proxies. Note what it deliberately does NOT catch — the covert
    proxy channels of [29] (e.g. lookalikes of a skewed seed audience)
    pass, which the tests document as the rule's known limitation.
    """
    from repro.platform.targeting import (
        AgeBetween,
        GenderIs,
        HasAttr,
        InZip,
        Not,
        TargetingSpec,
    )

    if special_category not in SPECIAL_AD_CATEGORIES:
        raise ValueError(
            f"unknown special ad category {special_category!r}"
        )
    reasons: List[str] = []
    for node in spec.expr.walk():
        if isinstance(node, AgeBetween):
            reasons.append("age targeting forbidden for special-category "
                           "ads")
        elif isinstance(node, GenderIs):
            reasons.append("gender targeting forbidden for "
                           "special-category ads")
        elif isinstance(node, InZip):
            reasons.append("ZIP targeting forbidden for special-category "
                           "ads")
        elif isinstance(node, Not):
            for inner in node.child.walk():
                if isinstance(inner, HasAttr):
                    reasons.append(
                        f"exclusion targeting ({inner.attr_id!r}) "
                        "forbidden for special-category ads"
                    )
                    break
    for attr_id in spec.referenced_attributes():
        if any(attr_id.startswith(prefix)
               for prefix in _SPECIAL_SENSITIVE_PREFIXES):
            reasons.append(
                f"financial-standing attribute ({attr_id!r}) forbidden "
                "for special-category ads"
            )
    if reasons:
        return ReviewResult(
            approved=False,
            rule_id=f"special-category-{special_category}",
            reasons=tuple(dict.fromkeys(reasons)),
        )
    return ReviewResult(approved=True)


@dataclass(frozen=True)
class AccountFlag:
    """One account flagged by the Tread-pattern detector."""

    account_id: str
    score: int
    reason: str


class TreadPatternDetector:
    """Platform-side auditor for transparency-campaign patterns.

    Scores each account by the number of active ads that (a) positively
    target exactly one catalog attribute and (b) share a common custom
    audience with the account's other single-attribute ads. Accounts whose
    score reaches ``per_account_threshold`` are flagged.

    The threshold models review economics: a handful of single-attribute
    ads is ordinary A/B practice; hundreds at one audience is the Tread
    signature. Section 4's evasion spreads the catalog across many small
    accounts so each stays under threshold.
    """

    def __init__(self, per_account_threshold: int = 50):
        if per_account_threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.per_account_threshold = per_account_threshold

    def _single_attribute_ads(self, ads: Sequence[Ad]) -> List[Ad]:
        return [
            ad for ad in ads
            if len(ad.targeting.positively_targeted_attributes()) == 1
        ]

    def score_account(self, ads: Sequence[Ad]) -> int:
        """Suspicion score for one account's ads.

        The score is the size of the largest group of single-attribute ads
        sharing one audience anchor — a custom audience or a liked page —
        (0 when ads target no such anchor).
        """
        from repro.platform.targeting import InAudience, LikesPage

        groups: Dict[str, int] = {}
        for ad in self._single_attribute_ads(ads):
            anchors = set()
            for node in ad.targeting.expr.walk():
                if isinstance(node, InAudience):
                    anchors.add(f"audience:{node.audience_id}")
                elif isinstance(node, LikesPage):
                    anchors.add(f"page:{node.page_id}")
            for anchor in anchors:
                groups[anchor] = groups.get(anchor, 0) + 1
        if not groups:
            return 0
        return max(groups.values())

    def audit(self, ads_by_account: Dict[str, Sequence[Ad]]) -> List[AccountFlag]:
        """Audit all accounts; returns flags for those over threshold."""
        flags: List[AccountFlag] = []
        for account_id, ads in sorted(ads_by_account.items()):
            score = self.score_account(ads)
            if score >= self.per_account_threshold:
                flags.append(
                    AccountFlag(
                        account_id=account_id,
                        score=score,
                        reason=(
                            f"{score} single-attribute ads at one audience "
                            f"(threshold {self.per_account_threshold})"
                        ),
                    )
                )
        return flags
