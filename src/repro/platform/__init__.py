"""Simulated online advertising platform (the substrate).

The Treads mechanism (paper section 3) relies only on the behavioural
*contract* of targeted-advertising platforms:

1. an ad is delivered to a user iff the user satisfies the ad's targeting
   specification and the ad wins the impression auction;
2. the platform never reveals to the advertiser *which* individual users
   matched or saw an ad — only thresholded aggregates;
3. advertisers pay per impression (CPM) under a bid cap;
4. audiences can be built from attributes, uploaded (hashed) PII, and
   tracking-pixel activity;
5. ad creatives pass a ToS review that forbids asserting personal
   attributes.

This subpackage implements that contract from scratch: user profiles and an
attribute catalog (:mod:`~repro.platform.attributes`,
:mod:`~repro.platform.catalog`), data brokers
(:mod:`~repro.platform.databroker`), targeting
(:mod:`~repro.platform.targeting`), audiences
(:mod:`~repro.platform.audiences`), auctions and delivery
(:mod:`~repro.platform.auction`, :mod:`~repro.platform.delivery`), billing
and privacy-thresholded reporting (:mod:`~repro.platform.billing`,
:mod:`~repro.platform.reporting`), policy review
(:mod:`~repro.platform.policy`), and the platform's own (incomplete)
transparency surfaces (:mod:`~repro.platform.adpreferences`,
:mod:`~repro.platform.explanations`).

The :class:`~repro.platform.platform.AdPlatform` facade wires everything
together; instantiate several with different configs to model
Facebook/Google/Twitter-alikes.
"""

from repro.platform.attributes import (
    Attribute,
    AttributeCatalog,
    AttributeKind,
    AttributeSource,
)
from repro.platform.catalog import build_us_catalog
from repro.platform.platform import AdPlatform, PlatformConfig

__all__ = [
    "AdPlatform",
    "Attribute",
    "AttributeCatalog",
    "AttributeKind",
    "AttributeSource",
    "PlatformConfig",
    "build_us_catalog",
]
