"""Ad accounts, pages, campaigns, ads, and creatives.

"Anyone with a Facebook account can be an advertiser on Facebook" (paper
section 3.1) — an :class:`AdAccount` is cheap to create, which is also what
makes the crowdsourced-provider evasion of section 4 feasible.

An :class:`Ad` bundles a creative (text, optional image, optional landing
URL), a targeting spec, and a CPM bid cap. Ads start in review
(:class:`AdStatus.PENDING_REVIEW`) and must pass the ToS check
(:mod:`repro.platform.policy`) before they can win impressions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import AccountError, BudgetError, CampaignError
from repro.platform.targeting import TargetingSpec


@dataclass
class AdImage:
    """A tiny raster image: one grayscale byte per pixel, row-major.

    Enough structure for the steganographic Treads of section 3 ("this
    information could be encoded into the ad image ... via steganographic
    techniques") without pulling in an imaging library.
    """

    width: int
    height: int
    pixels: bytearray
    #: Cached read-only view handed to delivered feeds (see
    #: :meth:`frozen`); never part of equality or the constructor.
    _frozen_view: Optional["AdImage"] = field(
        default=None, init=False, repr=False, compare=False
    )

    @classmethod
    def blank(cls, width: int = 64, height: int = 64,
              shade: int = 128) -> "AdImage":
        if not 0 <= shade <= 255:
            raise ValueError("shade must be a byte")
        return cls(width=width, height=height,
                   pixels=bytearray([shade]) * (width * height))

    def __len__(self) -> int:
        return len(self.pixels)

    def copy(self) -> "AdImage":
        return AdImage(self.width, self.height, bytearray(self.pixels))

    def frozen(self) -> "AdImage":
        """A shared read-only view of this image.

        Creative pixels are immutable once the ad is rendered and
        submitted, so delivery hands every impression the *same* frozen
        view (``bytes`` pixels) instead of deep-copying the buffer per
        impression. The cached view is revalidated against the live
        pixels, so a (contract-violating) post-render mutation still
        yields a correct view rather than a stale one.
        """
        view = self._frozen_view
        if view is None or view.pixels != self.pixels:
            view = AdImage(self.width, self.height, bytes(self.pixels))
            self._frozen_view = view
        return view


@dataclass(frozen=True)
class LandingURL:
    """Destination of an ad click: a domain plus a path."""

    domain: str
    path: str = "/"

    def __str__(self) -> str:
        return f"https://{self.domain}{self.path}"


@dataclass
class AdCreative:
    """The user-visible content of an ad.

    For Treads, the targeting payload lives in ``body`` (explicit or
    codebook-encoded), in ``image`` (steganographic), or on the page
    behind ``landing_url``.
    """

    headline: str
    body: str
    image: Optional[AdImage] = None
    landing_url: Optional[LandingURL] = None

    def visible_text(self) -> str:
        """All human-readable text the ToS reviewer scans."""
        return f"{self.headline}\n{self.body}"


class AdStatus(enum.Enum):
    PENDING_REVIEW = "pending_review"
    ACTIVE = "active"
    REJECTED = "rejected"
    PAUSED = "paused"


@dataclass
class Ad:
    """One ad: creative + targeting + bid, with review state.

    ``special_category`` marks housing/employment/credit ads, which are
    subject to the anti-discrimination targeting review (see
    :meth:`repro.platform.policy.PolicyEngine.review_targeting` and the
    paper's section 5 discussion of discriminatory advertising).
    """

    ad_id: str
    account_id: str
    campaign_id: str
    creative: AdCreative
    targeting: TargetingSpec
    #: Maximum bid, in dollars per thousand impressions (paper: the
    #: recommended default for US users is $2 CPM; the validation used $10).
    bid_cap_cpm: float
    status: AdStatus = AdStatus.PENDING_REVIEW
    review_note: str = ""
    special_category: Optional[str] = None

    @property
    def bid_per_impression(self) -> float:
        """Bid cap expressed per single impression."""
        return self.bid_cap_cpm / 1000.0

    def require_active(self) -> None:
        if self.status is not AdStatus.ACTIVE:
            raise CampaignError(
                f"ad {self.ad_id!r} is {self.status.value}, not active"
            )


@dataclass
class Campaign:
    """A named group of ads sharing an account and a budget."""

    campaign_id: str
    account_id: str
    name: str
    ad_ids: List[str] = field(default_factory=list)


@dataclass
class PlatformPage:
    """A page *on the platform* (not a website page) that users can like.

    The paper's validation created one and had the authors like it as the
    opt-in signal.
    """

    page_id: str
    owner_account_id: str
    name: str


@dataclass
class AdAccount:
    """An advertiser account with a prepaid budget.

    ``budget`` is decremented by the billing engine as impressions are
    charged; ads stop delivering when the budget is exhausted.
    """

    account_id: str
    owner_name: str
    country: str = "US"
    budget: float = 0.0
    campaign_ids: List[str] = field(default_factory=list)
    page_ids: List[str] = field(default_factory=list)

    def deposit(self, amount: float) -> None:
        if amount <= 0:
            raise BudgetError("deposit must be positive")
        self.budget += amount

    def charge(self, amount: float) -> None:
        """Deduct a charge; overdrafts are a billing-engine bug."""
        if amount < 0:
            raise BudgetError("charge must be non-negative")
        if amount > self.budget + 1e-12:
            raise BudgetError(
                f"account {self.account_id!r} cannot pay {amount:.6f}; "
                f"budget is {self.budget:.6f}"
            )
        self.budget -= amount

    def can_afford(self, amount: float) -> bool:
        return self.budget + 1e-12 >= amount


class AdInventory:
    """Platform-internal store of accounts, pages, campaigns, and ads."""

    def __init__(self) -> None:
        self._accounts: Dict[str, AdAccount] = {}
        self._campaigns: Dict[str, Campaign] = {}
        self._ads: Dict[str, Ad] = {}
        self._pages: Dict[str, PlatformPage] = {}

    # -- accounts ------------------------------------------------------

    def add_account(self, account: AdAccount) -> AdAccount:
        if account.account_id in self._accounts:
            raise AccountError(f"duplicate account {account.account_id!r}")
        self._accounts[account.account_id] = account
        return account

    def account(self, account_id: str) -> AdAccount:
        try:
            return self._accounts[account_id]
        except KeyError:
            raise AccountError(f"unknown account {account_id!r}") from None

    def accounts(self) -> List[AdAccount]:
        return list(self._accounts.values())

    # -- pages -----------------------------------------------------------

    def add_page(self, page: PlatformPage) -> PlatformPage:
        if page.page_id in self._pages:
            raise AccountError(f"duplicate page {page.page_id!r}")
        self._pages[page.page_id] = page
        self.account(page.owner_account_id).page_ids.append(page.page_id)
        return page

    def page(self, page_id: str) -> PlatformPage:
        try:
            return self._pages[page_id]
        except KeyError:
            raise AccountError(f"unknown page {page_id!r}") from None

    # -- campaigns & ads ---------------------------------------------------

    def add_campaign(self, campaign: Campaign) -> Campaign:
        if campaign.campaign_id in self._campaigns:
            raise CampaignError(f"duplicate campaign {campaign.campaign_id!r}")
        self.account(campaign.account_id)  # must exist
        self._campaigns[campaign.campaign_id] = campaign
        self.account(campaign.account_id).campaign_ids.append(
            campaign.campaign_id
        )
        return campaign

    def campaign(self, campaign_id: str) -> Campaign:
        try:
            return self._campaigns[campaign_id]
        except KeyError:
            raise CampaignError(f"unknown campaign {campaign_id!r}") from None

    def add_ad(self, ad: Ad) -> Ad:
        if ad.ad_id in self._ads:
            raise CampaignError(f"duplicate ad {ad.ad_id!r}")
        campaign = self.campaign(ad.campaign_id)
        if campaign.account_id != ad.account_id:
            raise CampaignError(
                f"ad {ad.ad_id!r} account does not match its campaign"
            )
        self._ads[ad.ad_id] = ad
        campaign.ad_ids.append(ad.ad_id)
        return ad

    def ad(self, ad_id: str) -> Ad:
        try:
            return self._ads[ad_id]
        except KeyError:
            raise CampaignError(f"unknown ad {ad_id!r}") from None

    def ads(self) -> List[Ad]:
        return list(self._ads.values())

    def ad_count(self) -> int:
        """Number of ads ever added (ads are never removed, so this is a
        monotonic version stamp the delivery index keys its incremental
        maintenance on)."""
        return len(self._ads)

    def active_ads(self) -> List[Ad]:
        return [ad for ad in self._ads.values()
                if ad.status is AdStatus.ACTIVE]

    def ads_in_campaign(self, campaign_id: str) -> List[Ad]:
        return [self._ads[ad_id]
                for ad_id in self.campaign(campaign_id).ad_ids]

    def ads_owned_by(self, account_id: str) -> List[Ad]:
        return [ad for ad in self._ads.values()
                if ad.account_id == account_id]
