"""Columnar user store: numpy attribute matrices behind the profile API.

The object-per-user model (:class:`~repro.platform.users.UserProfile`,
a dict-of-sets per user) tops out around the 2,000-user scale tier; the
paper's premise — an ad platform profiling *millions* of users — needs a
store whose per-user cost is a handful of bytes per column, not a Python
object graph. This module is that store:

* **Demographics and multi-valued attributes** are integer-coded numpy
  arrays over interned value vocabularies (:class:`_Vocab`): ``age`` is
  an ``int16`` column, ``gender`` an ``int16`` of codes into a gender
  vocabulary, each multi attribute an ``int16`` column whose 0 means
  "unassigned".
* **Binary attributes and page likes** are packed ``uint64`` bitset rows
  (:mod:`repro.platform.bitset`): user-major matrices where row ``r``
  bit ``c`` says user ``r`` carries attribute-code ``c``. Audience
  materialization transposes these with one strided pass
  (:func:`~repro.platform.bitset.column_bitset`) instead of scanning
  profiles.
* **PII** is a ``kind:digest -> row`` hash index, exactly mirroring the
  legacy store's reverse index (including its quirk: PII added through a
  profile/view after registration is stored but *not* indexed unless it
  flows through ``attach_pii``).

:class:`UserView` is a flyweight facade over one row that preserves the
``UserProfile`` read/write API — ``binary_attrs``/``multi_attrs``/
``liked_pages`` behave like the sets and dicts compiled targeting
matchers expect — so every layer above (targeting, delivery, audiences,
brokers, reporting) runs unchanged on either store.
:class:`ColumnarUserStore` duck-types :class:`~repro.platform.users
.UserStore` and is selected with ``PlatformConfig(columnar_users=True)``.

User ids are usually the dense ``<prefix>-user-<n>`` sequence the
platform's :class:`~repro.ids.IdFactory` hands out; the store detects
that and stores only the pattern (no 10⁶ id strings), falling back to an
explicit id table the first time an id breaks the sequence.

The store is a snapshot-only :class:`~repro.store.store.StateOwner`
(``handled_kinds`` is empty — profile mutations are world-build state,
not journaled deltas): ``state_dump``/``state_load`` round-trip every
column block through base64-encoded little-endian bytes.
"""

from __future__ import annotations

import base64
import re
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

import numpy as np

from repro.errors import CatalogError, PIIError, StoreError
from repro.hashing import PII_KINDS, hash_pii
from repro.platform import bitset
from repro.platform.attributes import Attribute, AttributeCatalog, AttributeKind
from repro.platform.users import UserProfile
from repro.store.store import StateStore

#: Initial row capacity; growth doubles from here.
_INITIAL_CAPACITY = 1024

#: Matches ``<prefix><digits>`` ids for the dense-id fast path.
_DENSE_ID = re.compile(r"^(.*?)(\d+)$")


def _arr_to_b64(arr: np.ndarray, dtype: str) -> str:
    """Serialize an array as base64 over explicit little-endian bytes."""
    le = np.ascontiguousarray(arr, dtype=dtype)
    return base64.b64encode(le.tobytes()).decode("ascii")


def _arr_from_b64(data: str, dtype: str) -> np.ndarray:
    raw = base64.b64decode(data.encode("ascii"))
    return np.frombuffer(raw, dtype=dtype).copy()


class _Vocab:
    """Interned value vocabulary: value -> stable dense integer code.

    Codes are assigned in first-seen order and never change, so bitset
    columns and coded arrays stay valid as the vocabulary grows.
    """

    __slots__ = ("values", "_codes")

    def __init__(self, values: Tuple[str, ...] = ()) -> None:
        self.values: List[str] = []
        self._codes: Dict[str, int] = {}
        for value in values:
            self.code(value)

    def code(self, value: str) -> int:
        """The value's code, interning it on first sight."""
        code = self._codes.get(value)
        if code is None:
            code = len(self.values)
            self._codes[value] = code
            self.values.append(value)
        return code

    def get(self, value: str) -> Optional[int]:
        """The value's code, or None when never interned."""
        return self._codes.get(value)

    def __len__(self) -> int:
        return len(self.values)

    def __contains__(self, value: str) -> bool:
        return value in self._codes


class UserColumns:
    """The raw column blocks: one row per user, no id or PII knowledge.

    Demographics are coded scalars; binary attributes and page likes are
    user-major bitset matrices over the ``attrs``/``pages`` vocabularies;
    each multi attribute is a lazily-created ``int16`` column of value
    codes (0 = unassigned, value code = per-attribute vocab code + 1).
    """

    def __init__(self) -> None:
        self.count = 0
        self._capacity = _INITIAL_CAPACITY
        self.countries = _Vocab()
        self.genders = _Vocab()
        self.zips = _Vocab()
        self.age = np.zeros(self._capacity, dtype=np.int16)
        self.country = np.zeros(self._capacity, dtype=np.int16)
        self.gender = np.zeros(self._capacity, dtype=np.int16)
        self.zip = np.zeros(self._capacity, dtype=np.int32)
        self.attrs = _Vocab()
        self.attr_bits = np.zeros((self._capacity, 1), dtype=np.uint64)
        self.pages = _Vocab()
        self.page_bits = np.zeros((self._capacity, 1), dtype=np.uint64)
        #: multi attr id -> int16 column of value codes (0 = unassigned).
        self.multi_cols: Dict[str, np.ndarray] = {}
        #: multi attr id -> value vocabulary (column code = vocab code + 1).
        self.multi_vocabs: Dict[str, _Vocab] = {}

    # -- growth ------------------------------------------------------------

    def reserve(self, rows: int) -> None:
        """Pre-size every column for at least ``rows`` total rows."""
        if rows <= self._capacity:
            return
        new_cap = self._capacity
        while new_cap < rows:
            new_cap *= 2
        self.age = self._grown_1d(self.age, new_cap)
        self.country = self._grown_1d(self.country, new_cap)
        self.gender = self._grown_1d(self.gender, new_cap)
        self.zip = self._grown_1d(self.zip, new_cap)
        self.attr_bits = self._grown_2d(self.attr_bits, new_cap)
        self.page_bits = self._grown_2d(self.page_bits, new_cap)
        for attr_id, col in self.multi_cols.items():
            self.multi_cols[attr_id] = self._grown_1d(col, new_cap)
        self._capacity = new_cap

    @staticmethod
    def _grown_1d(arr: np.ndarray, capacity: int) -> np.ndarray:
        out = np.zeros(capacity, dtype=arr.dtype)
        out[: arr.shape[0]] = arr
        return out

    @staticmethod
    def _grown_2d(matrix: np.ndarray, capacity: int) -> np.ndarray:
        out = np.zeros((capacity, matrix.shape[1]), dtype=np.uint64)
        out[: matrix.shape[0]] = matrix
        return out

    def _widened(self, matrix: np.ndarray, words: int) -> np.ndarray:
        new_words = matrix.shape[1]
        while new_words < words:
            new_words *= 2
        out = np.zeros((matrix.shape[0], new_words), dtype=np.uint64)
        out[:, : matrix.shape[1]] = matrix
        return out

    def _attr_code(self, attr_id: str) -> int:
        code = self.attrs.code(attr_id)
        if code >= self.attr_bits.shape[1] * bitset.WORD_BITS:
            self.attr_bits = self._widened(
                self.attr_bits, bitset.words_for(code + 1))
        return code

    def _page_code(self, page_id: str) -> int:
        code = self.pages.code(page_id)
        if code >= self.page_bits.shape[1] * bitset.WORD_BITS:
            self.page_bits = self._widened(
                self.page_bits, bitset.words_for(code + 1))
        return code

    # -- row lifecycle -----------------------------------------------------

    def append_row(self, country: str, age: int, gender: str,
                   zip_code: str) -> int:
        """Add one user row; returns its row id."""
        if self.count >= self._capacity:
            self.reserve(self._capacity * 2)
        row = self.count
        self.age[row] = age
        self.country[row] = self.countries.code(country)
        self.gender[row] = self.genders.code(gender)
        self.zip[row] = self.zips.code(zip_code)
        self.count += 1
        return row

    # -- binary attributes -------------------------------------------------

    def set_attr(self, row: int, attr_id: str) -> None:
        # Resolve the code *before* slicing out the row: interning a new
        # attribute may widen (replace) the matrix, and a pre-widening
        # row view would be too narrow for the new code.
        code = self._attr_code(attr_id)
        bitset.set_bit(self.attr_bits[row], code)

    def clear_attr(self, row: int, attr_id: str) -> None:
        code = self.attrs.get(attr_id)
        if code is not None:
            bitset.clear_bit(self.attr_bits[row], code)

    def has_attr(self, row: int, attr_id: str) -> bool:
        code = self.attrs.get(attr_id)
        return code is not None and bitset.test_bit(self.attr_bits[row], code)

    def attr_codes_of(self, row: int) -> np.ndarray:
        """Codes of the row's set binary attributes, ascending."""
        return bitset.to_indices(self.attr_bits[row])

    def attr_ids_of(self, row: int) -> List[str]:
        values = self.attrs.values
        return [values[int(c)] for c in self.attr_codes_of(row)]

    def attr_count_of(self, row: int) -> int:
        return bitset.popcount(self.attr_bits[row])

    # -- multi attributes --------------------------------------------------

    def set_multi(self, row: int, attr_id: str, value: str) -> None:
        col = self.multi_cols.get(attr_id)
        if col is None:
            col = np.zeros(self._capacity, dtype=np.int16)
            self.multi_cols[attr_id] = col
            self.multi_vocabs[attr_id] = _Vocab()
        col[row] = self.multi_vocabs[attr_id].code(value) + 1

    def get_multi(self, row: int, attr_id: str) -> Optional[str]:
        col = self.multi_cols.get(attr_id)
        if col is None:
            return None
        code = int(col[row])
        if code == 0:
            return None
        return self.multi_vocabs[attr_id].values[code - 1]

    def clear_multi(self, row: int, attr_id: str) -> None:
        col = self.multi_cols.get(attr_id)
        if col is not None:
            col[row] = 0

    def multi_ids_of(self, row: int) -> List[str]:
        """Assigned multi attribute ids, in column-creation order."""
        return [attr_id for attr_id, col in self.multi_cols.items()
                if col[row] != 0]

    # -- page likes --------------------------------------------------------

    def like(self, row: int, page_id: str) -> None:
        # Code first, then row view — interning may widen the matrix
        # (see set_attr).
        code = self._page_code(page_id)
        bitset.set_bit(self.page_bits[row], code)

    def unlike(self, row: int, page_id: str) -> None:
        code = self.pages.get(page_id)
        if code is not None:
            bitset.clear_bit(self.page_bits[row], code)

    def has_page(self, row: int, page_id: str) -> bool:
        code = self.pages.get(page_id)
        return code is not None and bitset.test_bit(self.page_bits[row], code)

    def page_ids_of(self, row: int) -> List[str]:
        values = self.pages.values
        return [values[int(c)]
                for c in bitset.to_indices(self.page_bits[row])]

    # -- column (attribute-major) extraction -------------------------------

    def attr_column(self, attr_id: str) -> np.ndarray:
        """Bitset over rows: users with the *binary* attribute set."""
        code = self.attrs.get(attr_id)
        if code is None:
            return bitset.make_bitset(self.count)
        return bitset.column_bitset(self.attr_bits, self.count, code)

    def multi_assigned_column(self, attr_id: str) -> np.ndarray:
        """Bitset over rows: users with the multi attribute assigned."""
        col = self.multi_cols.get(attr_id)
        if col is None:
            return bitset.make_bitset(self.count)
        flags = (col[: self.count] != 0).astype(np.uint8)
        packed = np.packbits(flags, bitorder="little")
        out = bitset.make_bitset(self.count)
        out.view(np.uint8)[: packed.size] = packed
        return out

    def attribute_column(self, attr_id: str) -> np.ndarray:
        """Bitset over rows: ``has_attribute`` semantics (binary set OR
        multi assigned)."""
        out = self.attr_column(attr_id)
        if attr_id in self.multi_cols:
            out |= self.multi_assigned_column(attr_id)
        return out

    def page_column(self, page_id: str) -> np.ndarray:
        code = self.pages.get(page_id)
        if code is None:
            return bitset.make_bitset(self.count)
        return bitset.column_bitset(self.page_bits, self.count, code)

    # -- stats / serialization ---------------------------------------------

    def column_bytes(self) -> int:
        """Bytes held by every column at current capacity."""
        total = (self.age.nbytes + self.country.nbytes + self.gender.nbytes
                 + self.zip.nbytes + self.attr_bits.nbytes
                 + self.page_bits.nbytes)
        for col in self.multi_cols.values():
            total += col.nbytes
        return total

    def attr_density(self) -> float:
        """Fraction of (row, attribute-code) bits set."""
        if self.count == 0 or len(self.attrs) == 0:
            return 0.0
        set_bits = bitset.popcount(self.attr_bits[: self.count])
        return set_bits / float(self.count * len(self.attrs))

    def state_dump(self) -> Dict[str, Any]:
        """JSON-safe dump of every column block (rows, not capacity)."""
        n = self.count
        return {
            "count": n,
            "vocabs": {
                "countries": list(self.countries.values),
                "genders": list(self.genders.values),
                "zips": list(self.zips.values),
                "attrs": list(self.attrs.values),
                "pages": list(self.pages.values),
            },
            "age": _arr_to_b64(self.age[:n], "<i2"),
            "country": _arr_to_b64(self.country[:n], "<i2"),
            "gender": _arr_to_b64(self.gender[:n], "<i2"),
            "zip": _arr_to_b64(self.zip[:n], "<i4"),
            "attr_words": self.attr_bits.shape[1],
            "attr_bits": bitset.matrix_to_b64(self.attr_bits[:n]),
            "page_words": self.page_bits.shape[1],
            "page_bits": bitset.matrix_to_b64(self.page_bits[:n]),
            "multi": {
                attr_id: {
                    "values": list(self.multi_vocabs[attr_id].values),
                    "codes": _arr_to_b64(col[:n], "<i2"),
                }
                for attr_id, col in self.multi_cols.items()
            },
        }

    def state_load(self, state: Dict[str, Any]) -> None:
        """Replace every column block with a prior dump's."""
        n = int(state["count"])
        vocabs = state["vocabs"]
        self.countries = _Vocab(tuple(vocabs["countries"]))
        self.genders = _Vocab(tuple(vocabs["genders"]))
        self.zips = _Vocab(tuple(vocabs["zips"]))
        self.attrs = _Vocab(tuple(vocabs["attrs"]))
        self.pages = _Vocab(tuple(vocabs["pages"]))
        self._capacity = max(_INITIAL_CAPACITY, n)
        self.count = n
        self.age = self._grown_1d(_arr_from_b64(state["age"], "<i2")
                                  .astype(np.int16), self._capacity)
        self.country = self._grown_1d(_arr_from_b64(state["country"], "<i2")
                                      .astype(np.int16), self._capacity)
        self.gender = self._grown_1d(_arr_from_b64(state["gender"], "<i2")
                                     .astype(np.int16), self._capacity)
        self.zip = self._grown_1d(_arr_from_b64(state["zip"], "<i4")
                                  .astype(np.int32), self._capacity)
        attr_words = int(state["attr_words"])
        self.attr_bits = self._grown_2d(
            bitset.matrix_from_b64(state["attr_bits"], n, attr_words),
            self._capacity)
        page_words = int(state["page_words"])
        self.page_bits = self._grown_2d(
            bitset.matrix_from_b64(state["page_bits"], n, page_words),
            self._capacity)
        self.multi_cols = {}
        self.multi_vocabs = {}
        for attr_id, block in state.get("multi", {}).items():
            self.multi_vocabs[attr_id] = _Vocab(tuple(block["values"]))
            self.multi_cols[attr_id] = self._grown_1d(
                _arr_from_b64(block["codes"], "<i2").astype(np.int16),
                self._capacity)


class _BinaryAttrsView:
    """Set-like facade over one row of the binary-attribute matrix."""

    __slots__ = ("_store", "_row")

    def __init__(self, store: "ColumnarUserStore", row: int) -> None:
        self._store = store
        self._row = row

    def __contains__(self, attr_id: object) -> bool:
        return (isinstance(attr_id, str)
                and self._store.columns.has_attr(self._row, attr_id))

    def __iter__(self) -> Iterator[str]:
        return iter(self._store.columns.attr_ids_of(self._row))

    def __len__(self) -> int:
        return self._store.columns.attr_count_of(self._row)

    def __bool__(self) -> bool:
        return len(self) > 0

    def add(self, attr_id: str) -> None:
        self._store._set_binary(self._row, attr_id)

    def discard(self, attr_id: str) -> None:
        self._store._clear_binary(self._row, attr_id)

    def __and__(self, other) -> Set[str]:
        return set(self) & set(other)

    __rand__ = __and__

    def __or__(self, other) -> Set[str]:
        return set(self) | set(other)

    __ror__ = __or__

    def __sub__(self, other) -> Set[str]:
        return set(self) - set(other)

    def __rsub__(self, other) -> Set[str]:
        return set(other) - set(self)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (set, frozenset, _BinaryAttrsView)):
            return set(self) == set(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"{{{', '.join(map(repr, sorted(self)))}}}"


class _LikedPagesView:
    """Set-like facade over one row of the page-like matrix."""

    __slots__ = ("_store", "_row")

    def __init__(self, store: "ColumnarUserStore", row: int) -> None:
        self._store = store
        self._row = row

    def __contains__(self, page_id: object) -> bool:
        return (isinstance(page_id, str)
                and self._store.columns.has_page(self._row, page_id))

    def __iter__(self) -> Iterator[str]:
        return iter(self._store.columns.page_ids_of(self._row))

    def __len__(self) -> int:
        return bitset.popcount(self._store.columns.page_bits[self._row])

    def __bool__(self) -> bool:
        return len(self) > 0

    def add(self, page_id: str) -> None:
        self._store._like(self._row, page_id)

    def discard(self, page_id: str) -> None:
        self._store._unlike(self._row, page_id)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (set, frozenset, _LikedPagesView)):
            return set(self) == set(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"{{{', '.join(map(repr, sorted(self)))}}}"


class _MultiAttrsView:
    """Dict-like facade over one row of the multi-attribute columns."""

    __slots__ = ("_store", "_row")

    def __init__(self, store: "ColumnarUserStore", row: int) -> None:
        self._store = store
        self._row = row

    def __contains__(self, attr_id: object) -> bool:
        return (isinstance(attr_id, str)
                and self._store.columns.get_multi(self._row, attr_id)
                is not None)

    def get(self, attr_id: str, default: Optional[str] = None
            ) -> Optional[str]:
        value = self._store.columns.get_multi(self._row, attr_id)
        return value if value is not None else default

    def __getitem__(self, attr_id: str) -> str:
        value = self._store.columns.get_multi(self._row, attr_id)
        if value is None:
            raise KeyError(attr_id)
        return value

    def __setitem__(self, attr_id: str, value: str) -> None:
        self._store._set_multi(self._row, attr_id, value)

    def pop(self, attr_id: str, default: Optional[str] = None
            ) -> Optional[str]:
        value = self._store.columns.get_multi(self._row, attr_id)
        if value is not None:
            self._store._clear_multi(self._row, attr_id)
            return value
        return default

    def __iter__(self) -> Iterator[str]:
        return iter(self._store.columns.multi_ids_of(self._row))

    def __len__(self) -> int:
        return len(self._store.columns.multi_ids_of(self._row))

    def __bool__(self) -> bool:
        return len(self) > 0

    def keys(self) -> List[str]:
        return self._store.columns.multi_ids_of(self._row)

    def values(self) -> List[str]:
        return [self[k] for k in self.keys()]

    def items(self) -> List[Tuple[str, str]]:
        return [(k, self[k]) for k in self.keys()]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (dict, _MultiAttrsView)):
            return dict(self.items()) == dict(
                other.items() if isinstance(other, _MultiAttrsView)
                else other.items())
        return NotImplemented

    def __repr__(self) -> str:
        return repr(dict(self.items()))


class UserView:
    """One user's row, wearing the ``UserProfile`` API.

    Flyweight (a store reference and a row id); every read decodes from
    the columns, every write goes through the store so the mutation
    epoch and derived indexes stay honest. The attribute containers are
    live views — mutating ``view.binary_attrs`` mutates the columns.
    """

    __slots__ = ("_store", "_row")

    def __init__(self, store: "ColumnarUserStore", row: int) -> None:
        self._store = store
        self._row = row

    # -- identity / demographics -------------------------------------------

    @property
    def row(self) -> int:
        """This user's row id in the column blocks."""
        return self._row

    @property
    def columns(self) -> UserColumns:
        return self._store.columns

    @property
    def user_id(self) -> str:
        return self._store.id_of(self._row)

    @property
    def country(self) -> str:
        cols = self._store.columns
        return cols.countries.values[int(cols.country[self._row])]

    @country.setter
    def country(self, value: str) -> None:
        cols = self._store.columns
        cols.country[self._row] = cols.countries.code(value)

    @property
    def age(self) -> int:
        return int(self._store.columns.age[self._row])

    @age.setter
    def age(self, value: int) -> None:
        self._store.columns.age[self._row] = value

    @property
    def gender(self) -> str:
        cols = self._store.columns
        return cols.genders.values[int(cols.gender[self._row])]

    @gender.setter
    def gender(self, value: str) -> None:
        cols = self._store.columns
        cols.gender[self._row] = cols.genders.code(value)

    @property
    def zip_code(self) -> str:
        cols = self._store.columns
        return cols.zips.values[int(cols.zip[self._row])]

    @zip_code.setter
    def zip_code(self, value: str) -> None:
        cols = self._store.columns
        cols.zip[self._row] = cols.zips.code(value)

    # -- attribute containers ----------------------------------------------

    @property
    def binary_attrs(self) -> _BinaryAttrsView:
        return _BinaryAttrsView(self._store, self._row)

    @property
    def multi_attrs(self) -> _MultiAttrsView:
        return _MultiAttrsView(self._store, self._row)

    @property
    def liked_pages(self) -> _LikedPagesView:
        return _LikedPagesView(self._store, self._row)

    @property
    def pii_hashes(self) -> Dict[str, Set[str]]:
        return self._store._pii_of_row(self._row)

    # -- the UserProfile method surface ------------------------------------

    def has_attribute(self, attr_id: str) -> bool:
        cols = self._store.columns
        return (cols.has_attr(self._row, attr_id)
                or cols.get_multi(self._row, attr_id) is not None)

    def attribute_ids(self) -> Iterator[str]:
        cols = self._store.columns
        yield from cols.attr_ids_of(self._row)
        yield from cols.multi_ids_of(self._row)

    def attribute_value(self, attr_id: str) -> Optional[str]:
        return self._store.columns.get_multi(self._row, attr_id)

    def add_pii_hash(self, kind: str, digest: str) -> None:
        if kind not in PII_KINDS:
            raise PIIError(f"unknown PII kind {kind!r}")
        self._store._pii_of_row(self._row).setdefault(kind, set()).add(digest)

    def add_pii(self, kind: str, raw_value: str) -> None:
        self.add_pii_hash(kind, hash_pii(kind, raw_value))

    def has_pii_hash(self, kind: str, digest: str) -> bool:
        return digest in self._store._pii_of_row(self._row).get(kind, set())

    def set_attribute(self, attribute: Attribute,
                      value: Optional[str] = None) -> None:
        if attribute.kind is AttributeKind.BINARY:
            if value is not None:
                raise CatalogError(
                    f"binary attribute {attribute.attr_id!r} takes no value"
                )
            self._store._set_binary(self._row, attribute.attr_id)
            return
        if value is None:
            raise CatalogError(
                f"multi attribute {attribute.attr_id!r} needs a value"
            )
        attribute.value_index(value)  # validates membership
        self._store._set_multi(self._row, attribute.attr_id, value)

    def clear_attribute(self, attr_id: str) -> None:
        self._store._clear_binary(self._row, attr_id)
        self._store._clear_multi(self._row, attr_id)

    def set_attributes(self, attrs: Dict[str, Optional[str]],
                       catalog: AttributeCatalog) -> None:
        for attr_id, value in attrs.items():
            self.set_attribute(catalog.get(attr_id), value)

    def __repr__(self) -> str:
        return f"UserView({self.user_id!r}, row={self._row})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, UserView):
            return (self._store is other._store
                    and self._row == other._row)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((id(self._store), self._row))


class ColumnarUserStore:
    """Columnar drop-in for :class:`~repro.platform.users.UserStore`.

    Same registry API (``add``/``get``/``attach_pii``/iteration/
    ``users_matching_pii``/``users_with_attribute``) over
    :class:`UserColumns`, plus the columnar extras the audience and
    delivery layers probe: ``attribute_bitset``/``page_bitset`` (users
    as bitsets), ``row_of``/``id_of`` (id <-> row), ``new_user`` (the
    object-free registration fast path), and ``mutation_epoch`` (the
    cache-invalidation counter shared with the legacy store).
    """

    store_name = "users"
    handled_kinds: Tuple[str, ...] = ()

    def __init__(self, store: Optional[StateStore] = None) -> None:
        self.columns = UserColumns()
        self._epoch = 0
        #: Explicit id table; None while every id fits the dense pattern.
        self._ids: Optional[List[str]] = None
        self._rows: Optional[Dict[str, int]] = None
        self._dense_prefix: Optional[str] = None
        self._dense_start = 0
        self._dense_pad = 0
        #: ``"kind:digest" -> row ids`` — the reverse PII match index.
        self._pii_index: Dict[str, Set[int]] = {}
        #: Per-row hashed PII (rows without PII have no entry).
        self._pii_rows: Dict[int, Dict[str, Set[str]]] = {}
        if store is not None:
            store.attach(self)

    # -- id table ----------------------------------------------------------

    def _dense_id(self, row: int) -> str:
        assert self._dense_prefix is not None
        return (f"{self._dense_prefix}"
                f"{self._dense_start + row:0{self._dense_pad}d}")

    def _materialize_ids(self) -> None:
        """Fall off the dense-id fast path onto an explicit id table."""
        self._ids = [self._dense_id(row) for row in range(self.columns.count)]
        self._rows = {user_id: row for row, user_id in enumerate(self._ids)}
        self._dense_prefix = None

    def _register_id(self, user_id: str) -> None:
        """Record the id for the row about to be appended."""
        row = self.columns.count
        if self._ids is not None:
            assert self._rows is not None
            self._ids.append(user_id)
            self._rows[user_id] = row
            return
        if self._dense_prefix is None and row == 0:
            match = _DENSE_ID.match(user_id)
            if match is not None:
                self._dense_prefix = match.group(1)
                self._dense_start = int(match.group(2))
                self._dense_pad = len(match.group(2))
                return
            self._ids = []
            self._rows = {}
            self._ids.append(user_id)
            self._rows[user_id] = row
            return
        if user_id == self._dense_id(row):
            return
        self._materialize_ids()
        assert self._ids is not None and self._rows is not None
        self._ids.append(user_id)
        self._rows[user_id] = row

    def id_of(self, row: int) -> str:
        """The user id owning ``row``."""
        if self._ids is not None:
            return self._ids[row]
        return self._dense_id(row)

    def row_of(self, user_id: str) -> Optional[int]:
        """The row owned by ``user_id``, or None when unknown."""
        if self._rows is not None:
            return self._rows.get(user_id)
        if self._dense_prefix is None:
            return None
        if not user_id.startswith(self._dense_prefix):
            return None
        suffix = user_id[len(self._dense_prefix):]
        if not suffix.isdigit():
            return None
        row = int(suffix) - self._dense_start
        if not 0 <= row < self.columns.count:
            return None
        if self._dense_id(row) != user_id:  # zero-pad mismatch
            return None
        return row

    # -- UserStore API -----------------------------------------------------

    def __len__(self) -> int:
        return self.columns.count

    def __iter__(self) -> Iterator[UserView]:
        for row in range(self.columns.count):
            yield UserView(self, row)

    def __contains__(self, user_id: str) -> bool:
        return self.row_of(user_id) is not None

    @property
    def mutation_epoch(self) -> int:
        """Bumped on every membership-relevant mutation; derived caches
        (audience reach counts) key on it."""
        return self._epoch

    def new_user(self, user_id: str, country: str = "US", age: int = 30,
                 gender: str = "unknown", zip_code: str = "00000"
                 ) -> UserView:
        """Object-free registration: append a row directly (the streaming
        population path — no transient :class:`UserProfile`)."""
        if self.row_of(user_id) is not None:
            raise CatalogError(f"duplicate user id {user_id!r}")
        self._register_id(user_id)
        row = self.columns.append_row(country, age, gender, zip_code)
        self._epoch += 1
        return UserView(self, row)

    def add(self, profile: UserProfile) -> UserView:
        """Ingest a :class:`UserProfile` into the columns.

        Mirrors ``UserStore.add`` — duplicate ids and unindexed PII
        kinds are rejected *before* any state changes — and returns the
        row's :class:`UserView`; the original profile object is not
        retained, so later mutations must go through the view.
        """
        if self.row_of(profile.user_id) is not None:
            raise CatalogError(f"duplicate user id {profile.user_id!r}")
        for kind in profile.pii_hashes:
            if kind not in PII_KINDS:
                raise PIIError(
                    f"profile {profile.user_id!r} carries unindexed PII "
                    f"kind {kind!r}")
        view = self.new_user(
            profile.user_id,
            country=profile.country,
            age=profile.age,
            gender=profile.gender,
            zip_code=profile.zip_code,
        )
        row = view.row
        for attr_id in profile.binary_attrs:
            self.columns.set_attr(row, attr_id)
        for attr_id, value in profile.multi_attrs.items():
            self.columns.set_multi(row, attr_id, value)
        for page_id in profile.liked_pages:
            self.columns.like(row, page_id)
        for kind, digests in profile.pii_hashes.items():
            for digest in digests:
                self._pii_of_row(row).setdefault(kind, set()).add(digest)
                self._index_pii(kind, digest, row)
        return view

    def get(self, user_id: str) -> UserView:
        row = self.row_of(user_id)
        if row is None:
            raise CatalogError(f"unknown user id {user_id!r}")
        return UserView(self, row)

    def attach_pii(self, user_id: str, kind: str, raw_value: str) -> str:
        digest = hash_pii(kind, raw_value)
        self.attach_pii_hash(user_id, kind, digest)
        return digest

    def attach_pii_hash(self, user_id: str, kind: str, digest: str) -> None:
        view = self.get(user_id)
        view.add_pii_hash(kind, digest)
        self._index_pii(kind, digest, view.row)
        self._epoch += 1

    def _index_pii(self, kind: str, digest: str, row: int) -> None:
        self._pii_index.setdefault(f"{kind}:{digest}", set()).add(row)

    def _pii_of_row(self, row: int) -> Dict[str, Set[str]]:
        pii = self._pii_rows.get(row)
        if pii is None:
            pii = self._pii_rows[row] = {}
        return pii

    def users_matching_pii(self, kind: str, digest: str) -> Set[str]:
        rows = self._pii_index.get(f"{kind}:{digest}", ())
        return {self.id_of(row) for row in rows}

    def users_with_attribute(self, attr_id: str) -> List[UserView]:
        """Views of every row carrying ``attr_id`` — a column extraction,
        not a profile scan."""
        column = self.columns.attribute_column(attr_id)
        return [UserView(self, int(row))
                for row in bitset.to_indices(column)]

    def user_ids(self) -> List[str]:
        return [self.id_of(row) for row in range(self.columns.count)]

    def like_page(self, user_id: str, page_id: str) -> None:
        """Record a page like (the epoch-honest mutation path)."""
        view = self.get(user_id)
        self._like(view.row, page_id)

    # -- columnar extras ---------------------------------------------------

    def attribute_bitset(self, attr_id: str) -> np.ndarray:
        """Users carrying ``attr_id`` (binary set or multi assigned), as
        a bitset over rows."""
        return self.columns.attribute_column(attr_id)

    def page_bitset(self, page_id: str) -> np.ndarray:
        """Users who liked ``page_id``, as a bitset over rows."""
        return self.columns.page_column(page_id)

    def rows_to_ids(self, bits: np.ndarray) -> Set[str]:
        """Decode a row bitset into user ids."""
        return {self.id_of(int(row)) for row in bitset.to_indices(bits)}

    def stats(self) -> Dict[str, Any]:
        """Shape/size summary (the CLI's ``populate --stats`` payload)."""
        cols = self.columns
        return {
            "rows": cols.count,
            "binary_attr_vocab": len(cols.attrs),
            "page_vocab": len(cols.pages),
            "multi_columns": len(cols.multi_cols),
            "column_bytes": cols.column_bytes(),
            "attr_bitset_density": cols.attr_density(),
            "dense_ids": self._ids is None,
            "pii_rows": len(self._pii_rows),
        }

    # -- write-through hooks (views call these) ----------------------------

    def _set_binary(self, row: int, attr_id: str) -> None:
        self.columns.set_attr(row, attr_id)
        self._epoch += 1

    def _clear_binary(self, row: int, attr_id: str) -> None:
        self.columns.clear_attr(row, attr_id)
        self._epoch += 1

    def _set_multi(self, row: int, attr_id: str, value: str) -> None:
        self.columns.set_multi(row, attr_id, value)
        self._epoch += 1

    def _clear_multi(self, row: int, attr_id: str) -> None:
        self.columns.clear_multi(row, attr_id)
        self._epoch += 1

    def _like(self, row: int, page_id: str) -> None:
        self.columns.like(row, page_id)
        self._epoch += 1

    def _unlike(self, row: int, page_id: str) -> None:
        self.columns.unlike(row, page_id)
        self._epoch += 1

    # -- state owner (snapshot-only) ---------------------------------------

    def state_dump(self) -> Dict[str, Any]:
        ids: Dict[str, Any]
        if self._ids is None and self._dense_prefix is not None:
            ids = {"dense": True, "prefix": self._dense_prefix,
                   "start": self._dense_start, "pad": self._dense_pad}
        else:
            ids = {"dense": False, "ids": list(self._ids or [])}
        return {
            "columns": self.columns.state_dump(),
            "ids": ids,
            "pii_rows": {
                str(row): {kind: sorted(digests)
                           for kind, digests in sorted(pii.items())}
                for row, pii in sorted(self._pii_rows.items())
            },
            "pii_index": {
                key: sorted(rows)
                for key, rows in sorted(self._pii_index.items())
            },
            "epoch": self._epoch,
        }

    def state_load(self, state: Dict[str, Any]) -> None:
        self.columns.state_load(dict(state["columns"]))
        ids = state["ids"]
        if ids.get("dense"):
            self._ids = None
            self._rows = None
            self._dense_prefix = str(ids["prefix"])
            self._dense_start = int(ids["start"])
            self._dense_pad = int(ids["pad"])
        else:
            self._ids = [str(user_id) for user_id in ids.get("ids", [])]
            self._rows = {user_id: row
                          for row, user_id in enumerate(self._ids)}
            self._dense_prefix = None
        self._pii_rows = {
            int(row): {kind: set(digests)
                       for kind, digests in pii.items()}
            for row, pii in state.get("pii_rows", {}).items()
        }
        self._pii_index = {
            key: set(int(row) for row in rows)
            for key, rows in state.get("pii_index", {}).items()
        }
        self._epoch = int(state.get("epoch", 0))

    def apply_record(self, record: Any) -> None:
        raise StoreError(
            "the user column store journals no records "
            f"(got kind {getattr(record, 'kind', record)!r})")
