"""The public ad archive (paper section 2.2).

"primarily driven by pressure from lawmakers and regulators ... ad
platforms have also begun to make advertiser activity more transparent on
their platforms" — Facebook's ad archive and Twitter's Ads Transparency
Center. The archive is *public*: anyone (not just the targeted users) can
browse every ad an advertiser has run, with its creative text and a coarse
reach band — but never the targeting spec or any viewer identity.

Two Treads-relevant consequences, both exercised in tests:

* a transparency provider's whole sweep is publicly visible, which is how
  an outside observer (or the platform itself) can spot the one-ad-per-
  attribute signature — the archive feeds the
  :class:`~repro.platform.policy.TreadPatternDetector` story of
  section 4's cat-and-mouse;
* conversely, the archive is itself a (weak) transparency mechanism the
  status-quo baseline can count: it reveals *that* campaigns ran, never
  *what the platform knows about you* — the gap Treads fills.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.platform.ads import AdInventory, AdStatus
from repro.platform.audiences import ReachEstimate, round_reach
from repro.platform.delivery import DeliveryEngine


@dataclass(frozen=True)
class ArchiveEntry:
    """One publicly visible archived ad."""

    ad_id: str
    advertiser_name: str
    account_id: str
    headline: str
    body: str
    status: str
    #: Coarse public reach band ("below 1000", "~1500", ...).
    reach_band: str
    has_image: bool
    landing_domain: Optional[str]


class AdArchiveService:
    """Builds the public archive view from platform-internal state."""

    def __init__(self, inventory: AdInventory, delivery: DeliveryEngine,
                 reach_floor: int = 1000, reach_quantum: int = 50):
        self._inventory = inventory
        self._delivery = delivery
        self.reach_floor = reach_floor
        self.reach_quantum = reach_quantum

    def _entry(self, ad) -> ArchiveEntry:
        account = self._inventory.account(ad.account_id)
        true_reach = self._delivery.reach_count(ad.ad_id)
        band: ReachEstimate = round_reach(
            true_reach, floor=self.reach_floor, quantum=self.reach_quantum
        )
        landing_domain = (
            ad.creative.landing_url.domain
            if ad.creative.landing_url is not None else None
        )
        return ArchiveEntry(
            ad_id=ad.ad_id,
            advertiser_name=account.owner_name,
            account_id=ad.account_id,
            headline=ad.creative.headline,
            body=ad.creative.body,
            status=ad.status.value,
            reach_band=str(band),
            has_image=ad.creative.image is not None,
            landing_domain=landing_domain,
        )

    def entries(self) -> List[ArchiveEntry]:
        """Every non-rejected ad ever submitted (rejected ads never ran,
        so they are not advertiser *activity*)."""
        return [
            self._entry(ad) for ad in self._inventory.ads()
            if ad.status is not AdStatus.REJECTED
        ]

    def by_advertiser(self, account_id: str) -> List[ArchiveEntry]:
        return [e for e in self.entries() if e.account_id == account_id]

    def search(self, text: str) -> List[ArchiveEntry]:
        """Public full-text search over archived creative text."""
        needle = text.strip().lower()
        if not needle:
            return []
        return [
            entry for entry in self.entries()
            if needle in f"{entry.headline}\n{entry.body}".lower()
        ]

    def campaign_footprints(self) -> List[Tuple[str, int]]:
        """(advertiser account, archived-ad count), largest first.

        The outside-observer statistic that makes monolithic Tread sweeps
        conspicuous: 500+ near-identical ads from one account.
        """
        counts: dict = {}
        for entry in self.entries():
            counts[entry.account_id] = counts.get(entry.account_id, 0) + 1
        return sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
