"""Data brokers and the partner-category pipeline.

Partner categories are targeting attributes "obtained through partnerships
with third parties" (paper section 2.1): data brokers such as Acxiom and
Oracle Data Cloud compile consumer records offline (public records,
purchase data, warranty cards, ...) keyed by PII, and the platform joins
those records onto its user profiles by matching PII.

The pipeline matters for the paper's validation result: one author had
broker records (long US residence → rich offline footprint → eleven partner
attributes), the other — a recent arrival — had none, and therefore
received only the control ad. The simulator reproduces exactly this: a
:class:`DataBroker` holds :class:`BrokerRecord` rows keyed by hashed PII;
:func:`ingest_broker_feed` matches them onto platform users and sets the
corresponding partner attributes.

Footnote 2 of the paper notes Facebook later shut partner categories down;
:func:`shutdown_partner_categories` models that switch so the effect on
Treads coverage can be measured (benchmark E12 ablation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import CatalogError
from repro.hashing import hash_pii
from repro.platform.attributes import AttributeCatalog, AttributeSource
from repro.platform.users import UserStore


@dataclass(frozen=True)
class BrokerRecord:
    """One consumer record held by a data broker.

    ``pii`` carries ``(kind, digest)`` pairs identifying the consumer;
    ``attributes`` maps partner attribute ids to an optional value (None
    for binary attributes).
    """

    record_id: str
    pii: Tuple[Tuple[str, str], ...]
    attributes: Tuple[Tuple[str, Optional[str]], ...]


@dataclass
class DataBroker:
    """A data broker: a named bag of consumer records.

    Records are appended by workload generation; :meth:`records_for_broker`
    on :class:`BrokerNetwork` feeds them to the platform's ingest step.
    """

    name: str
    records: List[BrokerRecord] = field(default_factory=list)

    def add_record(
        self,
        record_id: str,
        raw_pii: Iterable[Tuple[str, str]],
        attributes: Iterable[Tuple[str, Optional[str]]],
    ) -> BrokerRecord:
        """Add a record from raw PII (hashed internally)."""
        hashed = tuple(
            (kind, hash_pii(kind, value)) for kind, value in raw_pii
        )
        record = BrokerRecord(
            record_id=record_id,
            pii=hashed,
            attributes=tuple(attributes),
        )
        self.records.append(record)
        return record


@dataclass
class IngestReport:
    """Outcome of one broker-feed ingest run."""

    broker: str
    records_seen: int = 0
    records_matched: int = 0
    attributes_set: int = 0
    unmatched_record_ids: List[str] = field(default_factory=list)

    @property
    def match_rate(self) -> float:
        if self.records_seen == 0:
            return 0.0
        return self.records_matched / self.records_seen


def ingest_broker_feed(
    broker: DataBroker,
    users: UserStore,
    catalog: AttributeCatalog,
) -> IngestReport:
    """Join one broker's records onto platform users by hashed PII.

    A record matches a user when *any* of its hashed PII values appears on
    the user's profile (platforms match greedily to maximise audience
    sizes). Matched records set their partner attributes on the user's
    profile. Attributes whose id is not a PARTNER attribute in the catalog
    are rejected loudly — brokers cannot inject platform-computed
    attributes.
    """
    report = IngestReport(broker=broker.name)
    for record in broker.records:
        report.records_seen += 1
        matched_users: Set[str] = set()
        for kind, digest in record.pii:
            matched_users |= users.users_matching_pii(kind, digest)
        if not matched_users:
            report.unmatched_record_ids.append(record.record_id)
            continue
        report.records_matched += 1
        for attr_id, value in record.attributes:
            attribute = catalog.get(attr_id)
            if attribute.source is not AttributeSource.PARTNER:
                raise CatalogError(
                    f"broker {broker.name!r} tried to set non-partner "
                    f"attribute {attr_id!r}"
                )
            for user_id in matched_users:
                users.get(user_id).set_attribute(attribute, value)
                report.attributes_set += 1
    return report


class BrokerNetwork:
    """All brokers feeding one platform, plus the shutdown switch."""

    def __init__(self) -> None:
        self._brokers: Dict[str, DataBroker] = {}
        self.partner_categories_active = True

    def broker(self, name: str) -> DataBroker:
        """Get-or-create a broker by name."""
        if name not in self._brokers:
            self._brokers[name] = DataBroker(name=name)
        return self._brokers[name]

    def brokers(self) -> List[DataBroker]:
        return list(self._brokers.values())

    def ingest_all(
        self, users: UserStore, catalog: AttributeCatalog
    ) -> List[IngestReport]:
        """Run the ingest pipeline for every broker."""
        return [
            ingest_broker_feed(broker, users, catalog)
            for broker in self._brokers.values()
        ]


def shutdown_partner_categories(
    catalog: AttributeCatalog,
    users: UserStore,
    network: BrokerNetwork,
    scrub_profiles: bool = False,
) -> List[str]:
    """Model Facebook's 2018 partner-category shutdown (paper footnote 2).

    Removes all PARTNER attributes from the advertiser-facing catalog and
    flips the network's active flag. The paper notes it is "unclear whether
    Facebook continues to internally retain attributes sourced from data
    brokers" — so by default user profiles keep the data (``scrub_profiles
    =False``), and only the *targeting surface* disappears; pass True to
    model a full scrub. Returns the removed attribute ids.
    """
    removed = [a.attr_id for a in catalog.attributes if a.is_partner]
    for attr_id in removed:
        catalog.remove(attr_id)
    if scrub_profiles:
        for profile in users:
            for attr_id in removed:
                profile.clear_attribute(attr_id)
    network.partner_categories_active = False
    return removed
