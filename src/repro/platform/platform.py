"""The :class:`AdPlatform` facade.

One ``AdPlatform`` instance is one advertising platform (a Facebook-,
Google-, or Twitter-alike): its user base, attribute catalog, broker feeds,
audience machinery, auction/delivery/billing pipeline, ToS review, and its
own transparency surfaces. The facade exposes two API families:

* the **advertiser API** (what the transparency provider programs
  against): accounts, pixels, audiences, campaigns, ad submission with
  review, reach estimates, performance reports — never user identities;
* the **user-side surface**: feeds, per-ad explanations, the
  ad-preferences page, page likes, and browsers for off-platform visits.

Instantiate several platforms with different :class:`PlatformConfig`
values to model the multi-platform opt-in page of paper section 3.1.
"""

from __future__ import annotations

import logging
import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Union

from repro.errors import AccountError, StoreError, TargetingError
from repro.ids import IdFactory
from repro.obs import events as obs_events
from repro.obs.metrics import registry as obs_registry
from repro.platform.ads import (
    Ad,
    AdAccount,
    AdCreative,
    AdInventory,
    AdStatus,
    Campaign,
    PlatformPage,
)
from repro.platform.adarchive import AdArchiveService, ArchiveEntry
from repro.platform.adpreferences import AdPreferencesService, AdPreferencesView
from repro.platform.attributes import AttributeCatalog
from repro.platform.audiences import Audience, AudienceRegistry, ReachEstimate
from repro.platform.auction import CompetingBidDraw
from repro.platform.billing import BillingLedger, Invoice
from repro.platform.catalog import build_us_catalog
from repro.platform.colstore import ColumnarUserStore, UserView
from repro.platform.databroker import BrokerNetwork, IngestReport
from repro.platform.delivery import DeliveredAd, DeliveryEngine, DeliveryStats
from repro.platform.explanations import AdExplanation, ExplanationService
from repro.platform.pii import PIIRecord
from repro.platform.pixels import PixelRegistry, TrackingPixel
from repro.platform.policy import PolicyEngine, ReviewResult
from repro.platform.reporting import (
    AdPerformanceReport,
    ReportingConfig,
    ReportingService,
)
from repro.platform.targeting import TargetingSpec, parse
from repro.platform.users import UserProfile, UserStore
from repro.platform.web import Browser, Visit
from repro.store.store import MemoryStore, StateStore

_log = logging.getLogger("repro.platform")


def default_competition(
    seed: int = 7,
    median_cpm: float = 2.0,
    sigma: float = 0.5,
) -> CompetingBidDraw:
    """Log-normal competing-bid draw calibrated to the paper's numbers.

    The paper cites $2 CPM as "the typical recommended bid" for US users —
    i.e. the price that wins a typical impression — so the competing top
    bid is log-normal with *median* $2 CPM. At that median a $2 bid wins
    about half the time while the validation's elevated $10 CPM (5x) wins
    almost always, matching why the authors raised the cap.
    """
    rng = random.Random(seed)
    mu = math.log(median_cpm / 1000.0)

    def draw() -> float:
        return rng.lognormvariate(mu, sigma)

    return draw


@dataclass
class PlatformConfig:
    """Per-platform policy and economics knobs."""

    name: str = "fbsim"
    country: str = "US"
    #: Recommended default bid for the country (paper: $2 CPM for US).
    default_cpm: float = 2.0
    #: Minimum members before a PII/pixel audience may run ads.
    min_custom_audience_size: int = 20
    #: Reach-estimate rounding for audience size previews.
    reach_floor: int = 1000
    reach_quantum: int = 50
    #: Ad review strictness: "lenient" | "standard" | "strict".
    policy_strictness: str = "standard"
    #: Per-(ad, user) impression cap.
    frequency_cap: int = 1
    #: Narrow-targeting defense: an ad only serves while at least this
    #: many users match its full spec (0 = off). Blocks single-user
    #: inference via delivery/billing (the Korolova-style attack of the
    #: paper's section 5) — and, tellingly, also blocks Treads on small
    #: opted-in audiences: both exploit deliver-iff-match on narrow
    #: intersections (ablation A3).
    min_delivery_match_count: int = 0
    #: Auction floor price in CPM dollars.
    floor_price_cpm: float = 0.0
    #: Competing-demand seed (distinct per platform for realism).
    competition_seed: int = 7
    competition_median_cpm: float = 2.0
    competition_sigma: float = 0.5
    reporting: ReportingConfig = field(default_factory=ReportingConfig)
    #: Back the user base with the columnar store
    #: (:mod:`repro.platform.colstore`): numpy attribute matrices and
    #: bitset audience algebra instead of per-user Python objects. The
    #: platform API is unchanged; ``register_user`` returns a
    #: :class:`~repro.platform.colstore.UserView`.
    columnar_users: bool = False
    #: Million-user memory mode: delivery keeps per-ad shown-user bitsets
    #: and count aggregates instead of per-impression logs, and billing
    #: keeps per-account/per-ad aggregates instead of the charge list.
    #: Requires ``columnar_users`` and ``frequency_cap == 1``; APIs that
    #: would need the dropped per-event state raise ``StoreError``.
    compact_delivery: bool = False


class AdPlatform:
    """One simulated advertising platform. See module docstring."""

    def __init__(
        self,
        config: Optional[PlatformConfig] = None,
        catalog: Optional[AttributeCatalog] = None,
        competing_draw: Optional[CompetingBidDraw] = None,
        store: Optional[StateStore] = None,
    ):
        self.config = config or PlatformConfig()
        self.catalog = catalog if catalog is not None else build_us_catalog()
        self.ids = IdFactory(prefix=self.config.name)
        # One state store shared by every mutable-state owner on this
        # platform (audiences, billing, delivery): pass a JournalStore
        # for a durable write-ahead journal, default is in-memory.
        self.store = store if store is not None else MemoryStore()
        if self.config.compact_delivery and not (
                self.config.columnar_users
                and self.config.frequency_cap == 1):
            raise StoreError(
                "compact_delivery requires columnar_users and a frequency "
                "cap of 1")
        self.users: Union[UserStore, ColumnarUserStore]
        if self.config.columnar_users:
            self.users = ColumnarUserStore(store=self.store)
        else:
            self.users = UserStore()
        self.pixels = PixelRegistry()
        self.audiences = AudienceRegistry(
            users=self.users,
            pixels=self.pixels,
            catalog=self.catalog,
            min_custom_audience_size=self.config.min_custom_audience_size,
            reach_floor=self.config.reach_floor,
            reach_quantum=self.config.reach_quantum,
            store=self.store,
        )
        self.inventory = AdInventory()
        self.ledger = BillingLedger(
            self.inventory, store=self.store,
            compact=self.config.compact_delivery,
        )
        self.policy = PolicyEngine(
            self.catalog, strictness=self.config.policy_strictness
        )
        draw = competing_draw or default_competition(
            seed=self.config.competition_seed,
            median_cpm=self.config.competition_median_cpm,
            sigma=self.config.competition_sigma,
        )
        self.delivery = DeliveryEngine(
            inventory=self.inventory,
            audiences=self.audiences,
            ledger=self.ledger,
            competing_draw=draw,
            frequency_cap=self.config.frequency_cap,
            floor_price_cpm=self.config.floor_price_cpm,
            min_match_count=self.config.min_delivery_match_count,
            store=self.store,
            compact=self.config.compact_delivery,
        )
        self.delivery.attach_user_store(self.users)
        self.reporting = ReportingService(
            inventory=self.inventory,
            ledger=self.ledger,
            delivery=self.delivery,
            users=self.users,
            config=self.config.reporting,
        )
        self.explanations = ExplanationService(
            self.catalog, self.users, self.inventory
        )
        self.ad_preferences = AdPreferencesService(
            self.catalog, self.audiences, self.inventory
        )
        self.ad_archive = AdArchiveService(
            self.inventory, self.delivery,
            reach_floor=self.config.reach_floor,
            reach_quantum=self.config.reach_quantum,
        )
        self.brokers = BrokerNetwork()
        reg = obs_registry()
        self._obs_users = reg.counter("platform.users_registered")
        self._obs_submitted = reg.counter("platform.ads_submitted")
        self._obs_rejected = reg.counter("platform.ads_rejected")
        self._bus = obs_events.bus()
        _log.debug("platform %r up: %d catalog attributes",
                   self.config.name, len(self.catalog))

    @property
    def name(self) -> str:
        return self.config.name

    # ------------------------------------------------------------------
    # user-side
    # ------------------------------------------------------------------

    def register_user(
        self,
        country: str = "US",
        age: int = 30,
        gender: str = "unknown",
        zip_code: str = "00000",
    ) -> Union[UserProfile, UserView]:
        """Create a platform user account.

        Columnar platforms append a row directly and hand back its
        :class:`~repro.platform.colstore.UserView` — same read/write
        API, no transient profile object."""
        user_id = self.ids.next("user")
        self._obs_users.inc()
        if isinstance(self.users, ColumnarUserStore):
            return self.users.new_user(
                user_id, country=country, age=age, gender=gender,
                zip_code=zip_code,
            )
        profile = UserProfile(
            user_id=user_id,
            country=country,
            age=age,
            gender=gender,
            zip_code=zip_code,
        )
        return self.users.add(profile)

    def browser_for(self, user_id: str) -> Browser:
        """A logged-in browser for a user (the platform's pixels will
        recognise the user on instrumented pages)."""
        self.users.get(user_id)
        return Browser(user_id=user_id)

    def like_page(self, user_id: str, page_id: str) -> None:
        """User likes a platform page — the validation's opt-in action."""
        self.inventory.page(page_id)
        self.users.like_page(user_id, page_id)

    def observe_visit(self, visit: Visit) -> None:
        """Fire this platform's pixels present on a visited page.

        A pixel only identifies visitors who are logged-in users of THIS
        platform; a visit by someone with no account here is invisible —
        which is why, on the shared multi-platform opt-in page, each
        platform ends up knowing only its own users.
        """
        if visit.user_id not in self.users:
            return
        self.pixels.record_visit(visit)

    def feed(self, user_id: str) -> List[DeliveredAd]:
        """The ads a user has received."""
        self.users.get(user_id)
        return self.delivery.feed(user_id)

    def explain_ad(self, user_id: str, ad_id: str) -> AdExplanation:
        """User-requested "Why am I seeing this?" for a delivered ad."""
        return self.explanations.explain(ad_id, self.users.get(user_id))

    def ad_preferences_for(self, user_id: str) -> AdPreferencesView:
        return self.ad_preferences.view_for(self.users.get(user_id))

    def click_ad(self, user_id: str, ad_id: str) -> Optional[str]:
        """The user clicks a delivered ad; returns the landing URL (or
        None for ads without one). The click is recorded platform-side
        and surfaces to the advertiser only as a count in reports."""
        self.users.get(user_id)
        ad = self.inventory.ad(ad_id)
        self.delivery.record_click(user_id, ad_id)
        if ad.creative.landing_url is None:
            return None
        return str(ad.creative.landing_url)

    def public_ad_archive(self) -> List[ArchiveEntry]:
        """The public advertiser-activity archive (section 2.2) — open to
        anyone, user account or not."""
        return self.ad_archive.entries()

    # ------------------------------------------------------------------
    # advertiser API
    # ------------------------------------------------------------------

    def create_ad_account(self, owner_name: str, budget: float = 0.0,
                          country: Optional[str] = None) -> AdAccount:
        """Open an advertiser account — anyone can (paper section 3.1)."""
        account = AdAccount(
            account_id=self.ids.next("acct"),
            owner_name=owner_name,
            country=country or self.config.country,
            budget=budget,
        )
        return self.inventory.add_account(account)

    def create_page(self, account_id: str, name: str) -> PlatformPage:
        page = PlatformPage(
            page_id=self.ids.next("page"),
            owner_account_id=self.inventory.account(account_id).account_id,
            name=name,
        )
        return self.inventory.add_page(page)

    def issue_pixel(self, account_id: str, label: str = "") -> TrackingPixel:
        self.inventory.account(account_id)
        return self.pixels.issue(
            pixel_id=self.ids.next("pixel"),
            owner_account_id=account_id,
            label=label,
        )

    def create_pii_audience(self, account_id: str,
                            records: Sequence[PIIRecord],
                            name: str = "") -> Audience:
        self.inventory.account(account_id)
        return self.audiences.create_pii_audience(
            audience_id=self.ids.next("aud"),
            owner_account_id=account_id,
            records=records,
            name=name,
        )

    def create_pixel_audience(self, account_id: str, pixel_id: str,
                              name: str = "") -> Audience:
        self.inventory.account(account_id)
        return self.audiences.create_pixel_audience(
            audience_id=self.ids.next("aud"),
            owner_account_id=account_id,
            pixel_id=pixel_id,
            name=name,
        )

    def create_keyword_audience(self, account_id: str,
                                phrases: Sequence[str],
                                name: str = "") -> Audience:
        """Custom intent/affinity audience from keyword phrases (the
        Google-style targeting of paper section 2.1)."""
        self.inventory.account(account_id)
        return self.audiences.create_keyword_audience(
            audience_id=self.ids.next("aud"),
            owner_account_id=account_id,
            phrases=phrases,
            name=name,
        )

    def create_lookalike_audience(self, account_id: str,
                                  seed_audience_id: str,
                                  similarity_threshold: int = 3,
                                  name: str = "") -> Audience:
        """Expand a seed audience to "people similar to them"."""
        self.inventory.account(account_id)
        return self.audiences.create_lookalike_audience(
            audience_id=self.ids.next("aud"),
            owner_account_id=account_id,
            seed_audience_id=seed_audience_id,
            similarity_threshold=similarity_threshold,
            name=name,
        )

    def create_page_audience(self, account_id: str, page_id: str,
                             name: str = "") -> Audience:
        page = self.inventory.page(page_id)
        if page.owner_account_id != account_id:
            raise AccountError(
                f"page {page_id!r} belongs to another account"
            )
        return self.audiences.create_page_audience(
            audience_id=self.ids.next("aud"),
            owner_account_id=account_id,
            page_id=page_id,
            name=name,
        )

    def estimated_reach(self, account_id: str,
                        audience_id: str) -> ReachEstimate:
        audience = self.audiences.get(audience_id)
        if audience.owner_account_id != account_id:
            raise AccountError("cannot view another advertiser's audience")
        return self.audiences.estimated_reach(audience_id)

    def estimate_spec_reach(
        self,
        account_id: str,
        targeting: Union[TargetingSpec, str],
    ) -> ReachEstimate:
        """Potential reach of a full targeting spec (rounded).

        The pre-launch "potential reach" number real platforms show in
        the ad composer. Validates the spec exactly as submission would
        (catalog, country availability, audience ownership) and then
        counts matching users — but only ever returns the rounded
        :class:`ReachEstimate`, never a user list.
        """
        account = self.inventory.account(account_id)
        spec = parse(targeting) if isinstance(targeting, str) else targeting
        spec.validate(self.catalog)
        self._check_attribute_availability(spec, account)
        for audience_id in spec.referenced_audiences():
            audience = self.audiences.get(audience_id)
            if audience.owner_account_id != account_id:
                raise AccountError(
                    f"audience {audience_id!r} belongs to another advertiser"
                )
        matcher = spec.compiled()
        resolver = self.audiences.cached_resolver()
        matching = sum(
            1 for user in self.users if matcher.fn(user, resolver)
        )
        from repro.platform.audiences import round_reach
        return round_reach(matching, floor=self.config.reach_floor,
                           quantum=self.config.reach_quantum)

    def create_campaign(self, account_id: str, name: str) -> Campaign:
        campaign = Campaign(
            campaign_id=self.ids.next("camp"),
            account_id=self.inventory.account(account_id).account_id,
            name=name,
        )
        return self.inventory.add_campaign(campaign)

    def submit_ad(
        self,
        account_id: str,
        campaign_id: str,
        creative: AdCreative,
        targeting: Union[TargetingSpec, str],
        bid_cap_cpm: Optional[float] = None,
        special_category: Optional[str] = None,
    ) -> Ad:
        """Submit an ad: validate targeting, check audiences, run review.

        The returned ad is ACTIVE if it passed review, REJECTED otherwise
        (with the reviewer's reasons in ``review_note``). Rejected ads
        never enter the auction. Declaring a ``special_category``
        ("housing" / "employment" / "credit") additionally subjects the
        *targeting* to the anti-discrimination review of
        :func:`repro.platform.policy.review_targeting_for_special_category`.
        """
        account = self.inventory.account(account_id)
        spec = parse(targeting) if isinstance(targeting, str) else targeting
        spec.validate(self.catalog)
        self._check_attribute_availability(spec, account)
        for audience_id in spec.referenced_audiences():
            audience = self.audiences.get(audience_id)
            if audience.owner_account_id != account_id:
                raise AccountError(
                    f"audience {audience_id!r} belongs to another advertiser"
                )
            self.audiences.check_runnable(audience_id)

        campaign = self.inventory.campaign(campaign_id)
        if campaign.account_id != account_id:
            raise AccountError("campaign belongs to another account")

        ad = Ad(
            ad_id=self.ids.next("ad"),
            account_id=account_id,
            campaign_id=campaign_id,
            creative=creative,
            targeting=spec,
            bid_cap_cpm=(
                bid_cap_cpm if bid_cap_cpm is not None
                else self.config.default_cpm
            ),
            special_category=special_category,
        )
        review = self.policy.review(creative)
        reasons = list(review.reasons)
        approved = review.approved
        if special_category is not None:
            from repro.platform.policy import (
                review_targeting_for_special_category,
            )
            targeting_review = review_targeting_for_special_category(
                spec, special_category
            )
            approved = approved and targeting_review.approved
            reasons.extend(targeting_review.reasons)
        if approved:
            ad.status = AdStatus.ACTIVE
        else:
            ad.status = AdStatus.REJECTED
            ad.review_note = "; ".join(reasons)
        self._obs_submitted.inc()
        if not approved:
            self._obs_rejected.inc()
            _log.debug("ad %s rejected: %s", ad.ad_id, ad.review_note)
        if self._bus.active:
            self._bus.emit(obs_events.AdSubmitted(
                ad_id=ad.ad_id,
                account_id=account_id,
                approved=approved,
                review_note=ad.review_note or "",
            ))
        return self.inventory.add_ad(ad)

    def _check_attribute_availability(self, spec: TargetingSpec,
                                      account: AdAccount) -> None:
        """Attributes must be offered in the advertiser's country."""
        for attr_id in spec.referenced_attributes():
            attribute = self.catalog.get(attr_id)
            if not attribute.offered_in(account.country):
                raise TargetingError(
                    f"attribute {attr_id!r} is not offered to advertisers "
                    f"in {account.country}"
                )

    def pause_ad(self, account_id: str, ad_id: str) -> None:
        ad = self.inventory.ad(ad_id)
        if ad.account_id != account_id:
            raise AccountError("cannot pause another advertiser's ad")
        ad.status = AdStatus.PAUSED

    def report(self, account_id: str,
               ad_id: str) -> AdPerformanceReport:
        return self.reporting.report_for_ad(ad_id, account_id)

    def reports(self, account_id: str) -> List[AdPerformanceReport]:
        return self.reporting.reports_for_account(account_id)

    def invoice(self, account_id: str) -> Invoice:
        return self.ledger.invoice(account_id)

    # ------------------------------------------------------------------
    # simulation drivers
    # ------------------------------------------------------------------

    def run_delivery(self, slots_per_user: int = 1,
                     user_ids: Optional[Iterable[str]] = None) -> DeliveryStats:
        """Serve ad slots for (a subset of) the user base."""
        users = self._resolve_users(user_ids)
        return self.delivery.run_sessions(users, slots_per_user)

    def run_until_saturated(
        self, user_ids: Optional[Iterable[str]] = None,
        max_rounds: int = 50,
    ) -> DeliveryStats:
        """Serve slots until every deliverable (ad, user) pair is served."""
        users = self._resolve_users(user_ids)
        return self.delivery.run_until_saturated(users, max_rounds=max_rounds)

    def run_sweep(self, max_rounds: int = 50,
                  workers: Optional[int] = None) -> DeliveryStats:
        """Saturate delivery over the whole user base, vectorized.

        The batch twin of :meth:`run_until_saturated` for columnar
        platforms: eligibility, auctions, and state folds all run as
        column algebra over row blocks
        (:meth:`~repro.platform.delivery.DeliveryEngine.sweep_slots`),
        producing the same impressions, spend, stats, and reports as
        the scalar loop. ``workers`` > 1 partitions the row space
        across forked processes (compact platforms only — see
        :mod:`repro.platform.parsweep`).
        """
        if not isinstance(self.users, ColumnarUserStore):
            raise StoreError(
                "run_sweep needs columnar_users=True; use "
                "run_until_saturated on object-store platforms")
        if workers is not None and workers > 1:
            from repro.platform.parsweep import parallel_sweep
            return parallel_sweep(self.delivery, workers=workers,
                                  max_rounds=max_rounds)
        return self.delivery.sweep_slots(max_rounds=max_rounds)

    def _resolve_users(
        self, user_ids: Optional[Iterable[str]]
    ) -> List[Union[UserProfile, UserView]]:
        if user_ids is None:
            return list(self.users)
        return [self.users.get(user_id) for user_id in user_ids]

    def ingest_brokers(self) -> List[IngestReport]:
        """Run all pending broker feeds into user profiles."""
        return self.brokers.ingest_all(self.users, self.catalog)
