"""Deterministic generation of the US targeting-attribute catalog.

The paper (section 2.1, citing [1]) reports that as of early 2018
Facebook's advertising platform offered **614 attributes computed
internally** plus **507 additional US attributes sourced from data brokers**
such as Acxiom and Oracle Data Cloud ("partner categories"). The paper's
validation (section 3.1) runs one Tread per US binary partner attribute —
507 ads — so the reproduction needs a catalog with exactly those counts.

Real catalogs are proprietary; this module synthesizes one with the same
*structure*: the partner side covers the category families the paper's
author was actually revealed (net worth, purchase behaviour for restaurants
and apparel, job role, home type, likely auto purchase, ...), organised
under the named brokers, and topped up with numbered consumer segments —
which is faithful to how broker taxonomies actually look. Generation is
purely deterministic (no RNG), so attribute ids are stable across runs.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.platform.attributes import (
    Attribute,
    AttributeCatalog,
    AttributeSource,
    make_binary,
    make_multi,
)

#: Catalog sizes reported for early-2018 Facebook (paper section 2.1).
US_PLATFORM_ATTRIBUTE_COUNT = 614
US_PARTNER_ATTRIBUTE_COUNT = 507

#: Data brokers named in the paper.
BROKERS = ("Acxiom", "Oracle Data Cloud", "Epsilon", "Experian")

_NET_WORTH_BANDS = (
    "Under $100K",
    "$100K - $250K",
    "$250K - $500K",
    "$500K - $750K",
    "$750K - $1M",
    "$1M - $2M",
    "Over $2M",
)

_INCOME_BANDS = (
    "Under $30K",
    "$30K - $40K",
    "$40K - $50K",
    "$50K - $75K",
    "$75K - $100K",
    "$100K - $125K",
    "$125K - $150K",
    "$150K - $250K",
    "$250K - $350K",
    "$350K - $500K",
    "Over $500K",
)

_RESTAURANT_KINDS = (
    "Fast food", "Fast casual", "Casual dining", "Fine dining", "Pizza",
    "Coffee shops", "Sandwich shops", "Steakhouses", "Seafood", "Sushi",
    "Mexican", "Italian", "Chinese", "Indian", "Thai", "Family-style",
    "Buffets", "Delivery-first", "Vegetarian", "Bakeries",
)

_APPAREL_KINDS = (
    "Luxury apparel", "Discount apparel", "Business attire", "Casual wear",
    "Athletic wear", "Children's apparel", "Footwear", "Accessories",
    "Outerwear", "Denim", "Formal wear", "Plus-size apparel",
    "Petite apparel", "Big & tall apparel", "Swimwear", "Sleepwear",
)

_JOB_ROLES = (
    "C-suite executive", "Middle management", "Professional / technical",
    "Healthcare practitioner", "Legal professional", "Educator",
    "Sales", "Office & administrative", "Skilled trades", "Farming",
    "Protective services", "Food service", "Personal care",
    "Transportation", "Military", "Clergy", "Self-employed",
    "Small business owner", "Government employee", "Retired",
)

_HOME_TYPES = (
    "Single family home", "Condominium", "Townhouse", "Apartment",
    "Multi-family home", "Mobile home", "Farm / ranch",
)

_HOME_VALUE_BANDS = (
    "Under $100K", "$100K - $200K", "$200K - $300K", "$300K - $400K",
    "$400K - $500K", "$500K - $750K", "$750K - $1M", "Over $1M",
)

_AUTO_CLASSES = (
    "Economy car", "Mid-size car", "Full-size car", "Luxury sedan",
    "Sports car", "Compact SUV", "Full-size SUV", "Luxury SUV",
    "Minivan", "Pickup truck", "Hybrid vehicle", "Electric vehicle",
    "Crossover", "Convertible", "Motorcycle",
)

_AUTO_BRAND_TIERS = (
    "Domestic brand loyalist", "Import brand loyalist",
    "Luxury brand intender", "Value brand intender",
    "New vehicle shopper", "Used vehicle shopper",
    "Recent vehicle purchaser", "Vehicle lessee",
)

_CHARITY_CAUSES = (
    "Animal welfare", "Arts and culture", "Children's causes",
    "Environmental causes", "Health causes", "International aid",
    "Political causes", "Religious causes", "Veterans' causes",
    "Community causes",
)

_TRAVEL_SEGMENTS = (
    "Frequent flyer", "Frequent international traveler", "Cruise intender",
    "Business traveler", "Budget traveler", "Luxury traveler",
    "Timeshare owner", "Casino vacationer", "Theme park visitor",
    "Frequent hotel guest", "Vacation home owner", "RV owner",
)

_CREDIT_SEGMENTS = (
    "Premium credit card holder", "Travel rewards card holder",
    "Cash-back card holder", "Store card holder", "High card spender",
    "Revolver", "Transactor", "New credit seeker", "Debit-primary",
    "Likely mortgage holder", "Likely auto loan holder",
    "Likely student loan holder",
)

_GROCERY_SEGMENTS = (
    "Organic food buyer", "Premium grocery buyer", "Value grocery buyer",
    "Warehouse club shopper", "Convenience store shopper",
    "Natural food buyer", "Frozen food buyer", "Snack food buyer",
    "Soft drink buyer", "Pet food buyer", "Baby product buyer",
    "Vitamin & supplement buyer",
)

_INTEREST_TOPICS = (
    "Salsa dancing", "Musicals", "Jazz", "Classical music", "Hip hop",
    "Rock music", "Country music", "Photography", "Painting", "Sculpture",
    "Hiking", "Camping", "Fishing", "Hunting", "Running", "Yoga",
    "Cycling", "Swimming", "Skiing", "Snowboarding", "Surfing",
    "Basketball", "American football", "Baseball", "Soccer", "Tennis",
    "Golf", "Hockey", "Boxing", "Martial arts", "Chess", "Board games",
    "Video games", "Esports", "Cooking", "Baking", "Grilling", "Wine",
    "Craft beer", "Cocktails", "Coffee", "Tea", "Gardening",
    "Home improvement", "Interior design", "Fashion", "Jewelry",
    "Watches", "Sneakers", "Technology", "Gadgets", "Programming",
    "Data science", "Astronomy", "Physics", "History", "Philosophy",
    "Poetry", "Novels", "Science fiction", "Fantasy", "Mystery novels",
    "Comics", "Anime", "Movies", "Documentaries", "Theater", "Opera",
    "Ballet", "Stand-up comedy", "Podcasts", "Travel", "Beaches",
    "Mountains", "National parks", "Road trips", "Cruises", "Backpacking",
    "Meditation", "Fitness", "Bodybuilding", "Crossfit", "Pilates",
    "Nutrition", "Veganism", "Vegetarianism", "Parenting", "Weddings",
    "Pets", "Dogs", "Cats", "Birds", "Aquariums", "Horses", "Cars",
    "Motorcycles", "Boats", "Aviation", "Trains", "Architecture",
    "Real estate", "Investing", "Cryptocurrency", "Entrepreneurship",
    "Marketing", "Public speaking", "Volunteering", "Genealogy",
    "Knitting", "Quilting", "Woodworking", "Pottery", "Calligraphy",
    "Magic tricks", "Karaoke", "Dancing", "Ballroom dancing",
    "Tango", "Language learning", "Spanish language", "French language",
)

_BEHAVIOR_SEGMENTS = (
    "Frequent international caller", "Early technology adopter",
    "Console gamer", "Mobile gamer", "Online shopper",
    "Coupon user", "Small business page admin", "Event creator",
    "Frequent event attendee", "Lives away from hometown",
    "Recently moved", "Returned from travel recently",
    "Uses a tablet", "Uses a smart TV", "Uses public wifi often",
    "Accesses site via 4G", "Accesses site via older device",
    "Operating system: desktop Linux", "Operating system: macOS",
    "Operating system: Windows", "Browser: Chrome", "Browser: Firefox",
    "Browser: Safari", "Primary device: Android", "Primary device: iOS",
    "Engaged shopper", "Clicked call-to-action recently",
    "Page admin", "Photo uploader", "Status updater",
)

_LIFE_EVENTS = (
    "Recently engaged", "Newlywed", "New parent", "Parent of toddler",
    "Parent of teenager", "Empty nester", "New job", "New relationship",
    "Recently graduated", "Upcoming birthday", "Anniversary within 30 days",
    "Away from family", "Long-distance relationship", "Recently retired",
)

_DEMOGRAPHIC_BINARY = (
    "Expat", "Recent immigrant", "First-generation American",
    "Veteran", "Active military", "Union member", "Likely voter",
    "Registered voter", "Donates to political campaigns",
    "Interested in politics", "Politically liberal leaning",
    "Politically conservative leaning", "Politically moderate leaning",
    "Frequent news reader", "College alumni association member",
)

_EDUCATION_LEVELS = (
    "High school", "Some college", "Associate degree", "College degree",
    "Master's degree", "Professional degree", "Doctorate",
)

_RELATIONSHIP_STATUSES = (
    "Single", "In a relationship", "Engaged", "Married", "Civil union",
    "Separated", "Divorced", "Widowed",
)

_PARENT_CHILD_AGES = (
    "0-12 months", "1-2 years", "3-5 years", "6-8 years",
    "9-12 years", "13-17 years", "18-26 years",
)

_LIFE_STAGES = (
    "Student", "Young professional", "Established professional",
    "Young family", "Established family", "Pre-retirement", "Retired",
)


def _slug(text: str) -> str:
    """Lowercase alphanumeric-and-dash slug for ids."""
    cleaned = []
    for ch in text.lower():
        if ch.isalnum():
            cleaned.append(ch)
        elif cleaned and cleaned[-1] != "-":
            cleaned.append("-")
    return "".join(cleaned).strip("-")


def _partner_family(
    prefix: str,
    category: Sequence[str],
    names: Iterable[str],
    broker: str,
    name_template: str = "{name}",
) -> List[Attribute]:
    """Build one family of binary partner attributes."""
    out = []
    for index, name in enumerate(names):
        out.append(
            make_binary(
                attr_id=f"pc-{prefix}-{index:03d}",
                name=name_template.format(name=name),
                category=category,
                source=AttributeSource.PARTNER,
                broker=broker,
            )
        )
    return out


def _platform_family(
    prefix: str,
    category: Sequence[str],
    names: Iterable[str],
    name_template: str = "{name}",
) -> List[Attribute]:
    """Build one family of binary platform attributes."""
    out = []
    for index, name in enumerate(names):
        out.append(
            make_binary(
                attr_id=f"pf-{prefix}-{index:03d}",
                name=name_template.format(name=name),
                category=category,
            )
        )
    return out


def build_partner_attributes(
    count: int = US_PARTNER_ATTRIBUTE_COUNT,
) -> List[Attribute]:
    """The ``count`` binary US partner-category attributes.

    Families mirror the attribute categories the paper's validation
    actually revealed (net worth, restaurant and apparel purchase
    behaviour, job role, home type, auto purchase intent) plus the broker
    staples (income, credit, travel, charitable giving); the remainder is
    numbered consumer segments split across the named brokers.
    """
    families: List[Attribute] = []
    families += _partner_family(
        "networth", ("Financial", "Net worth"), _NET_WORTH_BANDS, "Acxiom",
        "Net worth: {name}",
    )
    families += _partner_family(
        "income", ("Financial", "Household income"), _INCOME_BANDS, "Acxiom",
        "Household income: {name}",
    )
    families += _partner_family(
        "credit", ("Financial", "Credit"), _CREDIT_SEGMENTS, "Experian",
    )
    families += _partner_family(
        "restaurants", ("Purchase behavior", "Restaurants"),
        _RESTAURANT_KINDS, "Oracle Data Cloud",
        "Purchases at: {name} restaurants",
    )
    families += _partner_family(
        "apparel", ("Purchase behavior", "Apparel"),
        _APPAREL_KINDS, "Oracle Data Cloud", "Buys: {name}",
    )
    families += _partner_family(
        "grocery", ("Purchase behavior", "Grocery"),
        _GROCERY_SEGMENTS, "Oracle Data Cloud",
    )
    families += _partner_family(
        "jobrole", ("Demographics", "Job role"), _JOB_ROLES, "Acxiom",
        "Job role: {name}",
    )
    families += _partner_family(
        "hometype", ("Home", "Home type"), _HOME_TYPES, "Acxiom",
        "Home type: {name}",
    )
    families += _partner_family(
        "homevalue", ("Home", "Home value"), _HOME_VALUE_BANDS, "Acxiom",
        "Home value: {name}",
    )
    families += _partner_family(
        "autointent", ("Automotive", "Purchase intent"),
        _AUTO_CLASSES, "Oracle Data Cloud",
        "Likely to purchase: {name}",
    )
    families += _partner_family(
        "autobrand", ("Automotive", "Ownership"),
        _AUTO_BRAND_TIERS, "Oracle Data Cloud",
    )
    families += _partner_family(
        "charity", ("Charitable donations",), _CHARITY_CAUSES, "Epsilon",
        "Donates to: {name}",
    )
    families += _partner_family(
        "travel", ("Travel",), _TRAVEL_SEGMENTS, "Epsilon",
    )
    if len(families) >= count:
        return families[:count]
    for pad_index in range(count - len(families)):
        broker = BROKERS[pad_index % len(BROKERS)]
        families.append(
            make_binary(
                attr_id=f"pc-segment-{pad_index:03d}",
                name=f"Consumer segment {pad_index + 1:03d}",
                category=("Consumer segments", broker),
                source=AttributeSource.PARTNER,
                broker=broker,
            )
        )
    return families


def build_platform_attributes(
    count: int = US_PLATFORM_ATTRIBUTE_COUNT,
) -> List[Attribute]:
    """The ``count`` platform-computed attributes (mostly binary).

    Includes the multi-valued staples real platforms expose — education
    level, relationship status, age of children, life stage — which the
    Treads bit-splitting scheme (paper section 3.1 "Scale") exercises.
    """
    attrs: List[Attribute] = [
        make_multi(
            "pf-education-level", "Education level",
            ("Demographics", "Education"), _EDUCATION_LEVELS,
        ),
        make_multi(
            "pf-relationship-status", "Relationship status",
            ("Demographics", "Relationship"), _RELATIONSHIP_STATUSES,
        ),
        make_multi(
            "pf-parents-child-age", "Parents by age of child",
            ("Demographics", "Parents"), _PARENT_CHILD_AGES,
        ),
        make_multi(
            "pf-life-stage", "Life stage",
            ("Demographics", "Life stage"), _LIFE_STAGES,
        ),
    ]
    attrs += _platform_family(
        "interest", ("Interests",), _INTEREST_TOPICS,
        "Interested in: {name}",
    )
    attrs += _platform_family(
        "behavior", ("Behaviors",), _BEHAVIOR_SEGMENTS,
    )
    attrs += _platform_family(
        "lifeevent", ("Life events",), _LIFE_EVENTS,
    )
    attrs += _platform_family(
        "demo", ("Demographics", "Misc"), _DEMOGRAPHIC_BINARY,
    )
    if len(attrs) >= count:
        return attrs[:count]
    for pad_index in range(count - len(attrs)):
        attrs.append(
            make_binary(
                attr_id=f"pf-topic-{pad_index:03d}",
                name=f"Interest topic {pad_index + 1:03d}",
                category=("Interests", "Topics"),
            )
        )
    return attrs


def build_us_catalog(
    platform_count: int = US_PLATFORM_ATTRIBUTE_COUNT,
    partner_count: int = US_PARTNER_ATTRIBUTE_COUNT,
) -> AttributeCatalog:
    """The full early-2018 US catalog: 614 platform + 507 partner attrs.

    Pass smaller counts to build reduced catalogs for fast tests.
    """
    attributes = build_platform_attributes(platform_count)
    attributes += build_partner_attributes(partner_count)
    return AttributeCatalog(attributes=attributes)


def build_country_catalogs(
    countries: Sequence[str] = ("US", "DE", "IN"),
    partner_counts: Sequence[int] = (US_PARTNER_ATTRIBUTE_COUNT, 120, 40),
) -> AttributeCatalog:
    """A multi-country catalog.

    Facebook provides different partner attributes in different countries
    (paper section 3.1); non-US countries get a country-specific slice of
    numbered segments while platform attributes are offered everywhere.
    """
    if len(countries) != len(partner_counts):
        raise ValueError("countries and partner_counts must align")
    attributes: List[Attribute] = []
    for attribute in build_platform_attributes():
        attributes.append(
            Attribute(
                attr_id=attribute.attr_id,
                name=attribute.name,
                source=attribute.source,
                kind=attribute.kind,
                category=attribute.category,
                values=attribute.values,
                broker=attribute.broker,
                countries=tuple(countries),
            )
        )
    for country, partner_count in zip(countries, partner_counts):
        if country == "US":
            country_partners = build_partner_attributes(partner_count)
        else:
            country_partners = [
                make_binary(
                    attr_id=f"pc-{country.lower()}-segment-{i:03d}",
                    name=f"{country} consumer segment {i + 1:03d}",
                    category=("Consumer segments", country),
                    source=AttributeSource.PARTNER,
                    broker=BROKERS[i % len(BROKERS)],
                    countries=(country,),
                )
                for i in range(partner_count)
            ]
        attributes.extend(country_partners)
    return AttributeCatalog(attributes=attributes)
