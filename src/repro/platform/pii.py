"""PII upload handling for custom audiences.

Platforms accept customer lists only as *hashed* PII (paper section 3.1,
"Supporting PII": "advertising platforms generally only require hashed PII
to create a PII-based audience"). This module models the upload format and
its validation: an advertiser submits :class:`PIIRecord` rows whose values
must already be SHA-256 digests; raw-looking values are rejected, which is
the property that lets Treads users hand hashed PII to the transparency
provider without revealing the raw values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Set

from repro.errors import PIIError
from repro.hashing import PII_KINDS, hash_pii, is_hashed


@dataclass(frozen=True)
class PIIRecord:
    """One hashed PII value of one kind, as uploaded by an advertiser."""

    kind: str
    digest: str

    def __post_init__(self) -> None:
        if self.kind not in PII_KINDS:
            raise PIIError(f"unknown PII kind {self.kind!r}")
        if not is_hashed(self.digest):
            raise PIIError(
                f"PII value for kind {self.kind!r} is not a SHA-256 digest; "
                "platforms only accept hashed uploads"
            )


def record_from_raw(kind: str, raw_value: str) -> PIIRecord:
    """Hash a raw value into an uploadable record (client-side helper)."""
    return PIIRecord(kind=kind, digest=hash_pii(kind, raw_value))


def records_from_raw(kind: str, raw_values: Iterable[str]) -> List[PIIRecord]:
    """Hash a batch of raw values of one kind."""
    return [record_from_raw(kind, value) for value in raw_values]


def validate_upload(records: Sequence[PIIRecord]) -> List[PIIRecord]:
    """Validate an upload batch: de-duplicate, reject empties.

    Returns the de-duplicated records in first-seen order. Platforms
    silently drop duplicates; an empty upload is an advertiser error.
    """
    if not records:
        raise PIIError("PII upload is empty")
    seen: Set[PIIRecord] = set()
    unique: List[PIIRecord] = []
    for record in records:
        if record not in seen:
            seen.add(record)
            unique.append(record)
    return unique
