"""Audiences: PII-based, pixel-based, and page-engagement.

An *audience* is "the resulting set of users" of some targeting criteria
(paper section 2.1). Three audience kinds matter for Treads:

* **PII custom audiences** — the advertiser uploads hashed PII; the
  platform matches it to users internally (``PII-based targeting``). The
  advertiser never learns which hashes matched.
* **Website (pixel) custom audiences** — everyone who fired one of the
  advertiser's tracking pixels. This is the paper's anonymous opt-in.
* **Page audiences** — users who liked one of the advertiser's pages; the
  paper's validation used exactly this ("had the two U.S.-based authors
  sign-up by liking a Facebook page").

Platforms impose a **minimum size** on uploaded/custom audiences before
ads may run against them, precisely to frustrate single-user targeting.
Page-connection targeting historically had no such gate — which is *why*
the validation in the paper opted users in via a page like rather than a
two-person custom audience. The simulator reproduces that asymmetry.

Advertisers only ever see a **rounded reach estimate**
(:class:`ReachEstimate`), never a member list.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import AudienceError, AudienceTooSmallError, StoreError
from repro.platform import bitset
from repro.platform.attributes import AttributeCatalog
from repro.platform.pii import PIIRecord, validate_upload
from repro.platform.pixels import PixelRegistry
from repro.platform.users import UserStore
from repro.store.records import (
    AudienceDelta,
    ChangeRecord,
    record_from_dict,
    record_to_dict,
)
from repro.store.store import MemoryStore, StateStore


class AudienceKind(enum.Enum):
    PII = "pii"
    PIXEL = "pixel"
    PAGE = "page"
    #: Google-style "custom intent/affinity": the advertiser supplies
    #: keyword phrases and the platform internally matches users (paper
    #: section 2.1).
    KEYWORD = "keyword"
    #: Expansion of a seed audience to "people similar to them" — the
    #: phrasing platform explanations use for customer-list targeting.
    LOOKALIKE = "lookalike"


@dataclass(frozen=True)
class ReachEstimate:
    """What the platform tells an advertiser about an audience's size.

    ``displayed`` is rounded; ``is_floor`` marks "below N" answers for
    small audiences (real platforms report e.g. "Below 1,000" rather than
    an exact small count — one of the aggregation behaviours the Treads
    privacy analysis relies on).
    """

    displayed: int
    is_floor: bool = False

    def __str__(self) -> str:
        if self.is_floor:
            return f"below {self.displayed}"
        return f"~{self.displayed}"


def round_reach(true_size: int, floor: int = 1000, quantum: int = 50) -> ReachEstimate:
    """Round a true audience size the way platforms do.

    Sizes under ``floor`` are reported only as "below floor"; larger sizes
    are rounded to the nearest ``quantum``.
    """
    if true_size < floor:
        return ReachEstimate(displayed=floor, is_floor=True)
    rounded = int(round(true_size / quantum)) * quantum
    return ReachEstimate(displayed=rounded)


@dataclass
class Audience:
    """One audience owned by one advertiser account.

    Membership is resolved lazily for dynamic kinds (pixel, page) so the
    audience always reflects the latest activity; PII audiences are frozen
    at upload-match time, like real customer-list audiences.
    """

    audience_id: str
    owner_account_id: str
    kind: AudienceKind
    name: str = ""
    #: PII audiences: matched user ids, frozen at creation (internal).
    _matched_user_ids: Set[str] = field(default_factory=set, repr=False)
    #: Pixel audiences: the sourcing pixel.
    pixel_id: Optional[str] = None
    #: Page audiences: the sourcing page.
    page_id: Optional[str] = None
    #: Keyword audiences: the advertiser's phrases (what Google calls a
    #: custom intent/affinity definition).
    phrases: Tuple[str, ...] = ()
    #: Lookalike audiences: the seed audience and the minimum number of
    #: shared binary attributes for a user to count as "similar".
    seed_audience_id: Optional[str] = None
    similarity_threshold: int = 0


class AudienceRegistry:
    """Platform-internal audience store and membership resolver.

    A :class:`~repro.store.store.StateOwner`: every audience creation is
    journaled as an :class:`~repro.store.records.AudienceDelta` carrying
    the audience's full config (and, for frozen PII audiences, its
    matched member ids), so a registry can be rebuilt from its journal
    alone. Replaying an identical delta onto a registry that already
    holds the audience is a no-op — a replayed journal may legitimately
    re-describe audiences a rebuilt world already created.
    """

    store_name = "audiences"
    handled_kinds: Tuple[str, ...] = (AudienceDelta.kind,)

    def __init__(
        self,
        users: UserStore,
        pixels: PixelRegistry,
        catalog: Optional[AttributeCatalog] = None,
        min_custom_audience_size: int = 20,
        reach_floor: int = 1000,
        reach_quantum: int = 50,
        store: Optional[StateStore] = None,
    ):
        self._users = users
        self._pixels = pixels
        self._catalog = catalog
        self._store = store if store is not None else MemoryStore()
        self._store.attach(self)
        self._audiences: Dict[str, Audience] = {}
        self.min_custom_audience_size = min_custom_audience_size
        self.reach_floor = reach_floor
        self.reach_quantum = reach_quantum
        #: Columnar user stores expose membership as row bitsets; the
        #: registry then resolves set algebra with bitwise ops.
        self._columnar = hasattr(users, "attribute_bitset")
        #: audience_id -> ((users epoch, pixels seq), member count).
        self._count_cache: Dict[str, Tuple[Tuple[int, int], int]] = {}
        #: audience_id -> ((users epoch, pixels seq), member bitset).
        #: The columnar twin of _count_cache: the materialized mask
        #: itself, shared by reach estimates and the batch sweep's
        #: mask-program evaluation (repro.platform.targeting).
        self._bitset_cache: Dict[str, Tuple[Tuple[int, int], np.ndarray]] = {}

    @property
    def store(self) -> StateStore:
        return self._store

    # -- creation ----------------------------------------------------------

    def create_pii_audience(
        self,
        audience_id: str,
        owner_account_id: str,
        records: Sequence[PIIRecord],
        name: str = "",
    ) -> Audience:
        """Match an upload of hashed PII into a frozen audience.

        The advertiser receives the audience handle and (on request) a
        rounded reach — never the per-record match outcome.
        """
        unique = validate_upload(records)
        matched: Set[str] = set()
        for record in unique:
            matched |= self._users.users_matching_pii(record.kind, record.digest)
        return self._register(
            Audience(
                audience_id=audience_id,
                owner_account_id=owner_account_id,
                kind=AudienceKind.PII,
                name=name,
                _matched_user_ids=matched,
            )
        )

    def create_pixel_audience(
        self,
        audience_id: str,
        owner_account_id: str,
        pixel_id: str,
        name: str = "",
    ) -> Audience:
        """Audience of visitors who fired one of the account's pixels."""
        pixel = self._pixels.get(pixel_id)
        if pixel.owner_account_id != owner_account_id:
            raise AudienceError(
                f"pixel {pixel_id!r} belongs to another advertiser"
            )
        return self._register(
            Audience(
                audience_id=audience_id,
                owner_account_id=owner_account_id,
                kind=AudienceKind.PIXEL,
                name=name,
                pixel_id=pixel_id,
            )
        )

    def create_page_audience(
        self,
        audience_id: str,
        owner_account_id: str,
        page_id: str,
        name: str = "",
    ) -> Audience:
        """Audience of users who liked a page ("connections" targeting)."""
        return self._register(
            Audience(
                audience_id=audience_id,
                owner_account_id=owner_account_id,
                kind=AudienceKind.PAGE,
                name=name,
                page_id=page_id,
            )
        )

    def create_keyword_audience(
        self,
        audience_id: str,
        owner_account_id: str,
        phrases: Sequence[str],
        name: str = "",
    ) -> Audience:
        """Custom intent/affinity audience from keyword phrases.

        "advertisers can specify a series of phrases or URLs that describe
        the users they want to target, which are then internally used by
        Google to create an audience of matching users" (paper section
        2.1). Matching is platform-internal: a user belongs iff any of
        their attributes' names/categories match any phrase. The
        advertiser never learns which attribute matched whom.
        """
        cleaned = tuple(p.strip() for p in phrases if p.strip())
        if not cleaned:
            raise AudienceError("keyword audience needs at least one phrase")
        if self._catalog is None:
            raise AudienceError(
                "this platform does not support keyword audiences "
                "(no catalog wired)"
            )
        return self._register(
            Audience(
                audience_id=audience_id,
                owner_account_id=owner_account_id,
                kind=AudienceKind.KEYWORD,
                name=name,
                phrases=cleaned,
            )
        )

    def _register(self, audience: Audience) -> Audience:
        if audience.audience_id in self._audiences:
            raise AudienceError(
                f"duplicate audience id {audience.audience_id!r}"
            )
        self._store.append(self._delta_for(audience))
        self._audiences[audience.audience_id] = audience
        return audience

    # -- state owner -------------------------------------------------------

    @staticmethod
    def _delta_for(audience: Audience) -> AudienceDelta:
        """The journal record fully describing one audience. Member ids
        are sorted so equal audiences yield byte-identical records."""
        return AudienceDelta(
            audience_id=audience.audience_id,
            owner_account_id=audience.owner_account_id,
            audience_kind=audience.kind.value,
            name=audience.name,
            member_ids=tuple(sorted(audience._matched_user_ids)),
            pixel_id=audience.pixel_id or "",
            page_id=audience.page_id or "",
            phrases=tuple(audience.phrases),
            seed_audience_id=audience.seed_audience_id or "",
            similarity_threshold=audience.similarity_threshold,
        )

    @staticmethod
    def _audience_from_delta(delta: AudienceDelta) -> Audience:
        try:
            kind = AudienceKind(delta.audience_kind)
        except ValueError:
            raise StoreError(
                f"unknown audience kind {delta.audience_kind!r} in "
                f"delta for {delta.audience_id!r}") from None
        return Audience(
            audience_id=delta.audience_id,
            owner_account_id=delta.owner_account_id,
            kind=kind,
            name=delta.name,
            _matched_user_ids=set(delta.member_ids),
            pixel_id=delta.pixel_id or None,
            page_id=delta.page_id or None,
            phrases=tuple(delta.phrases),
            seed_audience_id=delta.seed_audience_id or None,
            similarity_threshold=delta.similarity_threshold,
        )

    def apply_record(self, record: ChangeRecord) -> None:
        """Fold one journaled delta in — idempotently: an identical
        delta for an audience we already hold is skipped, a conflicting
        one is an error."""
        if not isinstance(record, AudienceDelta):
            raise StoreError(
                f"audiences cannot apply record kind {record.kind!r}")
        existing = self._audiences.get(record.audience_id)
        if existing is not None:
            if self._delta_for(existing) == record:
                return
            raise StoreError(
                f"conflicting audience_delta for {record.audience_id!r}")
        self._audiences[record.audience_id] = (
            self._audience_from_delta(record))

    def state_dump(self) -> Dict[str, Any]:
        return {
            "audiences": [
                record_to_dict(self._delta_for(audience))
                for audience in self._audiences.values()
            ],
        }

    def state_load(self, state: Dict[str, Any]) -> None:
        self._audiences = {}
        for data in state.get("audiences", []):
            delta = record_from_dict(dict(data))
            if not isinstance(delta, AudienceDelta):
                raise StoreError(
                    f"audience dump holds a {delta.kind!r} record")
            self._audiences[delta.audience_id] = (
                self._audience_from_delta(delta))

    def create_lookalike_audience(
        self,
        audience_id: str,
        owner_account_id: str,
        seed_audience_id: str,
        similarity_threshold: int = 3,
        name: str = "",
    ) -> Audience:
        """"People similar to" a seed audience the advertiser owns.

        Platform-internal similarity: a user belongs iff they share at
        least ``similarity_threshold`` binary attributes with any seed
        member. The advertiser supplies only the seed handle — it never
        sees the expansion logic's inputs or outputs, mirroring real
        lookalike products.
        """
        seed = self.get(seed_audience_id)
        if seed.owner_account_id != owner_account_id:
            raise AudienceError(
                f"seed audience {seed_audience_id!r} belongs to another "
                "advertiser"
            )
        if similarity_threshold < 1:
            raise AudienceError("similarity threshold must be >= 1")
        return self._register(
            Audience(
                audience_id=audience_id,
                owner_account_id=owner_account_id,
                kind=AudienceKind.LOOKALIKE,
                name=name,
                seed_audience_id=seed_audience_id,
                similarity_threshold=similarity_threshold,
            )
        )

    # -- resolution (platform-internal) -------------------------------------

    def get(self, audience_id: str) -> Audience:
        try:
            return self._audiences[audience_id]
        except KeyError:
            raise AudienceError(f"unknown audience {audience_id!r}") from None

    def members(self, audience_id: str) -> Set[str]:
        """Current member user ids. PLATFORM-INTERNAL — never shown to
        advertisers; delivery and reach estimation consume this."""
        audience = self.get(audience_id)
        if audience.kind is AudienceKind.PII:
            return set(audience._matched_user_ids)
        if audience.kind is AudienceKind.PIXEL:
            assert audience.pixel_id is not None
            return self._pixels.visitors(audience.pixel_id)
        if self._columnar:
            return self._users.rows_to_ids(self.member_bitset(audience_id))
        if audience.kind is AudienceKind.KEYWORD:
            return self._keyword_members(audience)
        if audience.kind is AudienceKind.LOOKALIKE:
            return self._lookalike_members(audience)
        assert audience.page_id is not None
        return {
            profile.user_id
            for profile in self._users
            if audience.page_id in profile.liked_pages
        }

    def member_bitset(self, audience_id: str) -> np.ndarray:
        """Membership as a bitset over the columnar store's rows.

        Columnar worlds only. Dynamic kinds become column algebra: page
        audiences are one column extraction, keyword audiences a union of
        attribute columns, lookalikes a vectorized popcount of shared
        attributes against each seed row — no per-profile Python loop.
        """
        if not self._columnar:
            raise AudienceError(
                "member_bitset needs a columnar user store")
        store = self._users
        nrows = len(store)
        audience = self.get(audience_id)
        if audience.kind is AudienceKind.PII:
            rows = [store.row_of(uid) for uid in audience._matched_user_ids]
            return bitset.from_indices(
                [r for r in rows if r is not None], nrows)
        if audience.kind is AudienceKind.PIXEL:
            assert audience.pixel_id is not None
            rows = [store.row_of(uid)
                    for uid in self._pixels.visitors(audience.pixel_id)]
            return bitset.from_indices(
                [r for r in rows if r is not None], nrows)
        if audience.kind is AudienceKind.PAGE:
            assert audience.page_id is not None
            return store.page_bitset(audience.page_id)
        if audience.kind is AudienceKind.KEYWORD:
            assert self._catalog is not None
            matched: Set[str] = set()
            for phrase in audience.phrases:
                for attribute in self._catalog.search(phrase):
                    matched.add(attribute.attr_id)
            return bitset.union_all(
                [store.attribute_bitset(attr_id) for attr_id in matched],
                nrows)
        assert audience.seed_audience_id is not None
        return self._lookalike_bitset(audience, nrows)

    def member_bitset_cached(self, audience_id: str) -> np.ndarray:
        """:meth:`member_bitset`, memoized against world mutations.

        Keyed on ``(users.mutation_epoch, pixels.mutation_seq)`` exactly
        like the count cache, so any store-API mutation (attributes, page
        likes, new rows, pixel fires, PII uploads) invalidates the mask.
        This is the resolver the batch sweep and reach estimation share:
        the same materialized audience answers every row-range
        evaluation until the world actually changes. Callers must not
        mutate the returned array.
        """
        users_epoch = getattr(self._users, "mutation_epoch", None)
        if users_epoch is None:
            return self.member_bitset(audience_id)
        key = (users_epoch, self._pixels.mutation_seq)
        cached = self._bitset_cache.get(audience_id)
        if cached is not None and cached[0] == key:
            return cached[1]
        bits = self.member_bitset(audience_id)
        self._bitset_cache[audience_id] = (key, bits)
        return bits

    def _lookalike_bitset(self, audience: Audience,
                          nrows: int) -> np.ndarray:
        """Vectorized lookalike expansion over the attribute matrix.

        For each seed row, AND its attribute bitset against every user's
        row and popcount — users sharing >= threshold binary attributes
        with any seed member join (seed members included, as in the
        object path).
        """
        seed_bits = self.member_bitset(audience.seed_audience_id)
        cols = self._users.columns
        matrix = cols.attr_bits[:nrows]
        threshold = audience.similarity_threshold
        mask = np.zeros(nrows, dtype=bool)
        for seed_row in bitset.iter_indices(seed_bits):
            row_bits = matrix[seed_row]
            if bitset.popcount(row_bits) < threshold:
                continue
            shared = bitset.row_popcounts(matrix & row_bits)
            mask |= shared >= threshold
        packed = np.packbits(mask.astype(np.uint8), bitorder="little")
        out = bitset.make_bitset(nrows)
        out.view(np.uint8)[: packed.size] = packed
        return bitset.union(out, seed_bits)

    def _keyword_members(self, audience: Audience) -> Set[str]:
        """Platform-internal keyword match: phrase -> attributes -> users."""
        assert self._catalog is not None
        matched_attr_ids: Set[str] = set()
        for phrase in audience.phrases:
            for attribute in self._catalog.search(phrase):
                matched_attr_ids.add(attribute.attr_id)
        members: Set[str] = set()
        for attr_id in matched_attr_ids:
            members |= {
                profile.user_id
                for profile in self._users.users_with_attribute(attr_id)
            }
        return members

    def is_member(self, audience_id: str, user_id: str) -> bool:
        """The :data:`~repro.platform.targeting.AudienceResolver` hook."""
        audience = self.get(audience_id)
        if audience.kind is AudienceKind.PII:
            return user_id in audience._matched_user_ids
        if self._columnar and audience.kind is AudienceKind.PAGE:
            # O(1) bit probe instead of materializing the page column.
            assert audience.page_id is not None
            row = self._users.row_of(user_id)
            return (row is not None
                    and self._users.columns.has_page(row, audience.page_id))
        return user_id in self.members(audience_id)

    def cached_resolver(self) -> Callable[[str, str], bool]:
        """A membership resolver that materializes each audience once.

        :meth:`is_member` recomputes dynamic memberships (page scans,
        pixel visitor sets, lookalike expansion) on *every* call, which
        is correct but ruinous inside a delivery run that checks the same
        audience for thousands of users. The returned resolver snapshots
        each audience's member set on first use and answers subsequent
        checks from the snapshot.

        Only valid across a window in which memberships do not change —
        e.g. one synchronous delivery run, which performs no opt-ins,
        page likes, pixel fires, or PII uploads. Callers that cannot
        guarantee that must use :meth:`is_member`.
        """
        if self._columnar:
            store = self._users
            bit_snapshots: Dict[str, np.ndarray] = {}

            def resolve_bits(audience_id: str, user_id: str) -> bool:
                bits = bit_snapshots.get(audience_id)
                if bits is None:
                    bits = self.member_bitset_cached(audience_id)
                    bit_snapshots[audience_id] = bits
                row = store.row_of(user_id)
                return row is not None and bitset.test_bit(bits, row)

            return resolve_bits

        snapshots: Dict[str, Set[str]] = {}

        def resolve(audience_id: str, user_id: str) -> bool:
            members = snapshots.get(audience_id)
            if members is None:
                members = self.members(audience_id)
                snapshots[audience_id] = members
            return user_id in members

        return resolve

    def check_runnable(self, audience_id: str) -> None:
        """Enforce the minimum-size gate for custom (PII/pixel) audiences.

        Page audiences are exempt — the asymmetry the paper's validation
        exploited to reach a two-person audience.
        """
        audience = self.get(audience_id)
        if audience.kind is AudienceKind.PAGE:
            return
        size = self.membership_count(audience_id)
        if size < self.min_custom_audience_size:
            raise AudienceTooSmallError(
                f"audience {audience_id!r} has {size} members; platform "
                f"minimum is {self.min_custom_audience_size}"
            )

    def membership_count(self, audience_id: str) -> int:
        """Current member count, cached against the world's mutation state.

        PII audiences are frozen, so their count is just the set's size.
        Dynamic kinds key a cached count on ``(users.mutation_epoch,
        pixels.mutation_seq)`` — valid as long as mutations flow through
        the store APIs (``set_attribute`` on a registered profile,
        ``like_page``, ``attach_pii``, pixel fires), which bump those
        counters. Columnar worlds count via popcount of the member bitset;
        either way, a repeated reach probe of an unchanged world is O(1).
        """
        audience = self.get(audience_id)
        if audience.kind is AudienceKind.PII:
            return len(audience._matched_user_ids)
        users_epoch = getattr(self._users, "mutation_epoch", None)
        if users_epoch is None:
            # A store without an epoch gives us nothing to key on.
            return len(self.members(audience_id))
        key = (users_epoch, self._pixels.mutation_seq)
        cached = self._count_cache.get(audience_id)
        if cached is not None and cached[0] == key:
            return cached[1]
        if self._columnar:
            # One materialization serves both: the popcount here and any
            # batch-sweep mask evaluation reuse the same cached bitset.
            count = bitset.popcount(self.member_bitset_cached(audience_id))
        else:
            count = len(self.members(audience_id))
        self._count_cache[audience_id] = (key, count)
        return count

    def _lookalike_members(self, audience: Audience) -> Set[str]:
        """Expand a seed audience by binary-attribute overlap.

        Seed members themselves are included (real lookalikes exclude
        them, but for Treads purposes inclusion is harmless and the
        exclusion is one NOT-term away in targeting).
        """
        assert audience.seed_audience_id is not None
        seed_ids = self.members(audience.seed_audience_id)
        seed_profiles = [self._users.get(user_id) for user_id in seed_ids]
        members = set(seed_ids)
        for profile in self._users:
            if profile.user_id in members:
                continue
            for seed_profile in seed_profiles:
                shared = profile.binary_attrs & seed_profile.binary_attrs
                if len(shared) >= audience.similarity_threshold:
                    members.add(profile.user_id)
                    break
        return members

    # -- advertiser-facing -------------------------------------------------

    def estimated_reach(self, audience_id: str) -> ReachEstimate:
        """Rounded potential reach, the only size signal advertisers get.

        Served from :meth:`membership_count`'s epoch-keyed cache — the
        advertiser polling reach in a loop no longer re-materializes the
        audience each time."""
        return round_reach(
            self.membership_count(audience_id),
            floor=self.reach_floor,
            quantum=self.reach_quantum,
        )

    def audiences_owned_by(self, account_id: str) -> List[Audience]:
        return [a for a in self._audiences.values()
                if a.owner_account_id == account_id]
