"""Parallel batch sweep: one columnar world, row ranges across processes.

The single-process batch sweep
(:meth:`~repro.platform.delivery.DeliveryEngine.sweep_slots`) is column
algebra over row blocks; this module partitions the row space itself.
Each forked worker inherits the built platform world by copy-on-write —
catalog, columns, compiled matchers, lowered mask programs — sweeps its
own disjoint ``(start, stop)`` range, and ships back a compact per-ad
delta (shown-bitset words, impression count, spend). The parent folds
the deltas with
:meth:`~repro.platform.delivery.DeliveryEngine.absorb_sweep_delta` in
range order, so the merged engine state is deterministic regardless of
which worker finishes first.

Three preconditions make the partition sound, all checked up front:

* **Compact engine** — deltas are bitset/counter folds; per-impression
  journals cannot be reassembled across forks (a forked
  :class:`~repro.store.store.JournalStore` would even share the parent's
  file descriptor).
* **Constant competing-bid draw** — workers cannot share an RNG stream,
  so every draw must be a known constant
  (:func:`~repro.workloads.competition.zero_competition` /
  :func:`~repro.workloads.competition.fixed_competition`).
* **A budget certificate over the whole sweep** — a worker cannot replay
  another worker's rows, so no account budget may cross an
  affordability threshold anywhere in the sweep. The certificate bounds
  every possible charge by the auction's price cap; the Treads
  economics (zero competition, zero floor, one provider account) bound
  to exactly $0, which is what makes the 1M-row sweep trivially
  certifiable.

Wire plumbing reuses the shard-serving framing
(:class:`repro.serve.ipc.Framer` over a socketpair): one frame out per
worker, carrying its stats and delta.
"""

from __future__ import annotations

import logging
import os
import socket
from multiprocessing import get_context
from typing import Dict, List, Optional, Tuple

from repro.errors import StoreError
from repro.platform import bitset
from repro.platform.delivery import DeliveryEngine, DeliveryStats
from repro.platform.targeting import lower_spec
from repro.serve.ipc import Framer, WorkerLost

_log = logging.getLogger("repro.platform.parsweep")


def visible_cores() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def partition_rows(nrows: int, workers: int) -> List[Tuple[int, int]]:
    """Split ``nrows`` into at most ``workers`` word-aligned ranges.

    Every range but the last starts and ends on a 64-row boundary, so
    each worker's shown-bitset delta occupies whole words that the
    parent can OR into place without bit shifting.
    """
    if workers <= 0:
        raise ValueError("workers must be positive")
    if nrows <= 0:
        return []
    span = -(-nrows // workers)
    span = ((span + bitset.WORD_BITS - 1)
            // bitset.WORD_BITS) * bitset.WORD_BITS
    ranges = []
    start = 0
    while start < nrows:
        stop = min(start + span, nrows)
        ranges.append((start, stop))
        start = stop
    return ranges


def certify_budgets(engine: DeliveryEngine, nrows: int) -> None:
    """Prove no account budget can flip eligibility during the sweep.

    For each candidate ad the per-impression charge is capped at
    ``min(max(strongest other account's bid, competing constant, floor),
    own bid)`` — the second-price formula's ceiling. Charging that cap
    for every row in the sweep is the worst case; if every candidate
    stays affordable under it, no worker can ever observe a budget
    crossing, and the partitioned rounds are exact. Raises
    :class:`~repro.errors.StoreError` when the bound cannot be
    certified — fall back to the single-process
    :meth:`~repro.platform.delivery.DeliveryEngine.sweep_slots`, whose
    scalar-replay fallback handles budget flips exactly.
    """
    constant = getattr(engine._competing_draw, "constant", None)
    if constant is None:
        raise StoreError(
            "parallel sweep needs a constant competing-bid draw "
            "(fixed_competition / zero_competition); random draws "
            "cannot be split across processes")
    entries = engine._sweep_candidates()
    if not entries:
        return
    floor = engine.floor_price
    by_account: Dict[str, Tuple[object, List[float]]] = {}
    for ad, account, bid, _matcher in entries:
        by_account.setdefault(account.account_id, (account, []))[1].append(bid)
        # Warm the lower cache pre-fork: every worker then inherits the
        # compiled mask programs by copy-on-write instead of re-lowering.
        lower_spec(ad.targeting)
    for account_id, (account, bids) in by_account.items():
        max_other = max(
            (max(other_bids)
             for other_id, (_a, other_bids) in by_account.items()
             if other_id != account_id),
            default=0.0)
        worst_case = 0.0
        for bid in bids:
            worst_case += min(max(max_other, constant, floor), bid) * nrows
        budget = account.budget  # type: ignore[attr-defined]
        if any(budget - worst_case + 1e-12 < bid for bid in bids):
            raise StoreError(
                f"cannot certify account {account_id!r} stays solvent "
                f"across the sweep (budget ${budget:.2f}, worst-case "
                f"spend ${worst_case:.2f}); run sweep_slots "
                "single-process instead")


def parallel_sweep(
    engine: DeliveryEngine,
    workers: Optional[int] = None,
    max_rounds: int = 50,
    block_rows: int = 1 << 16,
) -> DeliveryStats:
    """Sweep the whole attached columnar store across forked workers.

    ``workers`` defaults to the visible core count. With one worker (or
    one row range) this degenerates to a plain in-process
    :meth:`~repro.platform.delivery.DeliveryEngine.sweep_slots` call.
    Returns the aggregate :class:`DeliveryStats` across all ranges.
    """
    if workers is None:
        workers = visible_cores()
    if workers <= 0:
        raise ValueError("workers must be positive")
    users = engine._user_store
    if users is None or not hasattr(users, "columns"):
        raise StoreError(
            "parallel sweep needs a columnar user store attached")
    if not engine._compact:
        raise StoreError(
            "parallel sweep needs a compact delivery engine (deltas "
            "are bitset/counter folds, not per-impression journals)")
    if not getattr(engine._store, "discards_records", False):
        raise StoreError(
            "parallel sweep needs a record-discarding store (NullStore):"
            " a forked worker cannot append to the parent's journal")
    nrows = len(users)
    ranges = partition_rows(nrows, workers)
    if len(ranges) <= 1:
        return engine.sweep_slots(max_rounds=max_rounds,
                                  block_rows=block_rows)
    certify_budgets(engine, nrows)
    ctx = get_context("fork")
    spawned = []
    for start, stop in ranges:
        parent_sock, child_sock = socket.socketpair()
        process = ctx.Process(
            target=_worker_main,
            args=(child_sock, parent_sock, engine, start, stop,
                  max_rounds, block_rows),
            name=f"parsweep-{start}-{stop}",
            daemon=True,
        )
        process.start()
        child_sock.close()
        spawned.append((process, Framer(parent_sock), start, stop))
    stats = DeliveryStats()
    deltas = []
    failures = []
    for process, framer, start, stop in spawned:
        try:
            status, payload = framer.recv()
        except WorkerLost as exc:
            failures.append(f"rows [{start}, {stop}): worker lost ({exc})")
            continue
        if status != "ok":
            failures.append(f"rows [{start}, {stop}): {payload}")
            continue
        (slots, filled, lost), delta = payload
        stats.slots += slots
        stats.filled_by_tracked_ads += filled
        stats.lost_to_competition += lost
        deltas.append(delta)
    for process, framer, _start, _stop in spawned:
        framer.close()
        process.join(timeout=30.0)
        if process.is_alive():  # pragma: no cover - defensive
            process.terminate()
            process.join(timeout=30.0)
    if failures:
        raise StoreError(
            "parallel sweep failed: " + "; ".join(failures))
    for delta in deltas:
        engine.absorb_sweep_delta(delta)
    _log.info(
        "parallel_sweep: %d workers, %d slots (%d filled, %d lost)",
        len(spawned), stats.slots, stats.filled_by_tracked_ads,
        stats.lost_to_competition,
    )
    return stats


def _worker_main(child_sock: socket.socket, parent_sock: socket.socket,
                 engine: DeliveryEngine, start: int, stop: int,
                 max_rounds: int, block_rows: int) -> None:
    """Forked worker: sweep one row range on COW state, ship the delta.

    The worker's engine/ledger/metrics mutations are its own
    copy-on-write pages and die with the process — the delta frame is
    the only state that crosses back.
    """
    parent_sock.close()
    framer = Framer(child_sock)
    try:
        try:
            stats, delta = engine.sweep_slots(
                (start, stop), max_rounds=max_rounds,
                block_rows=block_rows, _collect_delta=True)
        except Exception as exc:  # noqa: BLE001 - shipped to the parent
            framer.send(("error", f"{type(exc).__name__}: {exc}"))
            return
        framer.send(("ok", (
            (stats.slots, stats.filled_by_tracked_ads,
             stats.lost_to_competition),
            delta,
        )))
    finally:
        framer.close()
