"""Advertiser-facing performance reporting.

The Treads threat model (paper section 3.1, "Privacy analysis") grants the
transparency provider exactly what this module exposes: "the performance
statistics reported by the advertising platform (e.g., for billing
purposes); this could include estimates about the number of users reached
by different ads". The provider can therefore *count* how many opted-in
users carry each attribute — but the platform never names users, and
demographic breakdowns are withheld below a minimum-reach threshold, so
reports alone cannot de-anonymize an individual (benchmark E5 ablates the
threshold to show what would leak without it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.platform.ads import AdInventory
from repro.platform.billing import BillingLedger
from repro.platform.delivery import DeliveryEngine
from repro.platform.users import UserStore


@dataclass(frozen=True)
class AdPerformanceReport:
    """What an advertiser sees about one of its ads.

    ``reach`` is a (possibly quantized) count of distinct users reached;
    ``demographics`` is None below the breakdown threshold. There is no
    field that could identify an individual user — that absence is the
    design property the whole Treads mechanism leans on.
    """

    ad_id: str
    impressions: int
    spend: float
    reach: int
    effective_cpm: float
    clicks: int = 0
    demographics: Optional[Dict[str, int]] = None

    @property
    def ctr(self) -> float:
        """Click-through rate (clicks / impressions)."""
        if self.impressions == 0:
            return 0.0
        return self.clicks / self.impressions


@dataclass
class ReportingConfig:
    """Knobs modelling the platform's aggregation behaviour."""

    #: Reach is rounded to the nearest multiple of this (1 = exact counts).
    reach_quantum: int = 1
    #: Age/gender breakdowns are suppressed below this many reached users.
    breakdown_min_reach: int = 100


class ReportingService:
    """Builds advertiser-facing reports from platform-internal logs."""

    def __init__(
        self,
        inventory: AdInventory,
        ledger: BillingLedger,
        delivery: DeliveryEngine,
        users: UserStore,
        config: Optional[ReportingConfig] = None,
    ):
        self._inventory = inventory
        self._ledger = ledger
        self._delivery = delivery
        self._users = users
        self.config = config or ReportingConfig()

    def _quantize_reach(self, true_reach: int) -> int:
        quantum = self.config.reach_quantum
        if quantum <= 1:
            return true_reach
        return int(round(true_reach / quantum)) * quantum

    def report_for_ad(self, ad_id: str, account_id: str) -> AdPerformanceReport:
        """One ad's performance report, for its owning advertiser only."""
        ad = self._inventory.ad(ad_id)
        if ad.account_id != account_id:
            raise PermissionError(
                f"account {account_id!r} does not own ad {ad_id!r}"
            )
        true_reach = self._delivery.reach_count(ad_id)
        reach = self._quantize_reach(true_reach)
        demographics: Optional[Dict[str, int]] = None
        if true_reach >= self.config.breakdown_min_reach:
            # Only materialize the user set when a breakdown is owed;
            # reach itself comes from the delivery engine's per-ad index.
            demographics = self._demographic_breakdown(
                self._delivery.unique_reach(ad_id)
            )
        return AdPerformanceReport(
            ad_id=ad_id,
            impressions=self._ledger.impressions_for_ad(ad_id),
            spend=self._ledger.spend_for_ad(ad_id),
            reach=reach,
            effective_cpm=self._ledger.effective_cpm(ad_id),
            clicks=self._delivery.clicks_for_ad(ad_id),
            demographics=demographics,
        )

    def _demographic_breakdown(self, user_ids) -> Dict[str, int]:
        """Coarse age-bucket x gender counts, platform-style."""
        breakdown: Dict[str, int] = {}
        for user_id in user_ids:
            profile = self._users.get(user_id)
            bucket = f"{_age_bucket(profile.age)}|{profile.gender}"
            breakdown[bucket] = breakdown.get(bucket, 0) + 1
        return breakdown

    def reports_for_account(self, account_id: str) -> List[AdPerformanceReport]:
        """Reports for every ad the account owns (the provider's view of a
        whole Tread campaign)."""
        return [
            self.report_for_ad(ad.ad_id, account_id)
            for ad in self._inventory.ads_owned_by(account_id)
        ]


def _age_bucket(age: int) -> str:
    """The standard reporting age buckets."""
    edges = ((13, 17), (18, 24), (25, 34), (35, 44), (45, 54), (55, 64))
    for low, high in edges:
        if low <= age <= high:
            return f"{low}-{high}"
    return "65+"
