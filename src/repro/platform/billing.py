"""CPM billing: the spend ledger and advertiser invoices.

The transparency provider "must pay the ad platform whenever impressions
of Treads are shown to users" (paper section 3.1, "Cost"). The ledger
records one charge per won impression at the auction's second price; the
cost model in :mod:`repro.core.costs` reads its aggregates to reproduce
the paper's $0.002-per-attribute arithmetic.

A detail the paper leans on: attributes a user does *not* have cost
nothing — the corresponding Treads are never delivered, so no charge is
ever recorded. The ledger makes that observable ("zero per-user cost for
Treads corresponding to targeting parameters that a user does not have").
"""

from __future__ import annotations

import logging
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List

from repro.obs import events as obs_events
from repro.obs.metrics import registry as obs_registry
from repro.platform.ads import AdInventory

_log = logging.getLogger("repro.platform.billing")

#: Budgets this close to zero are spent: float dust left by repeated
#: second-price charges must not keep an account formally solvent.
_BUDGET_EPSILON = 1e-9


@dataclass(frozen=True)
class ChargeRecord:
    """One billed impression."""

    ad_id: str
    account_id: str
    amount: float
    impression_seq: int


@dataclass
class Invoice:
    """Per-account billing summary."""

    account_id: str
    total: float = 0.0
    impressions: int = 0
    by_ad: Dict[str, float] = field(default_factory=dict)


class BillingLedger:
    """Append-only charge log with per-ad and per-account aggregation."""

    def __init__(self, inventory: AdInventory):
        self._inventory = inventory
        self._charges: List[ChargeRecord] = []
        self._spend_by_ad: Dict[str, float] = defaultdict(float)
        self._impressions_by_ad: Dict[str, int] = defaultdict(int)
        reg = obs_registry()
        self._obs_on = reg.enabled
        self._obs_charged = reg.counter("billing.impressions_charged")
        self._obs_exhausted = reg.counter("billing.budget_exhausted")
        self._bus = obs_events.bus()

    def charge_impression(self, ad_id: str, account_id: str, amount: float,
                          impression_seq: int) -> ChargeRecord:
        """Charge one impression to the advertiser's account budget."""
        account = self._inventory.account(account_id)
        solvent_before = account.budget > _BUDGET_EPSILON
        account.charge(amount)
        if self._obs_on:
            self._obs_charged.inc()
        if solvent_before and account.budget <= _BUDGET_EPSILON:
            self._obs_exhausted.inc()
            _log.info("account %s budget exhausted (last charge $%.6f)",
                      account_id, amount)
            if self._bus.active:
                self._bus.emit(obs_events.BudgetExhausted(
                    account_id=account_id, last_charge=amount,
                ))
        record = ChargeRecord(
            ad_id=ad_id,
            account_id=account_id,
            amount=amount,
            impression_seq=impression_seq,
        )
        self._charges.append(record)
        self._spend_by_ad[ad_id] += amount
        self._impressions_by_ad[ad_id] += 1
        return record

    def spend_for_ad(self, ad_id: str) -> float:
        return self._spend_by_ad.get(ad_id, 0.0)

    def impressions_for_ad(self, ad_id: str) -> int:
        return self._impressions_by_ad.get(ad_id, 0)

    def spend_for_account(self, account_id: str) -> float:
        return sum(
            record.amount for record in self._charges
            if record.account_id == account_id
        )

    def effective_cpm(self, ad_id: str) -> float:
        """Realised dollars per thousand impressions for one ad."""
        impressions = self.impressions_for_ad(ad_id)
        if impressions == 0:
            return 0.0
        return 1000.0 * self.spend_for_ad(ad_id) / impressions

    def invoice(self, account_id: str) -> Invoice:
        """The advertiser's billing statement.

        Spend totals are exact — platforms do bill exactly — but note the
        *reporting* layer (not billing) is where reach numbers get
        thresholded; billing reveals per-ad impression counts, which the
        privacy analysis of section 3.1 explicitly grants the provider
        ("access to the performance statistics reported by the advertising
        platform (e.g., for billing purposes)").
        """
        invoice = Invoice(account_id=account_id)
        for record in self._charges:
            if record.account_id != account_id:
                continue
            invoice.total += record.amount
            invoice.impressions += 1
            invoice.by_ad[record.ad_id] = (
                invoice.by_ad.get(record.ad_id, 0.0) + record.amount
            )
        return invoice

    def all_charges(self) -> List[ChargeRecord]:
        return list(self._charges)
