"""CPM billing: the spend ledger and advertiser invoices.

The transparency provider "must pay the ad platform whenever impressions
of Treads are shown to users" (paper section 3.1, "Cost"). The ledger
records one charge per won impression at the auction's second price; the
cost model in :mod:`repro.core.costs` reads its aggregates to reproduce
the paper's $0.002-per-attribute arithmetic.

A detail the paper leans on: attributes a user does *not* have cost
nothing — the corresponding Treads are never delivered, so no charge is
ever recorded. The ledger makes that observable ("zero per-user cost for
Treads corresponding to targeting parameters that a user does not have").

State model (PR 4): the ledger is a
:class:`~repro.store.store.StateOwner` — ``state_dump`` captures the
charge log plus the account budgets it governs, and ``apply_record``
folds a journaled charge back in (deducting budget) without re-emitting
obs signals, so replay never double-counts. Delivery-path charges are
*implied* by the impression record that lands in the same journal
(``charge_impression(journal=False)``; the delivery engine re-debits
them on replay via :meth:`BillingLedger.apply_implied_charge`); only
direct charges with no impression behind them journal their own
:class:`~repro.store.records.ChargeRecorded` (re-exported here as
``ChargeRecord``).
"""

from __future__ import annotations

import logging
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import StoreError
from repro.obs import events as obs_events
from repro.obs.metrics import registry as obs_registry
from repro.platform.ads import AdInventory
from repro.store.records import ChangeRecord, ChargeRecorded, record_from_dict, record_to_dict
from repro.store.store import MemoryStore, StateStore

_log = logging.getLogger("repro.platform.billing")

#: Budgets this close to zero are spent: float dust left by repeated
#: second-price charges must not keep an account formally solvent.
_BUDGET_EPSILON = 1e-9

#: One billed impression — the journal record *is* the ledger entry.
ChargeRecord = ChargeRecorded


@dataclass
class Invoice:
    """Per-account billing summary."""

    account_id: str
    total: float = 0.0
    impressions: int = 0
    by_ad: Dict[str, float] = field(default_factory=dict)


class BillingLedger:
    """Append-only charge log with per-ad and per-account aggregation."""

    store_name = "billing"
    handled_kinds: Tuple[str, ...] = (ChargeRecorded.kind,)

    def __init__(self, inventory: AdInventory,
                 store: Optional[StateStore] = None,
                 compact: bool = False):
        self._inventory = inventory
        self._store = store if store is not None else MemoryStore()
        self._store.attach(self)
        #: Compact (million-user) mode: keep only the aggregates below —
        #: never the per-impression charge log. Invoices and per-account
        #: spend are aggregate-built in both modes (float-identical to
        #: a scan, since both add amounts in charge order); compact only
        #: drops the log itself, so ``all_charges``/``state_dump`` — the
        #: APIs that *are* the log — raise.
        self._compact = compact
        self._charges: List[ChargeRecord] = []
        self._spend_by_ad: Dict[str, float] = defaultdict(float)
        self._impressions_by_ad: Dict[str, int] = defaultdict(int)
        self._spend_by_account: Dict[str, float] = defaultdict(float)
        self._impressions_by_account: Dict[str, int] = defaultdict(int)
        #: ad_id -> billing account, in first-charge order (rebuilds the
        #: invoice's per-ad breakdown without the charge log).
        self._account_by_ad: Dict[str, str] = {}
        reg = obs_registry()
        self._obs_on = reg.enabled
        self._obs_charged = reg.counter("billing.impressions_charged")
        self._obs_exhausted = reg.counter("billing.budget_exhausted")
        self._bus = obs_events.bus()

    @property
    def store(self) -> StateStore:
        return self._store

    def charge_impression(self, ad_id: str, account_id: str, amount: float,
                          impression_seq: int,
                          journal: bool = True) -> ChargeRecord:
        """Charge one impression to the advertiser's account budget.

        ``journal=False`` is the delivery engine's path: the
        :class:`~repro.store.records.ImpressionRecorded` it journals for
        the same event carries the identical ``(ad, account, price,
        seq)`` tuple, so the charge is *implied* by the impression
        record and replayed from it (one journal record per delivered
        impression, not two). Direct charges with no impression record
        behind them must keep the default and journal themselves.
        """
        account = self._inventory.account(account_id)
        solvent_before = account.budget > _BUDGET_EPSILON
        account.charge(amount)
        record = ChargeRecord(
            ad_id=ad_id,
            account_id=account_id,
            amount=amount,
            impression_seq=impression_seq,
        )
        # Journal only once the charge has committed: the journal is the
        # exact log of mutations that happened, so replaying it cannot
        # invent a charge a raised BudgetError prevented.
        if journal:
            self._store.append(record)
        self._fold_charge(record)
        if self._obs_on:
            self._obs_charged.inc()
        if solvent_before and account.budget <= _BUDGET_EPSILON:
            self._obs_exhausted.inc()
            _log.info("account %s budget exhausted (last charge $%.6f)",
                      account_id, amount)
            if self._bus.active:
                self._bus.emit(obs_events.BudgetExhausted(
                    account_id=account_id, last_charge=amount,
                ))
        return record

    def charge_impressions_bulk(self, ad_id: str, account_id: str,
                                amount_total: float, count: int) -> None:
        """Charge ``count`` impressions of one ad in a single debit.

        The batch sweep's O(1) billing fold, used where one debit is
        float-identical to ``count`` sequential charges: the
        all-zero-price rounds of the Treads economics, and partitioned-
        sweep merge deltas (:meth:`~repro.platform.delivery.
        DeliveryEngine.absorb_sweep_delta`). Rounds with nonzero prices
        bill per impression through :meth:`charge_impression` instead —
        budget and spend accumulate in delivery order, so float
        association matches the scalar path bit for bit. Compact mode
        only — the full-logs path bills per impression so each charge
        record exists — and never journals (the sweep's impression
        records, when kept, imply the charges exactly as on the scalar
        path).
        """
        if not self._compact:
            raise StoreError(
                "bulk impression charges require the compact ledger; "
                "the full-logs path bills per impression")
        if count <= 0:
            raise ValueError("bulk charge needs a positive count")
        account = self._inventory.account(account_id)
        solvent_before = account.budget > _BUDGET_EPSILON
        account.charge(amount_total)
        self._spend_by_ad[ad_id] += amount_total
        self._impressions_by_ad[ad_id] += count
        self._spend_by_account[account_id] += amount_total
        self._impressions_by_account[account_id] += count
        self._account_by_ad.setdefault(ad_id, account_id)
        if self._obs_on:
            self._obs_charged.inc(count)
        if solvent_before and account.budget <= _BUDGET_EPSILON:
            self._obs_exhausted.inc()
            _log.info("account %s budget exhausted (last charge $%.6f)",
                      account_id, amount_total)
            if self._bus.active:
                self._bus.emit(obs_events.BudgetExhausted(
                    account_id=account_id, last_charge=amount_total,
                ))

    # -- state owner -------------------------------------------------------

    def _fold_charge(self, record: ChargeRecord) -> None:
        """Log + aggregate one charge (shared by live path and replay)."""
        if not self._compact:
            self._charges.append(record)
        self._spend_by_ad[record.ad_id] += record.amount
        self._impressions_by_ad[record.ad_id] += 1
        self._spend_by_account[record.account_id] += record.amount
        self._impressions_by_account[record.account_id] += 1
        self._account_by_ad.setdefault(record.ad_id, record.account_id)

    def apply_record(self, record: ChangeRecord) -> None:
        """Replay one journaled charge: deduct the budget and fold the
        aggregates, with no obs emission and no re-journaling."""
        if not isinstance(record, ChargeRecorded):
            raise StoreError(
                f"billing cannot apply record kind {record.kind!r}")
        self._inventory.account(record.account_id).charge(record.amount)
        self._fold_charge(record)

    def apply_implied_charge(self, ad_id: str, account_id: str,
                             amount: float, impression_seq: int) -> None:
        """Replay the charge implied by a journaled impression.

        The delivery engine calls this from its own ``apply_record``
        when it folds an :class:`ImpressionRecorded` back in — the
        impression *is* the charge's journal entry (see
        :meth:`charge_impression`), so replay must re-debit here or the
        recovered ledger would under-bill."""
        self.apply_record(ChargeRecord(
            ad_id=ad_id,
            account_id=account_id,
            amount=amount,
            impression_seq=impression_seq,
        ))

    def _governed_accounts(self) -> List[Any]:
        """The accounts whose budgets this ledger's charges mutate: the
        shard-local clones when billing against a ShardAccountsView,
        else the full inventory."""
        local = getattr(self._inventory, "local_accounts", None)
        if local is not None:
            return list(local().values())
        return list(self._inventory.accounts())

    def state_dump(self) -> Dict[str, Any]:
        if self._compact:
            raise StoreError(
                "compact billing ledger does not retain the charge log")
        return {
            "charges": [record_to_dict(r) for r in self._charges],
            "budgets": {
                account.account_id: account.budget
                for account in self._governed_accounts()
            },
        }

    def state_load(self, state: Dict[str, Any]) -> None:
        """Replace the ledger's state with a prior dump: refold the
        charge log (aggregates only), then pin budgets to the dumped
        values — budgets are authoritative in the dump, not re-derived,
        so a restored ledger is exact even mid-exhaustion."""
        self._charges = []
        self._spend_by_ad = defaultdict(float)
        self._impressions_by_ad = defaultdict(int)
        self._spend_by_account = defaultdict(float)
        self._impressions_by_account = defaultdict(int)
        self._account_by_ad = {}
        for data in state.get("charges", []):
            record = record_from_dict(dict(data))
            if not isinstance(record, ChargeRecorded):
                raise StoreError(
                    f"billing dump holds a {record.kind!r} record")
            self._fold_charge(record)
        for account_id, budget in state.get("budgets", {}).items():
            self._inventory.account(account_id).budget = float(budget)

    # -- reads -------------------------------------------------------------

    def spend_for_ad(self, ad_id: str) -> float:
        return self._spend_by_ad.get(ad_id, 0.0)

    def impressions_for_ad(self, ad_id: str) -> int:
        return self._impressions_by_ad.get(ad_id, 0)

    def spend_for_account(self, account_id: str) -> float:
        return self._spend_by_account.get(account_id, 0.0)

    def effective_cpm(self, ad_id: str) -> float:
        """Realised dollars per thousand impressions for one ad."""
        impressions = self.impressions_for_ad(ad_id)
        if impressions == 0:
            return 0.0
        return 1000.0 * self.spend_for_ad(ad_id) / impressions

    def invoice(self, account_id: str) -> Invoice:
        """The advertiser's billing statement.

        Spend totals are exact — platforms do bill exactly — but note the
        *reporting* layer (not billing) is where reach numbers get
        thresholded; billing reveals per-ad impression counts, which the
        privacy analysis of section 3.1 explicitly grants the provider
        ("access to the performance statistics reported by the advertising
        platform (e.g., for billing purposes)").
        """
        invoice = Invoice(account_id=account_id)
        invoice.total = self._spend_by_account.get(account_id, 0.0)
        invoice.impressions = self._impressions_by_account.get(account_id, 0)
        invoice.by_ad = {
            ad_id: self._spend_by_ad[ad_id]
            for ad_id, owner in self._account_by_ad.items()
            if owner == account_id
        }
        return invoice

    def all_charges(self) -> List[ChargeRecord]:
        if self._compact:
            raise StoreError(
                "compact billing ledger does not retain the charge log")
        return list(self._charges)
