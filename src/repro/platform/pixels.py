"""Tracking pixels and the platform's pixel event log.

Advertisers obtain a *tracking pixel* from the platform and embed it on
their websites; when a platform user visits an instrumented page, the
platform records the event against that user's platform identity. The
advertiser can then target "visitors of my site" — a *website custom
audience* — without ever learning who those visitors are (paper section
3.1, footnote 3: "the identity of users who browse a site with a tracking
pixel is not revealed to advertisers").

This anonymity property is what makes the paper's anonymous opt-in work:
users visit the transparency provider's opt-in page, the platform's pixel
fires, and the provider can target the resulting audience while the users
remain anonymous to the provider. Per-attribute custom opt-in (section 3.1,
"Supporting custom attributes") simply uses one distinct pixel per
attribute page.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.errors import AudienceError
from repro.platform.web import Visit


@dataclass(frozen=True)
class TrackingPixel:
    """A pixel issued by the platform to one advertiser account."""

    pixel_id: str
    owner_account_id: str
    label: str = ""


@dataclass(frozen=True)
class PixelEvent:
    """One pixel fire, recorded platform-side with the user's identity."""

    pixel_id: str
    user_id: str
    domain: str
    path: str
    visit_seq: int


@dataclass
class PixelRegistry:
    """Platform-internal registry of pixels and their event logs."""

    _pixels: Dict[str, TrackingPixel] = field(default_factory=dict)
    _events: Dict[str, List[PixelEvent]] = field(default_factory=dict)
    _mutation_seq: int = 0

    @property
    def mutation_seq(self) -> int:
        """Bumped whenever an event lands; pixel-audience reach caches
        key on it (together with the user store's epoch)."""
        return self._mutation_seq

    def issue(self, pixel_id: str, owner_account_id: str,
              label: str = "") -> TrackingPixel:
        """Issue a new pixel to an advertiser account."""
        if pixel_id in self._pixels:
            raise AudienceError(f"pixel id {pixel_id!r} already issued")
        pixel = TrackingPixel(pixel_id=pixel_id,
                              owner_account_id=owner_account_id, label=label)
        self._pixels[pixel_id] = pixel
        self._events[pixel_id] = []
        return pixel

    def get(self, pixel_id: str) -> TrackingPixel:
        try:
            return self._pixels[pixel_id]
        except KeyError:
            raise AudienceError(f"unknown pixel id {pixel_id!r}") from None

    def record_visit(self, visit: Visit) -> List[PixelEvent]:
        """Fire every pixel embedded on a visited page.

        Called by the platform facade for each visit; unknown pixel ids on
        the page (e.g. another platform's pixel) are ignored — each
        platform records only its own pixels' events.
        """
        fired: List[PixelEvent] = []
        for pixel_id in visit.pixel_ids:
            if pixel_id not in self._pixels:
                continue
            event = PixelEvent(
                pixel_id=pixel_id,
                user_id=visit.user_id,
                domain=visit.domain,
                path=visit.path,
                visit_seq=visit.visit_seq,
            )
            self._events[pixel_id].append(event)
            fired.append(event)
        if fired:
            self._mutation_seq += 1
        return fired

    def events(self, pixel_id: str) -> List[PixelEvent]:
        """Platform-internal: the raw event log for a pixel.

        Never exposed to advertisers; audience materialization uses
        :meth:`visitors` and reporting applies privacy thresholds.
        """
        self.get(pixel_id)
        return list(self._events[pixel_id])

    def visitors(self, pixel_id: str) -> Set[str]:
        """Distinct platform user ids that fired a pixel (internal)."""
        return {event.user_id for event in self.events(pixel_id)}

    def pixels_owned_by(self, account_id: str) -> List[TrackingPixel]:
        return [p for p in self._pixels.values()
                if p.owner_account_id == account_id]
