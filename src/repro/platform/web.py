"""Websites, browsers, cookies, and visits.

This is the off-platform web the simulation needs: the transparency
provider hosts an opt-in website carrying the platform's tracking pixel
(paper section 3.1, "User opt-in"), and Tread landing pages live on
provider-owned sites. Browsers carry per-site first-party cookies — the
channel through which a provider *could* associate targeting information
with a user who clicks through to a landing page (paper "Privacy
analysis"), and which users defeat by clearing or disabling cookies.

Identity resolution is deliberately asymmetric, mirroring reality:

* the *site owner's* first-party log sees only the browser's site-local
  cookie id (or nothing when cookies are disabled);
* the *platform's* pixel (see :mod:`repro.platform.pixels`) recognises its
  own logged-in user, but that identity stays inside the platform.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class Page:
    """One page of a website.

    ``pixel_ids`` lists tracking pixels embedded on the page (possibly
    from several platforms — the multi-platform opt-in page of section
    3.1). ``content`` is the page body; Tread landing pages put the
    revealed targeting information here.
    """

    path: str
    content: str = ""
    pixel_ids: List[str] = field(default_factory=list)


@dataclass(frozen=True)
class FirstPartyLogEntry:
    """What a site owner's own web log records for one visit."""

    path: str
    cookie_id: Optional[str]
    visit_seq: int


@dataclass
class Website:
    """A website owned by some entity (e.g. the transparency provider)."""

    domain: str
    owner: str
    pages: Dict[str, Page] = field(default_factory=dict)
    access_log: List[FirstPartyLogEntry] = field(default_factory=list)

    def add_page(self, path: str, content: str = "",
                 pixel_ids: Optional[List[str]] = None) -> Page:
        """Create (or replace) a page at ``path``."""
        page = Page(path=path, content=content,
                    pixel_ids=list(pixel_ids or []))
        self.pages[path] = page
        return page

    def get_page(self, path: str) -> Page:
        try:
            return self.pages[path]
        except KeyError:
            raise KeyError(f"{self.domain} has no page {path!r}") from None


class Browser:
    """One user's browser: cookie jar plus visit mechanics.

    The browser belongs to a platform user (``user_id``) but websites never
    learn that id; they see only their own first-party cookie. Cookies can
    be cleared or disabled entirely — the mitigations the paper recommends
    before receiving Treads with external landing pages.
    """

    _cookie_counter = itertools.count()
    _visit_counter = itertools.count()

    def __init__(self, user_id: str, cookies_enabled: bool = True):
        self.user_id = user_id
        self.cookies_enabled = cookies_enabled
        self._cookies: Dict[str, str] = {}

    def cookie_for(self, domain: str) -> Optional[str]:
        """The first-party cookie this browser presents to ``domain``.

        A fresh cookie is minted on first contact; None when cookies are
        disabled.
        """
        if not self.cookies_enabled:
            return None
        if domain not in self._cookies:
            self._cookies[domain] = f"ck-{next(Browser._cookie_counter):08d}"
        return self._cookies[domain]

    def clear_cookies(self) -> None:
        """Drop all cookies; subsequent visits look like a new visitor."""
        self._cookies.clear()

    def disable_cookies(self) -> None:
        """Stop presenting cookies entirely."""
        self.cookies_enabled = False
        self._cookies.clear()

    def enable_cookies(self) -> None:
        self.cookies_enabled = True

    def visit(self, website: Website, path: str = "/") -> "Visit":
        """Visit a page: log in the site's first-party log, return the
        visit so the caller (the platform facade) can fire pixels."""
        page = website.get_page(path)
        cookie_id = self.cookie_for(website.domain)
        seq = next(Browser._visit_counter)
        website.access_log.append(
            FirstPartyLogEntry(path=path, cookie_id=cookie_id, visit_seq=seq)
        )
        return Visit(
            user_id=self.user_id,
            domain=website.domain,
            path=path,
            cookie_id=cookie_id,
            pixel_ids=list(page.pixel_ids),
            visit_seq=seq,
        )


@dataclass(frozen=True)
class Visit:
    """One page visit, as seen end-to-end.

    ``user_id`` is carried here for the *platform pixel's* benefit only
    (platforms recognise their logged-in users); first-party site logs
    never receive it.
    """

    user_id: str
    domain: str
    path: str
    cookie_id: Optional[str]
    pixel_ids: List[str]
    visit_seq: int


class WebDirectory:
    """DNS-of-sorts: resolves domains to :class:`Website` objects.

    The off-platform web is shared infrastructure — the provider's opt-in
    site, Tread landing pages, and ordinary sites all live here so that a
    click on an ad's landing URL can actually be followed.
    """

    def __init__(self) -> None:
        self._sites: Dict[str, Website] = {}

    def register(self, website: Website) -> Website:
        if website.domain in self._sites:
            raise KeyError(f"domain {website.domain!r} already registered")
        self._sites[website.domain] = website
        return website

    def create_site(self, domain: str, owner: str) -> Website:
        return self.register(Website(domain=domain, owner=owner))

    def resolve(self, domain: str) -> Website:
        try:
            return self._sites[domain]
        except KeyError:
            raise KeyError(f"no website at domain {domain!r}") from None

    def __contains__(self, domain: str) -> bool:
        return domain in self._sites
