"""Targeting specifications: AST, compact syntax parser, and evaluator.

Platforms let advertisers "construct Boolean expressions for targeting"
(paper section 2.1) — e.g. *Millennials who live in Chicago, are interested
in musicals, are currently unemployed, and are not in a relationship*. A
:class:`TargetingSpec` wraps an expression tree over these predicates:

======================  =====================================================
predicate               meaning
======================  =====================================================
``attr:ID``             user has binary attribute ID set (or multi assigned)
``value:ID=V``          user's multi attribute ID is assigned value V
``age:MIN-MAX``         user age in the inclusive range
``gender:G``            user gender equals G
``country:CC``          user country equals CC
``zip:Z1/Z2/...``       user ZIP is one of the listed codes
``audience:AID``        user belongs to custom audience AID
``page:PID``            user liked page PID
``all``                 matches every user
======================  =====================================================

combined with ``&`` (AND), ``|`` (OR), ``!`` (NOT) and parentheses; ``&``
binds tighter than ``|``. :func:`parse` and ``Expr.to_string`` round-trip.

The delivery-iff-match contract evaluated here is the entire foundation of
Treads (paper section 1): "a user is supposed to see a targeted ad if and
only if they satisfy the advertiser's targeting parameters".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.errors import TargetingError, TargetingSyntaxError
from repro.platform.attributes import AttributeCatalog, AttributeKind
from repro.platform.users import UserProfile

#: Resolves custom-audience membership: (audience_id, user_id) -> bool.
AudienceResolver = Callable[[str, str], bool]


def _no_audiences(audience_id: str, user_id: str) -> bool:
    raise TargetingError(
        f"spec references audience {audience_id!r} but no resolver was given"
    )


class Expr:
    """Base class for targeting expression nodes."""

    def matches(self, user: UserProfile,
                resolver: AudienceResolver = _no_audiences) -> bool:
        raise NotImplementedError

    def to_string(self) -> str:
        raise NotImplementedError

    def children(self) -> Tuple["Expr", ...]:
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal of the expression tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def __and__(self, other: "Expr") -> "Expr":
        return And((self, other))

    def __or__(self, other: "Expr") -> "Expr":
        return Or((self, other))

    def __invert__(self) -> "Expr":
        return Not(self)


@dataclass(frozen=True)
class All(Expr):
    """Matches every user — the paper's control ad targets the opted-in
    audience "without specifying any additional targeting parameters"."""

    def matches(self, user: UserProfile,
                resolver: AudienceResolver = _no_audiences) -> bool:
        return True

    def to_string(self) -> str:
        return "all"


@dataclass(frozen=True)
class HasAttr(Expr):
    """User has the attribute set (binary) or assigned (multi)."""

    attr_id: str

    def matches(self, user: UserProfile,
                resolver: AudienceResolver = _no_audiences) -> bool:
        return user.has_attribute(self.attr_id)

    def to_string(self) -> str:
        return f"attr:{self.attr_id}"


@dataclass(frozen=True)
class AttrIs(Expr):
    """User's multi-valued attribute is assigned a specific value."""

    attr_id: str
    value: str

    def matches(self, user: UserProfile,
                resolver: AudienceResolver = _no_audiences) -> bool:
        return user.attribute_value(self.attr_id) == self.value

    def to_string(self) -> str:
        return f"value:{self.attr_id}={self.value}"


@dataclass(frozen=True)
class AgeBetween(Expr):
    """User age within an inclusive range (platforms clamp to 13..65+)."""

    min_age: int
    max_age: int

    def __post_init__(self) -> None:
        if self.min_age > self.max_age:
            raise TargetingError(
                f"age range {self.min_age}-{self.max_age} is inverted"
            )

    def matches(self, user: UserProfile,
                resolver: AudienceResolver = _no_audiences) -> bool:
        return self.min_age <= user.age <= self.max_age

    def to_string(self) -> str:
        return f"age:{self.min_age}-{self.max_age}"


@dataclass(frozen=True)
class GenderIs(Expr):
    gender: str

    def matches(self, user: UserProfile,
                resolver: AudienceResolver = _no_audiences) -> bool:
        return user.gender == self.gender

    def to_string(self) -> str:
        return f"gender:{self.gender}"


@dataclass(frozen=True)
class InCountry(Expr):
    country: str

    def matches(self, user: UserProfile,
                resolver: AudienceResolver = _no_audiences) -> bool:
        return user.country == self.country

    def to_string(self) -> str:
        return f"country:{self.country}"


@dataclass(frozen=True)
class InZip(Expr):
    """User's ZIP code is one of the listed codes (location targeting)."""

    zips: FrozenSet[str]

    def matches(self, user: UserProfile,
                resolver: AudienceResolver = _no_audiences) -> bool:
        return user.zip_code in self.zips

    def to_string(self) -> str:
        return "zip:" + "/".join(sorted(self.zips))


@dataclass(frozen=True)
class InAudience(Expr):
    """User belongs to a custom audience (PII-based, pixel-based, ...)."""

    audience_id: str

    def matches(self, user: UserProfile,
                resolver: AudienceResolver = _no_audiences) -> bool:
        return resolver(self.audience_id, user.user_id)

    def to_string(self) -> str:
        return f"audience:{self.audience_id}"


@dataclass(frozen=True)
class LikesPage(Expr):
    """User liked a platform page — the validation's opt-in signal."""

    page_id: str

    def matches(self, user: UserProfile,
                resolver: AudienceResolver = _no_audiences) -> bool:
        return self.page_id in user.liked_pages

    def to_string(self) -> str:
        return f"page:{self.page_id}"


@dataclass(frozen=True)
class Not(Expr):
    """Exclusion — the paper's false-or-missing Treads hinge on this:
    excluding users with an attribute reveals to recipients that the
    attribute is "either set to false, or is missing" (section 3.1)."""

    child: Expr

    def matches(self, user: UserProfile,
                resolver: AudienceResolver = _no_audiences) -> bool:
        return not self.child.matches(user, resolver)

    def to_string(self) -> str:
        return f"!({self.child.to_string()})"

    def children(self) -> Tuple[Expr, ...]:
        return (self.child,)


@dataclass(frozen=True)
class And(Expr):
    operands: Tuple[Expr, ...]

    def __post_init__(self) -> None:
        if len(self.operands) < 2:
            raise TargetingError("AND needs at least two operands")

    def matches(self, user: UserProfile,
                resolver: AudienceResolver = _no_audiences) -> bool:
        return all(op.matches(user, resolver) for op in self.operands)

    def to_string(self) -> str:
        return "(" + " & ".join(op.to_string() for op in self.operands) + ")"

    def children(self) -> Tuple[Expr, ...]:
        return self.operands


@dataclass(frozen=True)
class Or(Expr):
    operands: Tuple[Expr, ...]

    def __post_init__(self) -> None:
        if len(self.operands) < 2:
            raise TargetingError("OR needs at least two operands")

    def matches(self, user: UserProfile,
                resolver: AudienceResolver = _no_audiences) -> bool:
        return any(op.matches(user, resolver) for op in self.operands)

    def to_string(self) -> str:
        return "(" + " | ".join(op.to_string() for op in self.operands) + ")"

    def children(self) -> Tuple[Expr, ...]:
        return self.operands


@dataclass(frozen=True)
class TargetingSpec:
    """An ad's complete targeting specification.

    Wraps the expression tree and offers the introspection the platform
    needs: referenced attributes (for explanations and review) and
    referenced audiences (for ownership checks).
    """

    expr: Expr

    def matches(self, user: UserProfile,
                resolver: AudienceResolver = _no_audiences) -> bool:
        return self.expr.matches(user, resolver)

    def to_string(self) -> str:
        return self.expr.to_string()

    def referenced_attributes(self) -> List[str]:
        """Attribute ids mentioned anywhere in the spec, in tree order."""
        seen: Set[str] = set()
        ordered: List[str] = []
        for node in self.expr.walk():
            attr_id: Optional[str] = None
            if isinstance(node, HasAttr):
                attr_id = node.attr_id
            elif isinstance(node, AttrIs):
                attr_id = node.attr_id
            if attr_id is not None and attr_id not in seen:
                seen.add(attr_id)
                ordered.append(attr_id)
        return ordered

    def positively_targeted_attributes(self) -> List[str]:
        """Attribute ids required (not under a NOT) by the spec.

        Used by the platform's explanation generator, which only ever
        mentions inclusion criteria.
        """
        ordered: List[str] = []

        def visit(node: Expr, negated: bool) -> None:
            if isinstance(node, Not):
                visit(node.child, not negated)
                return
            if isinstance(node, (HasAttr, AttrIs)) and not negated:
                if node.attr_id not in ordered:
                    ordered.append(node.attr_id)
            for child in node.children():
                visit(child, negated)

        visit(self.expr, False)
        return ordered

    def referenced_audiences(self) -> List[str]:
        seen: Set[str] = set()
        ordered: List[str] = []
        for node in self.expr.walk():
            if isinstance(node, InAudience) and node.audience_id not in seen:
                seen.add(node.audience_id)
                ordered.append(node.audience_id)
        return ordered

    def validate(self, catalog: AttributeCatalog) -> None:
        """Check every attribute reference against the catalog.

        Raises :class:`TargetingError` for unknown attributes, for
        ``value:`` predicates on binary attributes, and for values outside
        a multi attribute's enumerated set. The platform runs this at ad
        submission; it is also how the "partner categories shut down"
        scenario bites — specs referencing removed attributes fail.
        """
        for node in self.expr.walk():
            if isinstance(node, HasAttr):
                catalog.get(node.attr_id)
            elif isinstance(node, AttrIs):
                attribute = catalog.get(node.attr_id)
                if attribute.kind is not AttributeKind.MULTI:
                    raise TargetingError(
                        f"value targeting needs a multi attribute, "
                        f"{node.attr_id!r} is binary"
                    )
                attribute.value_index(node.value)


# ---------------------------------------------------------------------------
# Parser for the compact syntax.
# ---------------------------------------------------------------------------

_ATOM_CHARS = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
    "0123456789:-_=./$+' "
)


class _Tokenizer:
    """Splits a spec string into '(', ')', '&', '|', '!' and atom tokens."""

    def __init__(self, text: str):
        self._text = text
        self._pos = 0

    def tokens(self) -> List[str]:
        out: List[str] = []
        while self._pos < len(self._text):
            ch = self._text[self._pos]
            if ch.isspace():
                self._pos += 1
            elif ch in "()&|!":
                out.append(ch)
                self._pos += 1
            elif ch in _ATOM_CHARS:
                out.append(self._read_atom())
            else:
                raise TargetingSyntaxError(
                    f"unexpected character {ch!r} at position {self._pos}"
                )
        return out

    def _read_atom(self) -> str:
        start = self._pos
        while (self._pos < len(self._text)
               and self._text[self._pos] in _ATOM_CHARS
               and self._text[self._pos] not in "()&|!"):
            self._pos += 1
        return self._text[start:self._pos].strip()


class _Parser:
    """Recursive-descent parser: or_expr > and_expr > unary > atom."""

    def __init__(self, tokens: List[str]):
        self._tokens = tokens
        self._pos = 0

    def parse(self) -> Expr:
        expr = self._or_expr()
        if self._pos != len(self._tokens):
            raise TargetingSyntaxError(
                f"trailing tokens: {self._tokens[self._pos:]}"
            )
        return expr

    def _peek(self) -> Optional[str]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _take(self) -> str:
        token = self._peek()
        if token is None:
            raise TargetingSyntaxError("unexpected end of spec")
        self._pos += 1
        return token

    def _or_expr(self) -> Expr:
        operands = [self._and_expr()]
        while self._peek() == "|":
            self._take()
            operands.append(self._and_expr())
        if len(operands) == 1:
            return operands[0]
        return Or(tuple(operands))

    def _and_expr(self) -> Expr:
        operands = [self._unary()]
        while self._peek() == "&":
            self._take()
            operands.append(self._unary())
        if len(operands) == 1:
            return operands[0]
        return And(tuple(operands))

    def _unary(self) -> Expr:
        if self._peek() == "!":
            self._take()
            return Not(self._unary())
        if self._peek() == "(":
            self._take()
            inner = self._or_expr()
            if self._take() != ")":
                raise TargetingSyntaxError("expected ')'")
            return inner
        return self._atom(self._take())

    def _atom(self, token: str) -> Expr:
        if token == "all":
            return All()
        if ":" not in token:
            raise TargetingSyntaxError(f"malformed predicate {token!r}")
        head, _, rest = token.partition(":")
        if head == "attr":
            return HasAttr(rest)
        if head == "value":
            attr_id, sep, value = rest.partition("=")
            if not sep or not value:
                raise TargetingSyntaxError(
                    f"value predicate needs attr=value, got {token!r}"
                )
            return AttrIs(attr_id, value)
        if head == "age":
            low, sep, high = rest.partition("-")
            if not sep:
                raise TargetingSyntaxError(f"age range needs MIN-MAX: {token!r}")
            try:
                return AgeBetween(int(low), int(high))
            except ValueError:
                raise TargetingSyntaxError(
                    f"non-numeric age bound in {token!r}"
                ) from None
            except TargetingError as error:
                # e.g. inverted range: a *syntax-level* mistake when it
                # arrives as text
                raise TargetingSyntaxError(str(error)) from None
        if head == "gender":
            return GenderIs(rest)
        if head == "country":
            return InCountry(rest)
        if head == "zip":
            codes = frozenset(z for z in rest.split("/") if z)
            if not codes:
                raise TargetingSyntaxError("zip predicate needs codes")
            return InZip(codes)
        if head == "audience":
            return InAudience(rest)
        if head == "page":
            return LikesPage(rest)
        raise TargetingSyntaxError(f"unknown predicate kind {head!r}")


def parse(text: str) -> TargetingSpec:
    """Parse the compact spec syntax into a :class:`TargetingSpec`.

    >>> parse("attr:pc-networth-006 & audience:aud-0").to_string()
    '(attr:pc-networth-006 & audience:aud-0)'
    """
    if not text or not text.strip():
        raise TargetingSyntaxError("empty targeting spec")
    tokens = _Tokenizer(text).tokens()
    return TargetingSpec(expr=_Parser(tokens).parse())
