"""Targeting specifications: AST, compact syntax parser, and evaluator.

Platforms let advertisers "construct Boolean expressions for targeting"
(paper section 2.1) — e.g. *Millennials who live in Chicago, are interested
in musicals, are currently unemployed, and are not in a relationship*. A
:class:`TargetingSpec` wraps an expression tree over these predicates:

======================  =====================================================
predicate               meaning
======================  =====================================================
``attr:ID``             user has binary attribute ID set (or multi assigned)
``value:ID=V``          user's multi attribute ID is assigned value V
``age:MIN-MAX``         user age in the inclusive range
``gender:G``            user gender equals G
``country:CC``          user country equals CC
``zip:Z1/Z2/...``       user ZIP is one of the listed codes
``audience:AID``        user belongs to custom audience AID
``page:PID``            user liked page PID
``all``                 matches every user
======================  =====================================================

combined with ``&`` (AND), ``|`` (OR), ``!`` (NOT) and parentheses; ``&``
binds tighter than ``|``. :func:`parse` and ``Expr.to_string`` round-trip.

The delivery-iff-match contract evaluated here is the entire foundation of
Treads (paper section 1): "a user is supposed to see a targeted ad if and
only if they satisfy the advertiser's targeting parameters".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.errors import TargetingError, TargetingSyntaxError
from repro.obs.metrics import bind as _obs_bind
from repro.platform import bitset
from repro.platform.attributes import AttributeCatalog, AttributeKind
from repro.platform.users import UserProfile

#: Resolves custom-audience membership: (audience_id, user_id) -> bool.
AudienceResolver = Callable[[str, str], bool]


def _no_audiences(audience_id: str, user_id: str) -> bool:
    raise TargetingError(
        f"spec references audience {audience_id!r} but no resolver was given"
    )


class Expr:
    """Base class for targeting expression nodes."""

    def matches(self, user: UserProfile,
                resolver: AudienceResolver = _no_audiences) -> bool:
        raise NotImplementedError

    def to_string(self) -> str:
        raise NotImplementedError

    def children(self) -> Tuple["Expr", ...]:
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal of the expression tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def __and__(self, other: "Expr") -> "Expr":
        return And((self, other))

    def __or__(self, other: "Expr") -> "Expr":
        return Or((self, other))

    def __invert__(self) -> "Expr":
        return Not(self)


@dataclass(frozen=True)
class All(Expr):
    """Matches every user — the paper's control ad targets the opted-in
    audience "without specifying any additional targeting parameters"."""

    def matches(self, user: UserProfile,
                resolver: AudienceResolver = _no_audiences) -> bool:
        return True

    def to_string(self) -> str:
        return "all"


@dataclass(frozen=True)
class HasAttr(Expr):
    """User has the attribute set (binary) or assigned (multi)."""

    attr_id: str

    def matches(self, user: UserProfile,
                resolver: AudienceResolver = _no_audiences) -> bool:
        return user.has_attribute(self.attr_id)

    def to_string(self) -> str:
        return f"attr:{self.attr_id}"


@dataclass(frozen=True)
class AttrIs(Expr):
    """User's multi-valued attribute is assigned a specific value."""

    attr_id: str
    value: str

    def matches(self, user: UserProfile,
                resolver: AudienceResolver = _no_audiences) -> bool:
        return user.attribute_value(self.attr_id) == self.value

    def to_string(self) -> str:
        return f"value:{self.attr_id}={self.value}"


@dataclass(frozen=True)
class AgeBetween(Expr):
    """User age within an inclusive range (platforms clamp to 13..65+)."""

    min_age: int
    max_age: int

    def __post_init__(self) -> None:
        if self.min_age > self.max_age:
            raise TargetingError(
                f"age range {self.min_age}-{self.max_age} is inverted"
            )

    def matches(self, user: UserProfile,
                resolver: AudienceResolver = _no_audiences) -> bool:
        return self.min_age <= user.age <= self.max_age

    def to_string(self) -> str:
        return f"age:{self.min_age}-{self.max_age}"


@dataclass(frozen=True)
class GenderIs(Expr):
    gender: str

    def matches(self, user: UserProfile,
                resolver: AudienceResolver = _no_audiences) -> bool:
        return user.gender == self.gender

    def to_string(self) -> str:
        return f"gender:{self.gender}"


@dataclass(frozen=True)
class InCountry(Expr):
    country: str

    def matches(self, user: UserProfile,
                resolver: AudienceResolver = _no_audiences) -> bool:
        return user.country == self.country

    def to_string(self) -> str:
        return f"country:{self.country}"


@dataclass(frozen=True)
class InZip(Expr):
    """User's ZIP code is one of the listed codes (location targeting)."""

    zips: FrozenSet[str]

    def matches(self, user: UserProfile,
                resolver: AudienceResolver = _no_audiences) -> bool:
        return user.zip_code in self.zips

    def to_string(self) -> str:
        return "zip:" + "/".join(sorted(self.zips))


@dataclass(frozen=True)
class InAudience(Expr):
    """User belongs to a custom audience (PII-based, pixel-based, ...)."""

    audience_id: str

    def matches(self, user: UserProfile,
                resolver: AudienceResolver = _no_audiences) -> bool:
        return resolver(self.audience_id, user.user_id)

    def to_string(self) -> str:
        return f"audience:{self.audience_id}"


@dataclass(frozen=True)
class LikesPage(Expr):
    """User liked a platform page — the validation's opt-in signal."""

    page_id: str

    def matches(self, user: UserProfile,
                resolver: AudienceResolver = _no_audiences) -> bool:
        return self.page_id in user.liked_pages

    def to_string(self) -> str:
        return f"page:{self.page_id}"


@dataclass(frozen=True)
class Not(Expr):
    """Exclusion — the paper's false-or-missing Treads hinge on this:
    excluding users with an attribute reveals to recipients that the
    attribute is "either set to false, or is missing" (section 3.1)."""

    child: Expr

    def matches(self, user: UserProfile,
                resolver: AudienceResolver = _no_audiences) -> bool:
        return not self.child.matches(user, resolver)

    def to_string(self) -> str:
        return f"!({self.child.to_string()})"

    def children(self) -> Tuple[Expr, ...]:
        return (self.child,)


@dataclass(frozen=True)
class And(Expr):
    operands: Tuple[Expr, ...]

    def __post_init__(self) -> None:
        if len(self.operands) < 2:
            raise TargetingError("AND needs at least two operands")

    def matches(self, user: UserProfile,
                resolver: AudienceResolver = _no_audiences) -> bool:
        return all(op.matches(user, resolver) for op in self.operands)

    def to_string(self) -> str:
        return "(" + " & ".join(op.to_string() for op in self.operands) + ")"

    def children(self) -> Tuple[Expr, ...]:
        return self.operands


@dataclass(frozen=True)
class Or(Expr):
    operands: Tuple[Expr, ...]

    def __post_init__(self) -> None:
        if len(self.operands) < 2:
            raise TargetingError("OR needs at least two operands")

    def matches(self, user: UserProfile,
                resolver: AudienceResolver = _no_audiences) -> bool:
        return any(op.matches(user, resolver) for op in self.operands)

    def to_string(self) -> str:
        return "(" + " | ".join(op.to_string() for op in self.operands) + ")"

    def children(self) -> Tuple[Expr, ...]:
        return self.operands


@dataclass(frozen=True)
class TargetingSpec:
    """An ad's complete targeting specification.

    Wraps the expression tree and offers the introspection the platform
    needs: referenced attributes (for explanations and review) and
    referenced audiences (for ownership checks).
    """

    expr: Expr

    def matches(self, user: UserProfile,
                resolver: AudienceResolver = _no_audiences) -> bool:
        return self.expr.matches(user, resolver)

    def compiled(self) -> "CompiledSpec":
        """The (cached) compiled form of this spec — see
        :func:`compile_spec`. Hot paths evaluate this instead of
        re-interpreting the tree."""
        return compile_spec(self)

    def to_string(self) -> str:
        return self.expr.to_string()

    def referenced_attributes(self) -> List[str]:
        """Attribute ids mentioned anywhere in the spec, in tree order."""
        seen: Set[str] = set()
        ordered: List[str] = []
        for node in self.expr.walk():
            attr_id: Optional[str] = None
            if isinstance(node, HasAttr):
                attr_id = node.attr_id
            elif isinstance(node, AttrIs):
                attr_id = node.attr_id
            if attr_id is not None and attr_id not in seen:
                seen.add(attr_id)
                ordered.append(attr_id)
        return ordered

    def positively_targeted_attributes(self) -> List[str]:
        """Attribute ids required (not under a NOT) by the spec.

        Used by the platform's explanation generator, which only ever
        mentions inclusion criteria.
        """
        ordered: List[str] = []

        def visit(node: Expr, negated: bool) -> None:
            if isinstance(node, Not):
                visit(node.child, not negated)
                return
            if isinstance(node, (HasAttr, AttrIs)) and not negated:
                if node.attr_id not in ordered:
                    ordered.append(node.attr_id)
            for child in node.children():
                visit(child, negated)

        visit(self.expr, False)
        return ordered

    def referenced_audiences(self) -> List[str]:
        seen: Set[str] = set()
        ordered: List[str] = []
        for node in self.expr.walk():
            if isinstance(node, InAudience) and node.audience_id not in seen:
                seen.add(node.audience_id)
                ordered.append(node.audience_id)
        return ordered

    def validate(self, catalog: AttributeCatalog) -> None:
        """Check every attribute reference against the catalog.

        Raises :class:`TargetingError` for unknown attributes, for
        ``value:`` predicates on binary attributes, and for values outside
        a multi attribute's enumerated set. The platform runs this at ad
        submission; it is also how the "partner categories shut down"
        scenario bites — specs referencing removed attributes fail.
        """
        for node in self.expr.walk():
            if isinstance(node, HasAttr):
                catalog.get(node.attr_id)
            elif isinstance(node, AttrIs):
                attribute = catalog.get(node.attr_id)
                if attribute.kind is not AttributeKind.MULTI:
                    raise TargetingError(
                        f"value targeting needs a multi attribute, "
                        f"{node.attr_id!r} is binary"
                    )
                attribute.value_index(node.value)


# ---------------------------------------------------------------------------
# Parser for the compact syntax.
# ---------------------------------------------------------------------------

_ATOM_CHARS = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
    "0123456789:-_=./$+' "
)


class _Tokenizer:
    """Splits a spec string into '(', ')', '&', '|', '!' and atom tokens."""

    def __init__(self, text: str):
        self._text = text
        self._pos = 0

    def tokens(self) -> List[str]:
        out: List[str] = []
        while self._pos < len(self._text):
            ch = self._text[self._pos]
            if ch.isspace():
                self._pos += 1
            elif ch in "()&|!":
                out.append(ch)
                self._pos += 1
            elif ch in _ATOM_CHARS:
                out.append(self._read_atom())
            else:
                raise TargetingSyntaxError(
                    f"unexpected character {ch!r} at position {self._pos}"
                )
        return out

    def _read_atom(self) -> str:
        start = self._pos
        while (self._pos < len(self._text)
               and self._text[self._pos] in _ATOM_CHARS
               and self._text[self._pos] not in "()&|!"):
            self._pos += 1
        return self._text[start:self._pos].strip()


class _Parser:
    """Recursive-descent parser: or_expr > and_expr > unary > atom."""

    def __init__(self, tokens: List[str]):
        self._tokens = tokens
        self._pos = 0

    def parse(self) -> Expr:
        expr = self._or_expr()
        if self._pos != len(self._tokens):
            raise TargetingSyntaxError(
                f"trailing tokens: {self._tokens[self._pos:]}"
            )
        return expr

    def _peek(self) -> Optional[str]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _take(self) -> str:
        token = self._peek()
        if token is None:
            raise TargetingSyntaxError("unexpected end of spec")
        self._pos += 1
        return token

    def _or_expr(self) -> Expr:
        operands = [self._and_expr()]
        while self._peek() == "|":
            self._take()
            operands.append(self._and_expr())
        if len(operands) == 1:
            return operands[0]
        return Or(tuple(operands))

    def _and_expr(self) -> Expr:
        operands = [self._unary()]
        while self._peek() == "&":
            self._take()
            operands.append(self._unary())
        if len(operands) == 1:
            return operands[0]
        return And(tuple(operands))

    def _unary(self) -> Expr:
        if self._peek() == "!":
            self._take()
            return Not(self._unary())
        if self._peek() == "(":
            self._take()
            inner = self._or_expr()
            if self._take() != ")":
                raise TargetingSyntaxError("expected ')'")
            return inner
        return self._atom(self._take())

    def _atom(self, token: str) -> Expr:
        if token == "all":
            return All()
        if ":" not in token:
            raise TargetingSyntaxError(f"malformed predicate {token!r}")
        head, _, rest = token.partition(":")
        if head == "attr":
            return HasAttr(rest)
        if head == "value":
            attr_id, sep, value = rest.partition("=")
            if not sep or not value:
                raise TargetingSyntaxError(
                    f"value predicate needs attr=value, got {token!r}"
                )
            return AttrIs(attr_id, value)
        if head == "age":
            low, sep, high = rest.partition("-")
            if not sep:
                raise TargetingSyntaxError(f"age range needs MIN-MAX: {token!r}")
            try:
                return AgeBetween(int(low), int(high))
            except ValueError:
                raise TargetingSyntaxError(
                    f"non-numeric age bound in {token!r}"
                ) from None
            except TargetingError as error:
                # e.g. inverted range: a *syntax-level* mistake when it
                # arrives as text
                raise TargetingSyntaxError(str(error)) from None
        if head == "gender":
            return GenderIs(rest)
        if head == "country":
            return InCountry(rest)
        if head == "zip":
            codes = frozenset(z for z in rest.split("/") if z)
            if not codes:
                raise TargetingSyntaxError("zip predicate needs codes")
            return InZip(codes)
        if head == "audience":
            return InAudience(rest)
        if head == "page":
            return LikesPage(rest)
        raise TargetingSyntaxError(f"unknown predicate kind {head!r}")


def parse(text: str) -> TargetingSpec:
    """Parse the compact spec syntax into a :class:`TargetingSpec`.

    >>> parse("attr:pc-networth-006 & audience:aud-0").to_string()
    '(attr:pc-networth-006 & audience:aud-0)'
    """
    if not text or not text.strip():
        raise TargetingSyntaxError("empty targeting spec")
    tokens = _Tokenizer(text).tokens()
    return TargetingSpec(expr=_Parser(tokens).parse())


# ---------------------------------------------------------------------------
# Compiler: Expr tree -> flat matcher function.
# ---------------------------------------------------------------------------
#
# The delivery hot path evaluates every candidate ad's spec against every
# user in every slot. Interpreting the Expr tree there costs one Python
# method call (plus ``all``/``any`` generator machinery) per node per
# evaluation. :func:`compile_spec` lowers the tree once into a single flat
# Python function — one call per evaluation, with every predicate inlined
# as native attribute/set operations — and extracts the static structure
# (required attributes / pages / audiences) that the delivery engine's
# inverted candidate index is built from.


@dataclass(frozen=True)
class CompiledSpec:
    """A targeting spec lowered to a flat matcher.

    ``fn(user, resolver)`` is behaviourally identical to
    ``expr.matches(user, resolver)`` — the deliver-iff-match contract is
    preserved bit-for-bit, and ``tests/platform/test_targeting_compile.py``
    enforces the equivalence property on randomized specs and profiles.

    ``required_attributes`` / ``required_pages`` / ``required_audiences``
    are *necessary conditions*: a user can only match if they carry every
    listed attribute, like every listed page, and belong to every listed
    audience. (Predicates under a NOT or in only some OR branches
    contribute nothing.) The delivery engine anchors its inverted
    candidate index on these.
    """

    source: str
    fn: Callable[[UserProfile, AudienceResolver], bool]
    required_attributes: FrozenSet[str]
    required_pages: FrozenSet[str]
    required_audiences: FrozenSet[str]

    def matches(self, user: UserProfile,
                resolver: AudienceResolver = _no_audiences) -> bool:
        return self.fn(user, resolver)


def _fragment(expr: Expr, env: dict, counter: List[int]) -> str:
    """Python source fragment evaluating ``expr`` over locals ``u``/``r``.

    String/int literals are inlined via ``repr``; container constants
    (zip code sets) go into ``env`` so they are built once at compile
    time, not per evaluation.
    """
    if isinstance(expr, All):
        return "True"
    if isinstance(expr, HasAttr):
        a = repr(expr.attr_id)
        return f"({a} in u.binary_attrs or {a} in u.multi_attrs)"
    if isinstance(expr, AttrIs):
        return f"(u.multi_attrs.get({expr.attr_id!r}) == {expr.value!r})"
    if isinstance(expr, AgeBetween):
        return f"({expr.min_age} <= u.age <= {expr.max_age})"
    if isinstance(expr, GenderIs):
        return f"(u.gender == {expr.gender!r})"
    if isinstance(expr, InCountry):
        return f"(u.country == {expr.country!r})"
    if isinstance(expr, InZip):
        name = f"_zips{counter[0]}"
        counter[0] += 1
        env[name] = expr.zips
        return f"(u.zip_code in {name})"
    if isinstance(expr, InAudience):
        return f"r({expr.audience_id!r}, u.user_id)"
    if isinstance(expr, LikesPage):
        return f"({expr.page_id!r} in u.liked_pages)"
    if isinstance(expr, Not):
        return f"(not {_fragment(expr.child, env, counter)})"
    if isinstance(expr, And):
        return "(" + " and ".join(
            _fragment(op, env, counter) for op in expr.operands
        ) + ")"
    if isinstance(expr, Or):
        return "(" + " or ".join(
            _fragment(op, env, counter) for op in expr.operands
        ) + ")"
    raise TargetingError(f"cannot compile node {type(expr).__name__}")


def _required_anchors(
    expr: Expr,
) -> Tuple[FrozenSet[str], FrozenSet[str], FrozenSet[str]]:
    """(attributes, pages, audiences) a user MUST have to match ``expr``.

    AND unions its operands' requirements; OR keeps only what every
    branch requires; NOT (and predicates that carry no set-membership
    requirement) contribute nothing. Sound by construction: it only ever
    *under*-approximates, so the candidate index built on it can skip an
    ad for a user only when the ad provably cannot match.
    """
    if isinstance(expr, (HasAttr, AttrIs)):
        return frozenset((expr.attr_id,)), frozenset(), frozenset()
    if isinstance(expr, LikesPage):
        return frozenset(), frozenset((expr.page_id,)), frozenset()
    if isinstance(expr, InAudience):
        return frozenset(), frozenset(), frozenset((expr.audience_id,))
    if isinstance(expr, And):
        attrs: FrozenSet[str] = frozenset()
        pages: FrozenSet[str] = frozenset()
        auds: FrozenSet[str] = frozenset()
        for op in expr.operands:
            a, p, d = _required_anchors(op)
            attrs, pages, auds = attrs | a, pages | p, auds | d
        return attrs, pages, auds
    if isinstance(expr, Or):
        parts = [_required_anchors(op) for op in expr.operands]
        attrs, pages, auds = parts[0]
        for a, p, d in parts[1:]:
            attrs, pages, auds = attrs & a, pages & p, auds & d
        return attrs, pages, auds
    return frozenset(), frozenset(), frozenset()


#: Compiled-spec cache, keyed by the spec's canonical string form. Specs
#: are immutable and the sweep workloads reuse shapes heavily, so one
#: compile per distinct spec string serves the whole process.
_COMPILE_CACHE: dict = {}

#: Late-bound compiler instruments (see :func:`repro.obs.metrics.bind`).
#: The cache outlives registry swaps, so a fresh registry legitimately
#: sees high hit counts against compiles recorded by its predecessor.
_obs_compile = _obs_bind(lambda reg: (
    reg.counter("targeting.specs_compiled"),
    reg.counter("targeting.compile_cache_hits"),
))


def compile_spec(spec: "TargetingSpec | Expr | str") -> CompiledSpec:
    """Lower a targeting spec to a :class:`CompiledSpec` (cached).

    Accepts a :class:`TargetingSpec`, a bare :class:`Expr`, or the
    compact spec syntax. The cache key is the canonical
    ``to_string()`` form, so structurally identical specs share one
    compiled matcher.
    """
    if isinstance(spec, str):
        expr = parse(spec).expr
    elif isinstance(spec, TargetingSpec):
        expr = spec.expr
    else:
        expr = spec
    key = expr.to_string()
    compiled_c, cache_hits_c = _obs_compile()
    cached = _COMPILE_CACHE.get(key)
    if cached is not None:
        cache_hits_c.inc()
        return cached
    compiled_c.inc()
    env: dict = {}
    body = _fragment(expr, env, [0])
    source = f"def _matcher(u, r):\n    return {body}\n"
    namespace = dict(env)
    exec(compile(source, f"<targeting:{key}>", "exec"), namespace)
    attrs, pages, auds = _required_anchors(expr)
    compiled = CompiledSpec(
        source=key,
        fn=namespace["_matcher"],
        required_attributes=attrs,
        required_pages=pages,
        required_audiences=auds,
    )
    _COMPILE_CACHE[key] = compiled
    return compiled


# ---------------------------------------------------------------------------
# Mask lowerer: Expr tree -> column-mask program over UserColumns ranges.
# ---------------------------------------------------------------------------
#
# The batch sweep (:meth:`repro.platform.delivery.DeliveryEngine.sweep_slots`)
# evaluates eligibility for an entire row range of the columnar store in one
# shot instead of once per user. :func:`lower_spec` lowers an Expr tree to a
# :class:`MaskProgram` — a composition of vectorized column ops (attr/page
# bit-column extraction, coded demographic comparisons, multi-attr code
# matches, audience-membership bitset slices) producing a boolean eligibility
# array for ``rows [start, stop)``.
#
# The lowerer is deliberately *exact-type* dispatched: an ``Expr`` subclass
# (say, an experiment's opaque predicate that still compiles through
# :func:`_fragment`'s isinstance checks with base-class semantics) may
# override ``matches`` in ways the column program cannot see. Such specs —
# and only such specs — return ``None`` from :func:`lower_spec`, which is the
# per-spec fallback flag routing delivery to the per-user compiled matcher.

#: Resolves an audience id to its full-population membership bitset
#: (packed ``uint64``, bit = store row). The sweep binds this to
#: :meth:`repro.platform.audiences.AudienceRegistry.member_bitset_cached`.
MaskResolver = Callable[[str], np.ndarray]


class _Unlowerable(Exception):
    """Internal: the Expr tree contains a node the lowerer can't handle."""


@dataclass(frozen=True)
class MaskProgram:
    """A targeting spec lowered to a vectorized row-range evaluator.

    ``evaluate(cols, start, stop, resolver)`` returns a boolean array of
    length ``stop - start`` where entry ``i`` says whether store row
    ``start + i`` matches the spec — elementwise identical to running the
    compiled matcher over each row's :class:`~repro.platform.colstore.UserView`
    (``tests/platform/test_mask_lowering.py`` enforces the property on
    random trees and populations).

    ``start`` must be byte-aligned (``start % 8 == 0``) so audience
    bitsets can be sliced without bit-shifting; sweep callers use
    64-aligned blocks.
    """

    source: str
    fn: Callable[..., np.ndarray]
    referenced_audiences: Tuple[str, ...]

    def evaluate(self, cols, start: int, stop: int,
                 resolver: Optional[MaskResolver] = None) -> np.ndarray:
        if resolver is None and self.referenced_audiences:
            raise TargetingError(
                f"mask program references audiences "
                f"{list(self.referenced_audiences)} but no bitset resolver "
                f"was given"
            )
        return self.fn(cols, start, stop, resolver)


def _zeros(n: int) -> np.ndarray:
    return np.zeros(n, dtype=bool)


def _bit_flags(matrix: np.ndarray, code: Optional[int],
               start: int, stop: int) -> np.ndarray:
    """Column ``code`` of a user-major bitset matrix as booleans.

    ``None`` / out-of-width codes read as all-False — the same semantics
    :func:`repro.platform.bitset.test_bit` gives scalar probes.
    """
    if code is None or code >= matrix.shape[1] * bitset.WORD_BITS:
        return _zeros(stop - start)
    word, shift = code >> 6, np.uint64(code & 63)
    return ((matrix[start:stop, word] >> shift) & np.uint64(1)).astype(bool)


def _lower(expr: Expr) -> Callable[..., np.ndarray]:
    """Recursively build the range evaluator for ``expr``.

    Dispatch is on ``type(expr) is X`` — never isinstance — so subclassed
    nodes with overridden semantics fall through to :class:`_Unlowerable`
    and the per-user fallback path.
    """
    kind = type(expr)
    if kind is All:
        return lambda cols, start, stop, r: np.ones(stop - start, dtype=bool)
    if kind is HasAttr:
        attr_id = expr.attr_id

        def has_attr(cols, start, stop, r):
            out = _bit_flags(cols.attr_bits, cols.attrs.get(attr_id),
                             start, stop)
            multi = cols.multi_cols.get(attr_id)
            if multi is not None:
                out |= multi[start:stop] != 0
            return out

        return has_attr
    if kind is AttrIs:
        attr_id, value = expr.attr_id, expr.value

        def attr_is(cols, start, stop, r):
            multi = cols.multi_cols.get(attr_id)
            if multi is None:
                return _zeros(stop - start)
            code = cols.multi_vocabs[attr_id].get(value)
            if code is None:
                return _zeros(stop - start)
            return multi[start:stop] == code + 1

        return attr_is
    if kind is AgeBetween:
        lo, hi = expr.min_age, expr.max_age
        return lambda cols, start, stop, r: (
            (cols.age[start:stop] >= lo) & (cols.age[start:stop] <= hi))
    if kind is GenderIs:
        gender = expr.gender

        def gender_is(cols, start, stop, r):
            code = cols.genders.get(gender)
            if code is None:
                return _zeros(stop - start)
            return cols.gender[start:stop] == code

        return gender_is
    if kind is InCountry:
        country = expr.country

        def in_country(cols, start, stop, r):
            code = cols.countries.get(country)
            if code is None:
                return _zeros(stop - start)
            return cols.country[start:stop] == code

        return in_country
    if kind is InZip:
        zips = sorted(expr.zips)

        def in_zip(cols, start, stop, r):
            codes = [c for c in (cols.zips.get(z) for z in zips)
                     if c is not None]
            if not codes:
                return _zeros(stop - start)
            return np.isin(cols.zip[start:stop],
                           np.asarray(codes, dtype=np.int32))

        return in_zip
    if kind is InAudience:
        audience_id = expr.audience_id
        return lambda cols, start, stop, r: bitset.unpack_range(
            r(audience_id), start, stop)
    if kind is LikesPage:
        page_id = expr.page_id
        return lambda cols, start, stop, r: _bit_flags(
            cols.page_bits, cols.pages.get(page_id), start, stop)
    if kind is Not:
        child = _lower(expr.child)
        return lambda cols, start, stop, r: ~child(cols, start, stop, r)
    if kind is And or kind is Or:
        parts = [_lower(op) for op in expr.operands]

        def combine(cols, start, stop, r, fold=(np.ndarray.__iand__
                                                if kind is And
                                                else np.ndarray.__ior__)):
            out = parts[0](cols, start, stop, r)
            for part in parts[1:]:
                fold(out, part(cols, start, stop, r))
            return out

        return combine
    raise _Unlowerable(type(expr).__qualname__)


def _lower_key(expr: Expr) -> Tuple[str, Tuple[str, ...]]:
    """Cache key: canonical string *plus* the exact node types.

    The string form alone would alias an ``Expr`` subclass with its base
    (both print the same), letting a cached base-class program serve a
    subclass whose overridden ``matches`` it does not honor — or a cached
    fallback verdict block a perfectly lowerable base spec.
    """
    return (expr.to_string(),
            tuple(type(node).__qualname__ for node in expr.walk()))


#: Lowered-program cache. ``None`` values are cached too: a spec that
#: falls back once falls back forever (specs are immutable).
_LOWER_CACHE: dict = {}
_LOWER_MISSING = object()

#: Late-bound lowerer instruments — lowered-program builds and per-spec
#: fallbacks to the scalar matcher.
_obs_lower = _obs_bind(lambda reg: (
    reg.counter("targeting.specs_lowered"),
    reg.counter("targeting.lower_fallbacks"),
))


def lower_spec(spec: "TargetingSpec | Expr | str") -> Optional[MaskProgram]:
    """Lower a spec to a :class:`MaskProgram`, or ``None`` (cached).

    ``None`` is the per-spec fallback flag: the tree contains a node the
    column algebra cannot express (in practice, an ``Expr`` subclass with
    overridden semantics), so the caller must evaluate that spec with the
    per-user compiled matcher instead.
    """
    if isinstance(spec, str):
        expr = parse(spec).expr
    elif isinstance(spec, TargetingSpec):
        expr = spec.expr
    else:
        expr = spec
    key = _lower_key(expr)
    cached = _LOWER_CACHE.get(key, _LOWER_MISSING)
    if cached is not _LOWER_MISSING:
        return cached
    lowered_c, fallback_c = _obs_lower()
    try:
        fn = _lower(expr)
    except _Unlowerable:
        fallback_c.inc()
        _LOWER_CACHE[key] = None
        return None
    lowered_c.inc()
    audiences = tuple(
        node.audience_id for node in expr.walk() if type(node) is InAudience)
    program = MaskProgram(
        source=expr.to_string(),
        fn=fn,
        referenced_audiences=audiences,
    )
    _LOWER_CACHE[key] = program
    return program
