#!/usr/bin/env python3
"""Quickstart: one user learns their hidden profile in ~40 lines.

Builds a small simulated ad platform, opts one user into a transparency
provider, runs a Tread per partner attribute, and decodes the user's feed
— the whole Treads loop from the paper's section 3.1 end to end.

Run:  python examples/quickstart.py
"""

from repro import AdPlatform, TransparencyProvider, TreadClient, WebDirectory

platform = AdPlatform()
web = WebDirectory()

# A user whose profile the data brokers have populated (unbeknownst to
# them — the ad-preferences page will never show these).
user = platform.register_user(age=34)
hidden = [
    "pc-networth-006",      # Net worth: Over $2M
    "pc-restaurants-003",   # Purchases at: Fine dining restaurants
    "pc-jobrole-000",       # Job role: C-suite executive
    "pc-autointent-007",    # Likely to purchase: Luxury SUV
]
for attr_id in hidden:
    user.set_attribute(platform.catalog.get(attr_id))

print("What the platform's OWN transparency page shows the user:")
preferences = platform.ad_preferences_for(user.user_id)
print(f"  {len(preferences.shown_attributes)} attributes "
      f"(partner data hidden by design)\n")

# The transparency provider: an ordinary advertiser account.
provider = TransparencyProvider(platform, web, name="treads-demo",
                                budget=100.0, bid_cap_cpm=10.0)

# The user opts in by liking the provider's page (the validation's route).
provider.optin.via_page_like(user.user_id)

# One Tread per US partner category (507 ads) plus a control ad.
report = provider.launch_partner_sweep()
print(f"Launched {len(report.launched)} Treads "
      f"({len(report.rejected)} rejected by review).")

# The user browses; matching Treads win auctions and land in their feed.
provider.run_delivery()

# The user's browser extension decodes the feed with the provider's
# published decode pack.
client = TreadClient(user.user_id, platform, provider.publish_decode_pack())
profile = client.sync()

print(f"\nControl ad received: {profile.control_received}")
print(f"The user learned {len(profile.set_attributes)} hidden attributes:")
for attr_id in sorted(profile.set_attributes):
    print(f"  - {platform.catalog.get(attr_id).name}")

print(f"\nProvider paid ${provider.total_spend():.4f} "
      f"for {provider.total_impressions()} impressions.")
assert profile.set_attributes == set(hidden)
print("OK: revealed profile matches the platform's hidden ground truth.")
