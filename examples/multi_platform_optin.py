#!/usr/bin/env python3
"""One opt-in page, three ad platforms (section 3.1, "User opt-in").

"by placing tracking pixels from multiple advertising platforms on the
website, the transparency provider could at one shot allow the user to
sign-up to learn the information collected about them by multiple
advertising platforms."

Three platform-alikes (a Facebook-, Google-, and Twitter-alike with
different catalogs and review strictness) share one opt-in website; a
person's per-platform browsers load the same page once, and each platform
then reveals its own view of that person.

Run:  python examples/multi_platform_optin.py
"""

from repro import AdPlatform, TreadClient, WebDirectory
from repro.core.multiplatform import MultiPlatformProvider
from repro.platform.catalog import build_us_catalog
from repro.platform.platform import PlatformConfig
from repro.workloads.competition import lognormal_competition

web = WebDirectory()

platform_specs = (
    ("fbsim", 614, 507, "standard"),
    ("googsim", 400, 200, "strict"),
    ("twtrsim", 250, 80, "standard"),
)
platforms = [
    AdPlatform(
        config=PlatformConfig(name=name, policy_strictness=strictness),
        catalog=build_us_catalog(platform_count, partner_count),
        competing_draw=lognormal_competition(median_cpm=2.0,
                                             seed=hash(name) % 1000),
    )
    for name, platform_count, partner_count, strictness in platform_specs
]

provider = MultiPlatformProvider(platforms, web, name="one-stop-treads",
                                 budget_per_platform=500.0)
page = provider.website.get_page("/optin")
print(f"Shared opt-in page {provider.website.domain}/optin carries "
      f"{len(page.pixel_ids)} pixels (one per platform)\n")

# One person holds an account on each platform; each platform's brokers
# know different things about them.
identities = {}
for platform in platforms:
    user = platform.register_user(age=41)
    partner = platform.catalog.partner_attributes()
    step = 1 + hash(platform.name) % 5
    for attr in partner[::step][:6]:
        user.set_attribute(attr)
    identities[platform.name] = user

# The person visits the shared page once per logged-in browser session.
for platform in platforms:
    browser = platform.browser_for(identities[platform.name].user_id)
    provider.optin_via_pixel(browser)
print("Person visited the shared opt-in page; every platform's pixel "
      "fired for its own identity.\n")

# Page-like opt-in too (the pixel audiences are below the 20-user
# minimum, so the sweeps target the page route).
for platform in platforms:
    provider.optin_via_page_like(platform.name,
                                 identities[platform.name].user_id)

provider.launch_partner_sweeps()
provider.run_delivery()

packs = provider.decode_packs()
for platform in platforms:
    user = identities[platform.name]
    profile = TreadClient(user.user_id, platform,
                          packs[platform.name]).sync()
    print(f"{platform.name}: revealed {len(profile.set_attributes)} "
          f"partner attributes for {user.user_id}")
    for attr_id in sorted(profile.set_attributes)[:3]:
        print(f"   - {platform.catalog.get(attr_id).name}")
    if len(profile.set_attributes) > 3:
        print(f"   ... and {len(profile.set_attributes) - 3} more")

print(f"\nTotal spend across all platforms: ${provider.total_spend():.4f}")
