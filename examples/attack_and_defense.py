#!/usr/bin/env python3
"""The section 5 tension: patching inference leaks rations Treads.

The paper's privacy analysis assumes platforms "would not leak
information about individual users to advertisers" and that known
attacks (Korolova-style microtargeted inference) "will be patched". This
demo runs the actual attack against the simulated platform, shows the
patch that stops it — and shows the same patch silencing Treads for
small opt-in groups, because attack and mechanism both live off the
deliver-iff-match contract.

Run:  python examples/attack_and_defense.py
"""

from repro import AdPlatform, TransparencyProvider, TreadClient, WebDirectory
from repro.attacks import DeliveryInferenceAttack, SizeEstimateAttack
from repro.platform.catalog import build_us_catalog
from repro.platform.platform import PlatformConfig
from repro.workloads.competition import zero_competition

VICTIM_EMAIL = "victim@example.com"


def fresh_platform(min_match):
    return AdPlatform(
        config=PlatformConfig(name=f"p{min_match}",
                              min_delivery_match_count=min_match),
        catalog=build_us_catalog(60, 30),
        competing_draw=zero_competition(),
    )


def plant_victim(platform):
    victim = platform.register_user()
    platform.users.attach_pii(victim.user_id, "email", VICTIM_EMAIL)
    attr = platform.catalog.partner_attributes()[0]
    victim.set_attribute(attr)  # the sensitive bit the attacker wants
    return attr


print("=" * 68)
print("1. The attacker, against a 2018-default platform")
print("=" * 68)
platform = fresh_platform(min_match=0)
attr = plant_victim(platform)

size_attack = SizeEstimateAttack(platform)
outcome = size_attack.run(VICTIM_EMAIL, attr.attr_id, ground_truth=True)
print(f"size-estimate channel : learned bit = {outcome.inferred_bit} "
      f"({outcome.observable})")

delivery_attack = DeliveryInferenceAttack(platform)
outcome = delivery_attack.run(VICTIM_EMAIL, attr.attr_id,
                              ground_truth=True)
print(f"delivery/billing probe: learned bit = {outcome.inferred_bit} "
      f"({outcome.observable})  <-- the leak")

print()
print("=" * 68)
print("2. The patched platform (min 20 matching users to serve an ad)")
print("=" * 68)
patched = fresh_platform(min_match=20)
attr = plant_victim(patched)
outcome = DeliveryInferenceAttack(patched).run(
    VICTIM_EMAIL, attr.attr_id, ground_truth=True
)
print(f"delivery/billing probe: learned bit = {outcome.inferred_bit} "
      f"({outcome.observable})  <-- patched")

print()
print("=" * 68)
print("3. What the patch costs Treads")
print("=" * 68)
for group_size in (5, 25):
    platform = fresh_platform(min_match=20)
    web = WebDirectory()
    provider = TransparencyProvider(platform, web, budget=50.0)
    tread_attr = platform.catalog.partner_attributes()[1]
    users = []
    for _ in range(group_size):
        user = platform.register_user()
        user.set_attribute(tread_attr)
        provider.optin.via_page_like(user.user_id)
        users.append(user)
    provider.launch_attribute_sweep([tread_attr], include_control=False)
    provider.run_delivery()
    pack = provider.publish_decode_pack()
    revealed = sum(
        1 for user in users
        if tread_attr.attr_id in
        TreadClient(user.user_id, platform, pack).sync().set_attributes
    )
    print(f"opt-in group of {group_size:2d}: Treads revealed for "
          f"{revealed}/{group_size} subscribers")

print()
print("Attack and mechanism exploit the same deliver-iff-match contract:")
print("a platform cannot patch one without rationing the other.")
