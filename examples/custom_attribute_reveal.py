#!/usr/bin/env python3
"""Power-user session: PII reveals + custom attributes + bit-split values.

Covers the three "Revealing a wider variety of information" extensions of
paper section 3.1 for one privacy-conscious user:

1. **PII** — the user hands the provider *hashed* email and phone; Treads
   at PII audiences reveal which items the platform actually holds
   (including a phone number the user never gave the platform — synced
   from a friend's contact list, as in the paper's citation [35]).
2. **Custom attributes** — a per-attribute pixel opt-in reveals a niche
   interest outside the provider's default sweep.
3. **Multi-valued attributes** — ceil(log2 m) bit-split Treads reveal the
   user's education level exactly.

Run:  python examples/custom_attribute_reveal.py
"""

from repro import AdPlatform, TransparencyProvider, TreadClient, WebDirectory
from repro.platform.pii import record_from_raw

platform = AdPlatform()
web = WebDirectory()
provider = TransparencyProvider(platform, web, name="treads-plus",
                                budget=300.0)

# ---------------------------------------------------------------------------
# The user. The platform holds their email (they provided it) AND a phone
# number they never gave it — synced from a friend's contact list.
# ---------------------------------------------------------------------------
user = platform.register_user(age=29)
platform.users.attach_pii(user.user_id, "email", "casey@example.com")
platform.users.attach_pii(user.user_id, "phone", "+1 617 555 0100")
education = platform.catalog.get("pf-education-level")
user.set_attribute(education, "Master's degree")
salsa = platform.catalog.search("salsa")[0]
user.set_attribute(salsa)

provider.optin.via_page_like(user.user_id)

# Pad the PII audiences past the platform's 20-user minimum with other
# subscribers (their PII may or may not be known to the platform).
for index in range(30):
    other = platform.register_user()
    phone = f"617555{index + 200:04d}"
    email = f"sub{index}@example.com"
    platform.users.attach_pii(other.user_id, "phone", phone)
    platform.users.attach_pii(other.user_id, "email", email)
    provider.optin.via_page_like(other.user_id)
    provider.optin.submit_hashed_pii([
        record_from_raw("phone", phone),
        record_from_raw("email", email),
    ])

# 1. PII reveals: the user submits HASHED identifiers only.
provider.optin.submit_hashed_pii([
    record_from_raw("email", "casey@example.com"),
    record_from_raw("phone", "617-555-0100"),
    # an old phone number the platform should NOT have:
    record_from_raw("phone", "617-555-9999"),
])
pii_report = provider.launch_pii_reveals()
print(f"PII Treads launched: {len(pii_report.launched)} "
      f"(one per PII kind batch)")

# 2. Custom attribute via a dedicated pixel page.
provider.optin.via_custom_pixel(platform.browser_for(user.user_id),
                                salsa.name)
# pad this custom audience past the minimum too
for index in range(25):
    visitor = platform.register_user()
    provider.optin.via_custom_pixel(platform.browser_for(visitor.user_id),
                                    salsa.name)
custom_report = provider.launch_custom_attribute(
    salsa.name, f"attr:{salsa.attr_id}"
)
print(f"Custom-attribute Tread launched: "
      f"{len(custom_report.launched)}")

# 3. Education level via bit-splitting: 3 ads for a 7-valued attribute.
provider.launch_attribute_sweep([])  # the control ad
value_report = provider.launch_value_reveal(education.attr_id,
                                            scheme="bitsplit")
print(f"Bit-split Treads for {education.name!r} "
      f"(m={len(education.values)}): {len(value_report.launched)} ads")

provider.run_delivery()

profile = TreadClient(user.user_id, platform,
                      provider.publish_decode_pack()).sync()

print("\nWhat the user learned:")
print(f"  PII the platform holds: {sorted(profile.pii_present)}")
print(f"  custom attribute matches: {sorted(profile.custom_matches)}")
print(f"  education level: {profile.values.get(education.attr_id)!r}")

assert profile.pii_present == {"email", "phone"}
assert salsa.name in profile.custom_matches
assert profile.values[education.attr_id] == "Master's degree"
print("\nOK: every extension mechanism revealed exactly the ground truth.")
print("Note: the provider only ever saw SHA-256 digests and pixel "
      "audience handles — never the raw PII or the user's identity.")
