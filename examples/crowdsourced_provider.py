#!/usr/bin/env python3
"""Evading shutdown: a 12-member transparency co-op (section 4).

"a number of privacy-conscious organizations or individuals could each
create an advertising account and run a few Treads, with each account
being responsible for a small subset of the overall set of targeting
attributes offered by the platform."

Twelve member accounts shard the 507 US partner categories (~43 each),
share one codebook, and jointly reveal a subscriber's profile. The
platform's Tread-pattern auditor — which flags accounts running 50+
single-attribute ads at one audience — catches a monolithic provider but
loses the co-op.

Run:  python examples/crowdsourced_provider.py
"""

from repro import AdPlatform, TreadClient, WebDirectory
from repro.core.crowdsource import CrowdsourcedProvider
from repro.platform.policy import TreadPatternDetector

platform = AdPlatform()
web = WebDirectory()
attrs = platform.catalog.partner_attributes()
detector = TreadPatternDetector(per_account_threshold=50)

# --- a monolithic provider gets flagged ------------------------------------
monolith = CrowdsourcedProvider(platform, web, members=1, name="monolith",
                                budget_per_member=200.0)
monolith.launch_sweep(attrs)
flags = detector.audit(monolith.ads_by_account())
print(f"Monolithic provider: 1 account, {len(attrs) + 1} ads")
print(f"  platform auditor flags: {[f.reason for f in flags]}\n")

# --- the co-op --------------------------------------------------------------
coop = CrowdsourcedProvider(platform, web, members=12, name="coop",
                            budget_per_member=100.0)
subscriber = platform.register_user(age=45)
for attr in attrs[:9]:
    subscriber.set_attribute(attr)
coop.optin_everywhere(subscriber.user_id)

report = coop.launch_sweep(attrs)
print(f"Co-op: {len(coop.members)} member accounts, "
      f"{report.total_launched} ads total, largest footprint "
      f"{report.largest_account_footprint} ads")

flags = detector.audit(coop.ads_by_account())
print(f"  platform auditor flags: {len(flags)} account(s) "
      f"(threshold {detector.per_account_threshold})")

coop.run_delivery()

# One decode pack covers every member's Treads (shared codebook).
profile = TreadClient(subscriber.user_id, platform,
                      coop.publish_decode_pack()).sync()
print(f"\nSubscriber decoded {len(profile.set_attributes)} attributes "
      f"across all shards:")
for attr_id in sorted(profile.set_attributes):
    print(f"  - {platform.catalog.get(attr_id).name}")
print(f"control received: {profile.control_received}")
print(f"co-op total spend: ${coop.total_spend():.4f}")

assert len(flags) == 0, "sharded co-op must evade the auditor"
assert len(profile.set_attributes) == 9
print("\nOK: full reveal coverage with zero detector hits.")
