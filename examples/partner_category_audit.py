#!/usr/bin/env python3
"""The paper's validation, narrated step by step (section 3.1).

Recreates the experiment the authors ran on live Facebook: a fresh US
advertiser account, two authors opting in by liking a page, 507 partner-
category Treads plus a control at a $10 CPM bid cap (5x the recommended
$2), delivered against a realistic competing-bid market.

Expected outcome (matching the paper): both authors receive the control;
the broker-profiled author receives eleven attribute Treads (net worth,
restaurant and apparel purchase behaviour, job role, home type, likely
auto purchase, ...); the recent-arrival graduate student receives none.

Run:  python examples/partner_category_audit.py
"""

from repro import AdPlatform, TransparencyProvider, TreadClient, WebDirectory
from repro.platform.platform import PlatformConfig
from repro.workloads.competition import lognormal_competition
from repro.workloads.personas import (
    ESTABLISHED_PROFESSIONAL,
    RECENT_ARRIVAL_GRAD_STUDENT,
)
from repro.workloads.population import PopulationBuilder

print("=" * 70)
print("Treads validation: revealing Facebook partner categories")
print("=" * 70)

# A Facebook-alike with a realistic auction market: competing top bids
# are log-normal with median $2 CPM (the 'recommended bid').
platform = AdPlatform(
    config=PlatformConfig(name="fbsim", default_cpm=2.0),
    competing_draw=lognormal_competition(median_cpm=2.0, seed=2018),
)
web = WebDirectory()
print(f"\nPlatform catalog: "
      f"{len(platform.catalog.platform_attributes())} platform attributes, "
      f"{len(platform.catalog.partner_attributes())} US partner categories")

# --- the two authors, generated from their personas -----------------------
builder = PopulationBuilder(platform, seed=7)
author_a = builder.spawn(ESTABLISHED_PROFESSIONAL, 1)[0]
author_b = builder.spawn(RECENT_ARRIVAL_GRAD_STUDENT, 1)[0]
reports = builder.finalize()  # data brokers match their feeds onto users
print(f"\nBroker ingest: {sum(r.records_matched for r in reports)} record(s) "
      f"matched onto platform users")
truth_a = {a for a in author_a.binary_attrs if a.startswith("pc-")}
truth_b = {a for a in author_b.binary_attrs if a.startswith("pc-")}
print(f"  author A ({builder.persona_of[author_a.user_id]}): "
      f"{len(truth_a)} partner attributes on file")
print(f"  author B ({builder.persona_of[author_b.user_id]}): "
      f"{len(truth_b)} partner attributes on file")

# --- the transparency provider --------------------------------------------
provider = TransparencyProvider(platform, web, name="transparency-np",
                                budget=500.0, bid_cap_cpm=10.0)
print(f"\nProvider registered as advertiser "
      f"{provider.account.account_id} with ${provider.account.budget:.0f}; "
      f"bid cap $10 CPM (5x default)")

provider.optin.via_page_like(author_a.user_id)
provider.optin.via_page_like(author_b.user_id)
print(f"Both authors opted in by liking page {provider.page.page_id!r} "
      f"(page targeting has no minimum audience size)")

launch = provider.launch_partner_sweep()
print(f"\nLaunched {len(launch.launched)} ads: one per partner category "
      f"plus the control")

provider.run_delivery(max_rounds=200)

# --- what each author's extension decodes ---------------------------------
pack = provider.publish_decode_pack()
for label, author, truth in (("A", author_a, truth_a),
                             ("B", author_b, truth_b)):
    profile = TreadClient(author.user_id, platform, pack).sync()
    print(f"\nAuthor {label}:")
    print(f"  control ad received: {profile.control_received}")
    print(f"  attribute Treads received: {len(profile.set_attributes)}")
    for attr_id in sorted(profile.set_attributes):
        print(f"    - {platform.catalog.get(attr_id).name}")
    assert profile.set_attributes == truth, "reveal must match ground truth"

# --- cost ------------------------------------------------------------------
invoice = platform.invoice(provider.account.account_id)
print(f"\nBilling: {invoice.impressions} impressions, "
      f"${invoice.total:.4f} total "
      f"(effective CPM ${1000 * invoice.total / max(1, invoice.impressions):.2f}, "
      f"cap was $10)")
print("\nPaper outcome reproduced: control for both, partner categories "
      "only for the broker-profiled author.")
