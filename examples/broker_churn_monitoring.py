#!/usr/bin/env python3
"""Longitudinal transparency: watching your broker profile change.

A transparency provider is most useful as a *subscription*: brokers ship
new feeds continuously, and the interesting question becomes "what did
the platform learn about me since last month?". This example runs two
monthly sweeps around a broker update and a partial profile scrub, diffs
the reveal snapshots, and shows the decode pack travelling as JSON —
the artifact a real provider would publish to subscribers.

Run:  python examples/broker_churn_monitoring.py
"""

from repro import AdPlatform, TransparencyProvider, TreadClient, WebDirectory
from repro.core.monitoring import diff_profiles
from repro.core.packformat import pack_from_json, pack_to_json, validate_pack

platform = AdPlatform()
web = WebDirectory()
provider = TransparencyProvider(platform, web, name="treads-monthly",
                                budget=200.0)

user = platform.register_user(age=41)
platform.users.attach_pii(user.user_id, "email", "sam@example.com")
catalog = platform.catalog
month_one_attrs = ["pc-networth-004", "pc-restaurants-001",
                   "pc-travel-000"]
for attr_id in month_one_attrs:
    user.set_attribute(catalog.get(attr_id))
provider.optin.via_page_like(user.user_id)

# ---- month 1 ---------------------------------------------------------------
provider.launch_partner_sweep()
provider.run_delivery()

# the pack travels to subscribers as JSON; a careful subscriber validates
wire = pack_to_json(provider.publish_decode_pack())
pack = pack_from_json(wire)
issues = validate_pack(pack, catalog)
print(f"decode pack: {len(wire):,} bytes as JSON, "
      f"{len(issues)} validation issue(s)")

january = TreadClient(user.user_id, platform, pack).sync()
print(f"\nMonth 1: platform holds {len(january.set_attributes)} partner "
      f"attributes about {user.user_id}:")
for attr_id in sorted(january.set_attributes):
    print(f"  - {catalog.get(attr_id).name}")

# ---- the world changes -----------------------------------------------------
# a broker ships a new record (a car-shopping signal) ...
platform.brokers.broker("Oracle Data Cloud").add_record(
    "feb-001", [("email", "sam@example.com")],
    [("pc-autointent-007", None)],
)
platform.ingest_brokers()
# ... and one old restaurant segment ages out of the profile
user.clear_attribute("pc-restaurants-001")

# ---- month 2: a FRESH sweep against the current profile --------------------
# (re-reading the old feed would mix stale January reveals with February
# state; a monthly service runs a new campaign per epoch)
provider2 = TransparencyProvider(platform, web, name="treads-monthly-feb",
                                 budget=200.0)
provider2.optin.via_page_like(user.user_id)
provider2.launch_partner_sweep()
provider2.run_delivery()
february = TreadClient(user.user_id, platform,
                       provider2.publish_decode_pack()).sync()
# keep the diff keyed to the same user snapshot object shape
february.user_id = january.user_id

diff = diff_profiles(january, february)
print(f"\nMonth 2 diff (reliable: {diff.reliable}):")
for attr_id in diff.gained_attributes:
    print(f"  + platform LEARNED:  {catalog.get(attr_id).name}")
for attr_id in diff.lost_attributes:
    print(f"  - platform DROPPED:  {catalog.get(attr_id).name}")
if diff.is_empty:
    print("  (no changes)")

assert diff.gained_attributes == ("pc-autointent-007",)
assert diff.lost_attributes == ("pc-restaurants-001",)
print("\nOK: the monthly diff reports exactly the broker churn.")
