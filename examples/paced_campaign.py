#!/usr/bin/env python3
"""A realistic week-by-week Tread campaign with budget pacing.

The paper prices Treads per impression; an actual provider also plans a
daily budget and watches coverage converge as subscribers browse. This
example runs a 60-subscriber partner-category campaign under a $0.10/day
cap, prints the day-by-day convergence, checks the pre-launch cost
estimate against the realised spend, and finishes with the provider's
campaign report — which, by construction, contains only aggregates.

Run:  python examples/paced_campaign.py
"""

from repro import AdPlatform, TransparencyProvider, WebDirectory
from repro.analysis.report import campaign_report
from repro.core.scheduler import PacedCampaignRunner, coverage_curve
from repro.platform.catalog import build_us_catalog
from repro.platform.platform import PlatformConfig
from repro.workloads.browsing import BrowsingModel
from repro.workloads.competition import lognormal_competition
from repro.workloads.personas import AVERAGE_CONSUMER, PRIVACY_MINIMALIST
from repro.workloads.population import PopulationBuilder

platform = AdPlatform(
    config=PlatformConfig(name="fbsim"),
    catalog=build_us_catalog(platform_count=200, partner_count=120),
    competing_draw=lognormal_competition(median_cpm=2.0, seed=99),
)
web = WebDirectory()

builder = PopulationBuilder(platform, seed=31)
subscribers = builder.spawn_mix(
    (AVERAGE_CONSUMER, PRIVACY_MINIMALIST), count=60, weights=(3, 1)
)
builder.finalize()

provider = TransparencyProvider(platform, web, name="paced-treads",
                                budget=20.0, bid_cap_cpm=10.0)
for user in subscribers:
    provider.optin.via_page_like(user.user_id)

attrs = platform.catalog.partner_attributes()
estimate = provider.estimate_sweep_cost(attrs)
print(f"Pre-launch worst-case estimate for {len(attrs)} attributes "
      f"x {len(subscribers)} subscribers: ${estimate:.2f}")

provider.launch_partner_sweep()

runner = PacedCampaignRunner(
    provider,
    daily_budget=0.10,
    browsing_model=BrowsingModel(mean_slots=25.0),
    patience=2,
)
result = runner.run(max_days=30)

print(f"\nDay-by-day convergence (daily cap $0.10):")
for day, cumulative in coverage_curve(result):
    bar = "#" * (cumulative // 10)
    print(f"  day {day:2d}: {cumulative:4d} impressions {bar}")

print(f"\nsaturated: {result.saturated}   "
      f"budget exhausted: {result.exhausted_budget}")
print(f"realised spend ${result.total_spend:.4f} "
      f"(estimate was the ${estimate:.2f} upper bound)")

print()
print(campaign_report(provider, top_attributes=5))
assert result.total_spend <= estimate
assert result.saturated
